//! # Bingo
//!
//! A Rust reproduction of *Bingo: Radix-based Bias Factorization for Random
//! Walk on Dynamic Graphs* (EuroSys 2025).
//!
//! Bingo is a random-walk engine for dynamically changing weighted graphs.
//! It decomposes every edge bias into its binary radix components, so that a
//! graph update only touches the `K = log2(max bias)` radix groups of the
//! affected vertex instead of all of its `d` neighbours, while sampling stays
//! `O(1)` through a two-level (inter-group alias table, intra-group uniform)
//! hierarchy.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`graph`] — dynamic graph substrate (Hornet-style dynamic adjacency
//!   arrays, generators, update streams, scaled-down dataset stand-ins).
//! * [`sampling`] — classical Monte Carlo samplers (alias, ITS, rejection,
//!   reservoir) used both inside Bingo and as baselines.
//! * [`core`] — the paper's contribution: radix-based bias factorization,
//!   adaptive group representation, streaming and batched updates.
//! * [`walks`] — random-walk applications (DeepWalk, node2vec, PPR) behind
//!   the pluggable `WalkModel` trait, and the parallel walker engine.
//! * [`baselines`] — reimplementations of the systems the paper compares
//!   against (KnightKing, gSampler, FlowWalker).
//! * [`service`] — the serving layer: a vertex-sharded, multi-threaded walk
//!   service that answers concurrent walk requests while graph updates
//!   stream in, with per-shard epoch counters and walker forwarding.
//! * [`gateway`] — the multi-tenant front-end over the service: bounded
//!   per-tenant queues, deficit-round-robin fair scheduling with
//!   configurable weights, and AIMD adaptive backpressure driven by the
//!   service's occupancy counters.
//! * [`obs`] — the introspection plane: a dependency-free HTTP exposition
//!   server (`/metrics`, `/status`, `/trace`, `/flight`, `/healthz`), a
//!   lock-free flight recorder of runtime events (dumped on panic), and a
//!   lazy stall watchdog behind `/healthz`. Opt-in via `BINGO_OBS`.
//!
//! ## Quickstart
//!
//! ```
//! use bingo::prelude::*;
//!
//! // Build a small weighted graph.
//! let mut graph = DynamicGraph::new(6);
//! graph.insert_edge(2, 1, Bias::from_int(5)).unwrap();
//! graph.insert_edge(2, 4, Bias::from_int(4)).unwrap();
//! graph.insert_edge(2, 5, Bias::from_int(3)).unwrap();
//!
//! // Build the Bingo sampling engine on top of it.
//! let mut engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
//!
//! // Sample a neighbour of vertex 2 in O(1).
//! let mut rng = Pcg64::seed_from_u64(7);
//! let next = engine.sample_neighbor(2, &mut rng).unwrap();
//! assert!([1, 4, 5].contains(&next));
//!
//! // Stream an update: the new edge is visible to the very next sample.
//! engine.insert_edge(2, 3, Bias::from_int(3)).unwrap();
//! ```
//!
//! ## Serving walks under streaming updates
//!
//! For concurrent walk traffic with updates streaming in, use the sharded
//! walk service:
//!
//! ```
//! use bingo::prelude::*;
//!
//! let mut graph = DynamicGraph::new(32);
//! for v in 0..32u32 {
//!     graph.insert_edge(v, (v + 1) % 32, Bias::from_int(1)).unwrap();
//! }
//! let service = WalkService::build(&graph, ServiceConfig::default()).unwrap();
//! let ticket = service
//!     .submit(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 5 }), &[0, 16])
//!     .unwrap();
//! let receipt = service.ingest(&UpdateBatch::new(vec![UpdateEvent::Insert {
//!     src: 4,
//!     dst: 20,
//!     bias: Bias::from_int(3),
//! }]));
//! service.sync(receipt);
//! let results = service.wait(ticket);
//! assert_eq!(results.paths.len(), 2);
//! ```

pub use bingo_baselines as baselines;
pub use bingo_core as core;
pub use bingo_gateway as gateway;
pub use bingo_graph as graph;
pub use bingo_obs as obs;
pub use bingo_sampling as sampling;
pub use bingo_service as service;
pub use bingo_telemetry as telemetry;
pub use bingo_walks as walks;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use bingo_core::{BingoConfig, BingoEngine, GroupKind};
    pub use bingo_gateway::{Gateway, GatewayConfig, GatewayError, GatewayStats, GatewayTicket};
    pub use bingo_graph::{
        Bias, BiasDistribution, DynamicGraph, GraphGenerator, UpdateBatch, UpdateEvent,
        UpdateStreamBuilder, VertexId,
    };
    pub use bingo_obs::{ObsConfig, ObsServer, WatchdogConfig};
    pub use bingo_sampling::{rng::Pcg64, AliasTable, CdfTable, Sampler};
    pub use bingo_service::{
        CollectionMode, IngestReceipt, PartitionStrategy, ServiceConfig, ServiceStats,
        TicketResults, WalkClient, WalkOutput, WalkRequest, WalkService, WalkTicket,
    };
    pub use bingo_telemetry::{Telemetry, TelemetryConfig};
    pub use bingo_walks::{
        CarriedContext, ContextEncoding, ContextMembership, ContextRequirement, DeepWalkConfig,
        Node2VecConfig, PprConfig, SharedWalkModel, StepSampler, Transition, TransitionSampler,
        WalkCursor, WalkEngine, WalkModel, WalkSpec, WalkState,
    };
    pub use rand::SeedableRng;
}

//! Offline stand-in for the `rayon` crate — with a **real parallel
//! runtime** on a **persistent worker pool**.
//!
//! The build environment has no registry access, so this shim provides the
//! rayon entry points the workspace uses (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, [`join`], [`spawn`]) over its own executor: a
//! lazily-initialized team of condvar-parked daemon workers fed through a
//! global injector (see the `runtime` module's docs in the source), shared
//! by the fork-join combinators here and by `bingo-service`'s shard tasks.
//! Engine builds and walk passes in `bingo-core`/`bingo-walks` therefore
//! run genuinely multi-threaded, and a parallel call costs a queue push —
//! not a per-call thread spawn (the retired design spawned a scoped team
//! per call, which dominated sub-millisecond passes).
//!
//! ## Execution model
//!
//! * The team size comes from `BINGO_THREADS` (a positive integer), else
//!   [`std::thread::available_parallelism`]; [`current_num_threads`] reports
//!   it and [`with_threads`] pins it for a scope (shim extension used by the
//!   determinism tests and `repro parallel`). Workers are persistent
//!   daemons: the pool grows to the largest team ever requested (plus
//!   [`ensure_pool_workers`] floors) and parks idle workers on a condvar.
//! * Inputs are split into chunks whose boundaries depend only on the input
//!   length and [`ParIter::with_min_len`] — never on the thread count or on
//!   which participant claims which chunk — and outputs are reassembled in
//!   input order. **Every combinator is bit-identical across thread
//!   counts**, including chunked `reduce` and floating-point `sum`.
//!   Chunking is fused and range-based: chunk items are moved straight out
//!   of the one source buffer, never re-materialized per chunk.
//! * Worker panics are re-raised on the caller with their original payload;
//!   nested parallel calls inside a pool participant run sequentially
//!   inline.
//!
//! ## Closure contract
//!
//! Closures run concurrently on several threads, so combinators require
//! `Fn + Sync` (rayon requires `Fn + Send + Sync`; `Send` is implied here
//! because the closures are only *shared* across the team, never moved to
//! it) and item types must be `Send`. A closure that smuggles mutable state
//! (`FnMut` captures, `Cell`s, shared counters without atomics) does not
//! compile — which is the point: sequential execution silently tolerated
//! such latent bugs, parallel execution must not.
//!
//! [`ParIter::reduce`] additionally has a **semantic** contract the type
//! system cannot check: see its docs.

// The persistent pool serves *borrowed* fork-join jobs, which requires a
// contained lifetime erasure plus the fused chunk store's in-place item
// moves; every unsafe site is `#[allow]`ed individually next to its
// SAFETY argument (see `runtime.rs` / `pool.rs`). Everything else in the
// shim stays safe code.
#![deny(unsafe_code)]

pub mod pool;
mod runtime;

pub use pool::{
    current_num_threads, pool_profile, pool_profiling_enabled, reset_pool_profile,
    set_pool_profiling, with_threads, PoolProfile,
};
pub use runtime::{ensure_pool_workers, join, spawn, spawn_blocking};

/// A per-item pipeline stage: feeds each input item through the composed
/// combinator stack, emitting zero or more outputs (zero for a filtered
/// item, several after `flatten`).
pub trait ParOp<In>: Sync {
    /// The pipeline's output item type at this stage.
    type Out;
    /// Process one item, passing every produced output to `emit`.
    fn feed(&self, item: In, emit: &mut dyn FnMut(Self::Out));
}

/// The identity stage: emits every item unchanged. The stage every freshly
/// constructed [`ParIter`] starts with.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl<T> ParOp<T> for Identity {
    type Out = T;
    #[inline]
    fn feed(&self, item: T, emit: &mut dyn FnMut(T)) {
        emit(item)
    }
}

/// [`ParIter::map`] stage.
pub struct MapOp<P, F> {
    inner: P,
    f: F,
}

impl<In, P, T, F> ParOp<In> for MapOp<P, F>
where
    P: ParOp<In>,
    F: Fn(P::Out) -> T + Sync,
{
    type Out = T;
    #[inline]
    fn feed(&self, item: In, emit: &mut dyn FnMut(T)) {
        self.inner.feed(item, &mut |x| emit((self.f)(x)))
    }
}

/// [`ParIter::filter`] stage.
pub struct FilterOp<P, F> {
    inner: P,
    f: F,
}

impl<In, P, F> ParOp<In> for FilterOp<P, F>
where
    P: ParOp<In>,
    F: Fn(&P::Out) -> bool + Sync,
{
    type Out = P::Out;
    #[inline]
    fn feed(&self, item: In, emit: &mut dyn FnMut(P::Out)) {
        self.inner.feed(item, &mut |x| {
            if (self.f)(&x) {
                emit(x)
            }
        })
    }
}

/// [`ParIter::filter_map`] stage.
pub struct FilterMapOp<P, F> {
    inner: P,
    f: F,
}

impl<In, P, T, F> ParOp<In> for FilterMapOp<P, F>
where
    P: ParOp<In>,
    F: Fn(P::Out) -> Option<T> + Sync,
{
    type Out = T;
    #[inline]
    fn feed(&self, item: In, emit: &mut dyn FnMut(T)) {
        self.inner.feed(item, &mut |x| {
            if let Some(y) = (self.f)(x) {
                emit(y)
            }
        })
    }
}

/// [`ParIter::flatten`] stage.
pub struct FlattenOp<P> {
    inner: P,
}

impl<In, P> ParOp<In> for FlattenOp<P>
where
    P: ParOp<In>,
    P::Out: IntoIterator,
{
    type Out = <P::Out as IntoIterator>::Item;
    #[inline]
    fn feed(&self, item: In, emit: &mut dyn FnMut(Self::Out)) {
        self.inner.feed(item, &mut |xs| {
            for x in xs {
                emit(x)
            }
        })
    }
}

/// A parallel iterator: a materialized source plus a lazily composed
/// per-item pipeline, executed chunk-wise on the shim's thread team with
/// input order preserved.
pub struct ParIter<S, P = Identity> {
    source: Vec<S>,
    op: P,
    min_len: usize,
}

impl<S: Send> ParIter<S> {
    /// Wrap an already-materialized source.
    pub fn from_vec(source: Vec<S>) -> Self {
        ParIter {
            source,
            op: Identity,
            min_len: 1,
        }
    }

    /// Pair every item with its index.
    ///
    /// Like rayon, this is only available while the pipeline is still
    /// index-preserving (directly on a source, before `map`/`filter`/…).
    pub fn enumerate(self) -> ParIter<(usize, S)> {
        ParIter {
            source: self.source.into_iter().enumerate().collect(),
            op: Identity,
            min_len: self.min_len,
        }
    }

    /// Zip with another parallel iterator, truncating to the shorter side.
    ///
    /// Index-preserving pipelines only, like [`ParIter::enumerate`].
    pub fn zip<S2: Send>(self, other: ParIter<S2>) -> ParIter<(S, S2)> {
        ParIter {
            source: self.source.into_iter().zip(other.source).collect(),
            op: Identity,
            min_len: self.min_len.max(other.min_len),
        }
    }
}

impl<S, P> ParIter<S, P>
where
    S: Send,
    P: ParOp<S>,
    P::Out: Send,
{
    /// Map every item through `f`.
    pub fn map<T, F>(self, f: F) -> ParIter<S, MapOp<P, F>>
    where
        F: Fn(P::Out) -> T + Sync,
    {
        ParIter {
            source: self.source,
            op: MapOp { inner: self.op, f },
            min_len: self.min_len,
        }
    }

    /// Keep items matching the predicate.
    pub fn filter<F>(self, f: F) -> ParIter<S, FilterOp<P, F>>
    where
        F: Fn(&P::Out) -> bool + Sync,
    {
        ParIter {
            source: self.source,
            op: FilterOp { inner: self.op, f },
            min_len: self.min_len,
        }
    }

    /// Keep items for which `f` returns `Some`.
    pub fn filter_map<T, F>(self, f: F) -> ParIter<S, FilterMapOp<P, F>>
    where
        F: Fn(P::Out) -> Option<T> + Sync,
    {
        ParIter {
            source: self.source,
            op: FilterMapOp { inner: self.op, f },
            min_len: self.min_len,
        }
    }

    /// Flatten nested iterables.
    pub fn flatten(self) -> ParIter<S, FlattenOp<P>>
    where
        P::Out: IntoIterator,
    {
        ParIter {
            source: self.source,
            op: FlattenOp { inner: self.op },
            min_len: self.min_len,
        }
    }

    /// Lower bound on the number of items a chunk may contain. Rayon uses
    /// this to stop splitting; here it coarsens the executor's chunk size
    /// the same way, so tiny per-item workloads are not drowned in task
    /// dispatch overhead. The bound also feeds the sequential fast path: an
    /// input that fits in one chunk never touches the thread team.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min);
        self
    }

    /// Execute the pipeline, returning all outputs in input order.
    fn run(self) -> Vec<P::Out> {
        let ParIter {
            source,
            op,
            min_len,
        } = self;
        let chunks = pool::run_chunks(source, min_len, |chunk| {
            let mut out = Vec::with_capacity(chunk.len());
            for item in chunk {
                op.feed(item, &mut |x| out.push(x));
            }
            out
        });
        let mut result = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            result.extend(chunk);
        }
        result
    }

    /// Per-chunk fold with `fold`, then an in-order combine of the chunk
    /// accumulators with `combine`. The building block for the reductions.
    fn fold_chunks<A, FOLD, COMBINE>(self, fold: FOLD, combine: COMBINE) -> Option<A>
    where
        A: Send,
        FOLD: Fn(Option<A>, P::Out) -> Option<A> + Sync,
        COMBINE: Fn(A, A) -> A,
    {
        let ParIter {
            source,
            op,
            min_len,
        } = self;
        let partials = pool::run_chunks(source, min_len, |chunk| {
            let mut acc: Option<A> = None;
            for item in chunk {
                op.feed(item, &mut |x| {
                    acc = fold(acc.take(), x);
                });
            }
            acc
        });
        partials.into_iter().flatten().reduce(combine)
    }

    /// Collect into any `FromIterator` container, preserving input order.
    pub fn collect<C: FromIterator<P::Out>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Rayon-style reduce: fold from an identity element.
    ///
    /// # Associativity contract
    ///
    /// `op` **must be associative** and `identity()` must be a true identity
    /// for it. Each chunk is folded left-to-right from `identity()`, and the
    /// chunk accumulators are then combined left-to-right in chunk order —
    /// a tree of the same shape rayon produces. For associative `op` the
    /// result equals the plain sequential left fold; for a non-associative
    /// `op` the grouping (but nothing else — chunk boundaries are
    /// thread-count-independent) shows through, exactly as it would under
    /// rayon. Audit note: the only `reduce` consumer in this workspace is
    /// `BingoEngine::memory_report`, whose `MemoryReport::merge` is
    /// integer-wise addition — associative and commutative.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Out
    where
        ID: Fn() -> P::Out + Sync,
        OP: Fn(P::Out, P::Out) -> P::Out + Sync,
    {
        let folded = self.fold_chunks(
            |acc: Option<P::Out>, x| Some(op(acc.unwrap_or_else(&identity), x)),
            &op,
        );
        folded.unwrap_or_else(identity)
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Out) + Sync,
    {
        self.map(f).run();
    }

    /// Sum the items. Chunk partial sums are combined in chunk order, so
    /// floating-point totals are deterministic and thread-count-independent
    /// (though they may differ from a single sequential accumulation at the
    /// last-ulp level, as any chunked summation does).
    pub fn sum<T>(self) -> T
    where
        T: std::iter::Sum<P::Out> + std::iter::Sum<T> + Send,
    {
        let partials = {
            let ParIter {
                source,
                op,
                min_len,
            } = self;
            pool::run_chunks(source, min_len, |chunk| {
                let mut items = Vec::with_capacity(chunk.len());
                for item in chunk {
                    op.feed(item, &mut |x| items.push(x));
                }
                items.into_iter().sum::<T>()
            })
        };
        partials.into_iter().sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        let ParIter {
            source,
            op,
            min_len,
        } = self;
        let partials = pool::run_chunks(source, min_len, |chunk| {
            let mut n = 0usize;
            for item in chunk {
                op.feed(item, &mut |_| n += 1);
            }
            n
        });
        partials.into_iter().sum()
    }

    /// Maximum item (the last of equal maxima, as `Iterator::max`).
    pub fn max(self) -> Option<P::Out>
    where
        P::Out: Ord,
    {
        self.fold_chunks(
            |acc: Option<P::Out>, x| match acc {
                Some(a) if a > x => Some(a),
                _ => Some(x),
            },
            |a, b| if b >= a { b } else { a },
        )
    }

    /// Minimum item (the first of equal minima, as `Iterator::min`).
    pub fn min(self) -> Option<P::Out>
    where
        P::Out: Ord,
    {
        self.fold_chunks(
            |acc: Option<P::Out>, x| match acc {
                Some(a) if a <= x => Some(a),
                _ => Some(x),
            },
            |a, b| if b < a { b } else { a },
        )
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator: IntoIterator + Sized
where
    Self::Item: Send,
{
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T where T::Item: Send {}

/// `par_iter()` on shared references (slices, vectors, maps, …).
pub trait IntoParallelRefIterator<'data> {
    /// The item type yielded by shared-reference iteration.
    type Item: Send;
    /// Iterate by shared reference.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

/// `par_iter_mut()` on exclusive references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The item type yielded by exclusive-reference iteration.
    type Item: Send;
    /// Iterate by exclusive reference.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
    <&'data mut C as IntoIterator>::Item: Send,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        ParIter::from_vec(self.into_iter().collect())
    }
}

pub mod prelude {
    //! Rayon-compatible prelude.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, with_threads};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn zip_and_mut_iteration() {
        let mut a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x += y);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn rayon_style_reduce() {
        let total = (1..=10u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 55);
        let empty = Vec::<u64>::new().into_par_iter().reduce(|| 7, |a, b| a + b);
        assert_eq!(empty, 7);
    }

    #[test]
    fn large_map_collect_preserves_order_across_thread_counts() {
        let expected: Vec<u64> = (0..50_000u64).map(|i| i.wrapping_mul(i)).collect();
        for threads in [1, 2, 8] {
            let got: Vec<u64> = with_threads(threads, || {
                (0..50_000u64)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(i))
                    .collect()
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn filter_filter_map_flatten_enumerate() {
        let evens: Vec<u32> = (0..100u32)
            .into_par_iter()
            .filter(|&x| x % 2 == 0)
            .collect();
        assert_eq!(evens.len(), 50);
        let halves: Vec<u32> = (0..100u32)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(x / 2))
            .collect();
        assert_eq!(halves, (0..50).collect::<Vec<_>>());
        let flat: Vec<u32> = (0..10u32)
            .into_par_iter()
            .map(|x| vec![x; 3])
            .flatten()
            .collect();
        assert_eq!(flat.len(), 30);
        let indexed: Vec<(usize, char)> = ['a', 'b', 'c']
            .par_iter()
            .enumerate()
            .map(|(i, &c)| (i, c))
            .collect();
        assert_eq!(indexed, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }

    #[test]
    fn sums_min_max_count() {
        let s: u64 = (1..=1000u64).into_par_iter().sum();
        assert_eq!(s, 500_500);
        assert_eq!(
            (0..1000u32).into_par_iter().filter(|x| x % 3 == 0).count(),
            334
        );
        assert_eq!((0..1000i32).into_par_iter().max(), Some(999));
        assert_eq!((0..1000i32).into_par_iter().min(), Some(0));
        assert_eq!(Vec::<i32>::new().into_par_iter().max(), None);
    }

    #[test]
    fn float_sum_is_thread_count_independent() {
        let one: f64 = with_threads(1, || {
            (0..100_000u64)
                .into_par_iter()
                .map(|i| 1.0 / (i + 1) as f64)
                .sum()
        });
        let eight: f64 = with_threads(8, || {
            (0..100_000u64)
                .into_par_iter()
                .map(|i| 1.0 / (i + 1) as f64)
                .sum()
        });
        assert_eq!(one.to_bits(), eight.to_bits());
    }

    #[test]
    fn reduce_matches_sequential_fold_for_associative_ops() {
        let data: Vec<u64> = (0..10_007u64).map(|i| i ^ 0xABCD).collect();
        let seq = data.iter().fold(u64::MAX, |a, &b| a.min(b));
        for threads in [1, 4] {
            let par = with_threads(threads, || {
                data.par_iter()
                    .map(|&x| x)
                    .reduce(|| u64::MAX, |a, b| a.min(b))
            });
            assert_eq!(par, seq);
        }
    }

    #[test]
    fn with_min_len_bounds_split_granularity() {
        // With min_len >= len the input is one chunk: the pipeline runs
        // inline on the caller thread even with a large team.
        let caller = std::thread::current().id();
        with_threads(8, || {
            (0..100u32)
                .into_par_iter()
                .with_min_len(100)
                .for_each(|_| assert_eq!(std::thread::current().id(), caller));
        });
        // Results are unaffected by the bound.
        let a: Vec<u32> = (0..1000u32)
            .into_par_iter()
            .with_min_len(64)
            .map(|x| x + 1)
            .collect();
        let b: Vec<u32> = (0..1000u32).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                (0..10_000u32).into_par_iter().for_each(|x| {
                    if x == 7_777 {
                        panic!("walker exploded at {x}");
                    }
                });
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("walker exploded"), "payload: {msg:?}");
    }

    #[test]
    fn nested_par_iter_inside_a_pool_task_runs_inline() {
        let spawned = AtomicUsize::new(0);
        let totals: Vec<u64> = with_threads(4, || {
            (0..64u64)
                .into_par_iter()
                .map(|i| {
                    // Inside a worker the team size must report 1 and the
                    // nested pipeline must still produce correct results.
                    if current_num_threads() != 1 {
                        spawned.fetch_add(1, Ordering::Relaxed);
                    }
                    (0..100u64).into_par_iter().map(|j| i * j).sum()
                })
                .collect()
        });
        assert_eq!(totals.len(), 64);
        for (i, &t) in totals.iter().enumerate() {
            assert_eq!(t, i as u64 * 4950);
        }
        assert_eq!(spawned.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn pool_sizing_is_overridable() {
        assert!(current_num_threads() >= 1);
        assert_eq!(with_threads(2, current_num_threads), 2);
    }
}

//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! rayon entry points the workspace uses (`par_iter`, `par_iter_mut`,
//! `into_par_iter`) with **sequential** execution. The combinator surface
//! matches rayon where the two differ from `std::iter::Iterator` — notably
//! `reduce(identity, op)`.
//!
//! Results are identical to rayon's (rayon's order-preserving combinators
//! make parallel map/collect deterministic); only wall-clock scaling is
//! lost. The multi-threaded data path of this repository is the shard-worker
//! architecture in `bingo-service`, which uses `std::thread` directly.

#![forbid(unsafe_code)]

/// Sequential stand-in for a rayon parallel iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Map every item through `f`.
    pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep items for which `f` returns `Some`.
    pub fn filter_map<T, F: FnMut(I::Item) -> Option<T>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Keep items matching the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Zip with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Flatten nested iterables.
    pub fn flatten(self) -> ParIter<std::iter::Flatten<I>>
    where
        I::Item: IntoIterator,
    {
        ParIter(self.0.flatten())
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce: fold from an identity element.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Maximum item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum item.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Rayon accepts a minimum split length; a no-op here.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Conversion into a (sequentially executed) parallel iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` on shared references (slices, vectors, maps, …).
pub trait IntoParallelRefIterator<'data> {
    /// The underlying sequential iterator type.
    type Iter: Iterator;
    /// Iterate by shared reference.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter_mut()` on exclusive references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The underlying sequential iterator type.
    type Iter: Iterator;
    /// Iterate by exclusive reference.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Iter = <&'data mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

pub mod prelude {
    //! Rayon-compatible prelude.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn zip_and_mut_iteration() {
        let mut a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x += y);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn rayon_style_reduce() {
        let total = (1..=10u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 55);
    }
}

//! The shim's parallel executor: a lazily-sized, chunk-splitting fork-join
//! scheduler over `std::thread`.
//!
//! ## Design
//!
//! Every top-level parallel operation goes through `run_chunks`:
//!
//! 1. The input items are split into **chunks** whose size depends only on
//!    the input length and the iterator's `with_min_len` bound — *never* on
//!    the thread count. Chunk boundaries are therefore deterministic, which
//!    makes every combinator (including floating-point `sum` and chunked
//!    `reduce`) produce bit-identical results whether the pool runs 1 or 64
//!    threads.
//! 2. A team of scoped worker threads (`std::thread::scope`, so borrowed
//!    closures and items need no `'static` bound and no `unsafe`) claims
//!    chunk indices from a shared atomic counter. This is the degenerate
//!    work-stealing scheme: the "deque" is the global remaining-chunk index,
//!    and an idle worker steals the next chunk the moment it finishes its
//!    own — fast workers automatically absorb the slow workers' backlog.
//! 3. Chunk results are written into per-chunk slots and reassembled in
//!    chunk order, so output order always matches input order (what rayon's
//!    index-preserving combinators guarantee).
//!
//! The team size is resolved lazily once per process from `BINGO_THREADS`
//! (else [`std::thread::available_parallelism`]) and can be overridden for a
//! scope with [`with_threads`] — the hook the determinism tests and the
//! `repro parallel` experiment use to compare 1-thread and N-thread runs in
//! one process.
//!
//! ## Panics
//!
//! A panic inside a worker aborts the remaining chunks, is captured with its
//! original payload, and is re-raised on the calling thread once every
//! worker has parked — exactly what callers of a sequential iterator would
//! observe, minus the work that was already in flight.
//!
//! ## Nesting
//!
//! A parallel call issued *from inside a pool worker* (nested `par_iter`)
//! runs sequentially inline on that worker. The outer call already owns the
//! machine; spawning a second team per worker would oversubscribe the CPU
//! without adding parallelism.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on the number of chunks a parallel call is split into (before
/// `with_min_len` coarsening). More chunks than workers gives the
/// shared-counter scheduler room to balance uneven per-item cost; a fixed
/// bound keeps chunk boundaries independent of the thread count so results
/// are bit-identical across pool sizes.
const TARGET_CHUNKS: usize = 64;

thread_local! {
    /// Set while the current thread is a pool worker: nested parallel calls
    /// must run inline instead of spawning a second team.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Scoped thread-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Process-wide cumulative pool profile cells (shim extension, std-only so
/// the shim keeps zero dependencies; the serving stack mirrors these into
/// its telemetry registry under the `pool.*` metric names).
struct ProfileCells {
    calls: AtomicU64,
    chunks_claimed: AtomicU64,
    worker_busy_ns: AtomicU64,
    worker_idle_ns: AtomicU64,
    scope_ns: AtomicU64,
}

static PROFILE: ProfileCells = ProfileCells {
    calls: AtomicU64::new(0),
    chunks_claimed: AtomicU64::new(0),
    worker_busy_ns: AtomicU64::new(0),
    worker_idle_ns: AtomicU64::new(0),
    scope_ns: AtomicU64::new(0),
};

/// Whether the nanosecond timers run. Call/chunk counts are always cheap
/// and always collected; the busy/idle/scope clocks cost two `Instant`
/// reads per chunk and are off unless something opts in.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// A point-in-time copy of the pool's cumulative profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolProfile {
    /// Top-level parallel calls executed (`run_chunks` entries, including
    /// sequential fast-path and nested-inline executions).
    pub calls: u64,
    /// Chunks executed. Chunk boundaries are thread-count-independent, so
    /// for a given workload this count is identical under any
    /// `BINGO_THREADS`.
    pub chunks_claimed: u64,
    /// Nanoseconds workers spent inside chunk bodies (0 unless profiling
    /// is enabled).
    pub worker_busy_ns: u64,
    /// Worker wall nanoseconds *not* spent in chunk bodies — claim loops,
    /// waiting on the scope (0 unless profiling is enabled).
    pub worker_idle_ns: u64,
    /// Wall nanoseconds inside parallel sections, as seen by the calling
    /// thread (0 unless profiling is enabled).
    pub scope_ns: u64,
}

/// Turn the pool's nanosecond timers on or off (counts are always on).
/// `bingo_service::WalkService::build_with_telemetry` enables this
/// automatically when its telemetry handle is detailed.
pub fn set_pool_profiling(enabled: bool) {
    // relaxed-ok: an on/off stats switch; a late-observed toggle only
    // means one parallel call is profiled (or not) a beat later.
    PROFILING.store(enabled, Ordering::Relaxed);
}

/// Whether the nanosecond timers are currently on.
pub fn pool_profiling_enabled() -> bool {
    // relaxed-ok: see set_pool_profiling.
    PROFILING.load(Ordering::Relaxed)
}

/// A point-in-time copy of the pool's cumulative profile counters.
pub fn pool_profile() -> PoolProfile {
    // relaxed-ok (all loads below): monotone stats counters read for
    // reporting; torn cross-counter snapshots are acceptable.
    PoolProfile {
        calls: PROFILE.calls.load(Ordering::Relaxed), // relaxed-ok: stats
        chunks_claimed: PROFILE.chunks_claimed.load(Ordering::Relaxed), // relaxed-ok: stats
        worker_busy_ns: PROFILE.worker_busy_ns.load(Ordering::Relaxed), // relaxed-ok: stats
        worker_idle_ns: PROFILE.worker_idle_ns.load(Ordering::Relaxed), // relaxed-ok: stats
        scope_ns: PROFILE.scope_ns.load(Ordering::Relaxed), // relaxed-ok: stats
    }
}

/// Zero every profile cell (for before/after measurements in tests and
/// experiments; racy against concurrent parallel calls, so reset while the
/// pool is quiet).
pub fn reset_pool_profile() {
    // relaxed-ok (all stores below): stats reset, documented racy.
    PROFILE.calls.store(0, Ordering::Relaxed); // relaxed-ok: stats reset
    PROFILE.chunks_claimed.store(0, Ordering::Relaxed); // relaxed-ok: stats reset
    PROFILE.worker_busy_ns.store(0, Ordering::Relaxed); // relaxed-ok: stats reset
    PROFILE.worker_idle_ns.store(0, Ordering::Relaxed); // relaxed-ok: stats reset
    PROFILE.scope_ns.store(0, Ordering::Relaxed); // relaxed-ok: stats reset
}

/// Parse a `BINGO_THREADS`-style value: a positive integer. `None` for
/// anything else (empty, zero, garbage), meaning "use the default".
pub(crate) fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-wide default team size: `BINGO_THREADS` if set and valid,
/// else [`std::thread::available_parallelism`], else 1. Resolved once.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        parse_threads(std::env::var("BINGO_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// The number of threads the *next* parallel call on this thread will use:
/// 1 inside a pool worker (nested calls run inline), else the
/// [`with_threads`] override if one is active, else the process default.
pub fn current_num_threads() -> usize {
    if IN_POOL_WORKER.with(std::cell::Cell::get) {
        return 1;
    }
    THREAD_OVERRIDE
        .with(std::cell::Cell::get)
        .unwrap_or_else(default_threads)
}

/// Run `f` with the pool team size pinned to `threads.max(1)` on this
/// thread (shim extension, not a rayon API). This is how the determinism
/// tests and the `repro parallel` experiment compare a 1-thread and an
/// N-thread execution inside one process; `BINGO_THREADS` serves the same
/// purpose across processes. The override is restored on exit, including
/// on panic.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|cell| cell.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|cell| cell.replace(Some(threads.max(1)))));
    f()
}

/// Deterministic chunk size: depends only on `len` and `min_len`, never on
/// the thread count (see the module docs for why).
fn chunk_size(len: usize, min_len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(min_len).max(1)
}

/// Split `items` into chunks, apply `chunk_fn` to every chunk on the worker
/// team, and return the per-chunk results **in chunk order**.
///
/// `chunk_fn` must be safe to call concurrently from several threads
/// (`Sync`, shared by reference); each individual chunk is processed by
/// exactly one worker.
pub(crate) fn run_chunks<S, R, F>(items: Vec<S>, min_len: usize, chunk_fn: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(Vec<S>) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let size = chunk_size(len, min_len);
    let num_chunks = len.div_ceil(size);
    let mut chunks: Vec<Vec<S>> = Vec::with_capacity(num_chunks);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<S> = iter.by_ref().take(size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    debug_assert_eq!(chunks.len(), num_chunks);
    // relaxed-ok: stats counters (calls / chunks_claimed); nothing reads
    // them for synchronization.
    PROFILE.calls.fetch_add(1, Ordering::Relaxed);
    // relaxed-ok: stats counter.
    PROFILE
        .chunks_claimed
        .fetch_add(num_chunks as u64, Ordering::Relaxed);
    let profiling = pool_profiling_enabled();

    let workers = current_num_threads().min(num_chunks);
    if workers <= 1 {
        // Sequential fast path: same chunk boundaries, same results, no
        // thread traffic. This is also the nested-call path. The caller IS
        // the worker here: scope == busy, idle = 0.
        // lint:allow(determinism): opt-in profiling clock; never feeds
        // walk output, only the PoolProfile stats cells.
        let started = profiling.then(Instant::now);
        let out: Vec<R> = chunks.into_iter().map(chunk_fn).collect();
        if let Some(started) = started {
            let ns = started.elapsed().as_nanos() as u64;
            // relaxed-ok: profiling nanosecond accumulators, stats only.
            PROFILE.scope_ns.fetch_add(ns, Ordering::Relaxed);
            // relaxed-ok: profiling accumulator, stats only.
            PROFILE.worker_busy_ns.fetch_add(ns, Ordering::Relaxed);
        }
        return out;
    }

    // Input and output slots the team claims through an atomic cursor. The
    // per-slot mutexes are uncontended (each slot is touched by exactly one
    // worker); they exist to hand owned chunks across threads without
    // `unsafe`.
    let inputs: Vec<Mutex<Option<Vec<S>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    // lint:allow(determinism): opt-in profiling clock, stats only.
    let scope_started = profiling.then(Instant::now);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_POOL_WORKER.with(|flag| flag.set(true));
                // lint:allow(determinism): opt-in profiling clock.
                let worker_started = profiling.then(Instant::now);
                let mut busy_ns = 0u64;
                loop {
                    // Acquire: pairs with the Release store below so a
                    // worker that observes the abort flag also observes
                    // everything the panicking worker published before it.
                    if abort.load(Ordering::Acquire) {
                        break;
                    }
                    // AcqRel: the chunk-claim point. The RMW total order
                    // alone guarantees unique claims, but acquire/release
                    // also orders each claim with the claimant's slot
                    // traffic, so no later claimer can observe a slot
                    // ahead of the cursor that handed it out.
                    let i = cursor.fetch_add(1, Ordering::AcqRel);
                    if i >= inputs.len() {
                        break;
                    }
                    let chunk = inputs[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("chunk claimed once");
                    // lint:allow(determinism): opt-in profiling clock.
                    let chunk_started = profiling.then(Instant::now);
                    let outcome = catch_unwind(AssertUnwindSafe(|| chunk_fn(chunk)));
                    if let Some(started) = chunk_started {
                        busy_ns += started.elapsed().as_nanos() as u64;
                    }
                    match outcome {
                        Ok(result) => {
                            *outputs[i]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                        }
                        Err(payload) => {
                            // Release: publishes the panic decision (and
                            // everything before it) to Acquire readers.
                            abort.store(true, Ordering::Release);
                            panic_payload
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .get_or_insert(payload);
                            break;
                        }
                    }
                }
                if let Some(started) = worker_started {
                    let wall = started.elapsed().as_nanos() as u64;
                    // relaxed-ok: profiling accumulators, stats only.
                    PROFILE.worker_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
                    // relaxed-ok: profiling accumulator, stats only.
                    PROFILE
                        .worker_idle_ns
                        .fetch_add(wall.saturating_sub(busy_ns), Ordering::Relaxed);
                }
            });
        }
    });
    if let Some(started) = scope_started {
        // relaxed-ok: profiling accumulator, stats only.
        PROFILE
            .scope_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    if let Some(payload) = panic_payload
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        resume_unwind(payload);
    }
    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("all chunks completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 16 ")), Some(16));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn chunk_size_honors_min_len_and_len() {
        assert_eq!(chunk_size(10, 1), 1);
        assert_eq!(chunk_size(10, 4), 4);
        assert_eq!(chunk_size(6400, 1), 100);
        assert_eq!(chunk_size(6400, 512), 512);
        assert_eq!(chunk_size(1, 1), 1);
        // min_len == 0 is treated as 1, never a zero-sized chunk.
        assert_eq!(chunk_size(10, 0), 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_num_threads();
        let inner = with_threads(3, current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
        // Zero is clamped to one.
        assert_eq!(with_threads(0, current_num_threads), 1);
        // The override survives a panic inside the scope.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(5, || panic!("boom"));
        }));
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn profile_counts_calls_and_chunks() {
        // Other tests in this binary run concurrently and also bump the
        // global cells, so assert on deltas with ≥, never equality.
        let before = pool_profile();
        set_pool_profiling(true);
        let sums: Vec<u64> = with_threads(4, || {
            run_chunks((0..1_000u64).collect(), 1, |chunk: Vec<u64>| {
                chunk.iter().sum::<u64>()
            })
        });
        set_pool_profiling(false);
        assert_eq!(sums.iter().sum::<u64>(), 1_000 * 999 / 2);
        let after = pool_profile();
        assert!(after.calls > before.calls);
        let expected_chunks = 1_000u64.div_ceil(chunk_size(1_000, 1) as u64);
        assert!(after.chunks_claimed >= before.chunks_claimed + expected_chunks);
        assert!(
            after.scope_ns > before.scope_ns,
            "profiling was on: the scope clock must have advanced"
        );
        assert!(after.worker_busy_ns > before.worker_busy_ns);
    }

    #[test]
    fn run_chunks_preserves_chunk_order() {
        for &threads in &[1usize, 2, 7] {
            let sums: Vec<u64> = with_threads(threads, || {
                run_chunks((0..10_000u64).collect(), 1, |chunk: Vec<u64>| {
                    chunk.iter().sum::<u64>()
                })
            });
            let total: u64 = sums.iter().sum();
            assert_eq!(total, 10_000 * 9_999 / 2);
            // Per-chunk results come back in chunk order: they must match a
            // sequential walk over the same (thread-count-independent)
            // chunk boundaries exactly.
            let size = chunk_size(10_000, 1);
            let expected: Vec<u64> = (0..10_000u64)
                .collect::<Vec<_>>()
                .chunks(size)
                .map(|c| c.iter().sum())
                .collect();
            assert_eq!(sums, expected, "threads={threads}");
        }
    }
}

//! Chunked execution over the persistent runtime: deterministic chunk
//! geometry, the fused chunk store, thread-team configuration, and the
//! pool profile counters.
//!
//! ## Design
//!
//! Every top-level parallel combinator goes through `run_chunks`:
//!
//! 1. The input items are split into **chunks** whose size depends only on
//!    the input length and the iterator's `with_min_len` bound — *never* on
//!    the thread count. Chunk boundaries are therefore deterministic, which
//!    makes every combinator (including floating-point `sum` and chunked
//!    `reduce`) produce bit-identical results whether the pool runs 1 or 64
//!    threads.
//! 2. Chunking is **fused and range-based**: the input vector is never
//!    re-materialized into per-chunk vectors. A `ChunkStore` keeps the
//!    one source buffer and hands out item *ranges* through an atomic
//!    claim cursor; the claimant moves items straight out of the buffer
//!    via the consuming `ChunkItems` iterator. An idle participant
//!    claims the next chunk the moment it finishes its own, so fast
//!    threads automatically absorb slow threads' backlog.
//! 3. Claimants are the **persistent parked workers** of
//!    `crate::runtime` plus the calling thread itself — no threads are
//!    spawned per call (the previous scoped-team design paid a
//!    spawn/join per pass, which dominated sub-millisecond workloads).
//!    Per-chunk results are written into order-preserving slots, so
//!    output order always matches input order.
//!
//! The team size is resolved lazily once per process from `BINGO_THREADS`
//! (else [`std::thread::available_parallelism`]) and can be overridden for a
//! scope with [`with_threads`] — the hook the determinism tests and the
//! `repro parallel` experiment use to compare 1-thread and N-thread runs in
//! one process.
//!
//! ## Panics
//!
//! A panic inside a chunk body aborts the remaining chunks, is captured
//! with its original payload, and is re-raised on the calling thread once
//! every helper has checked out — exactly what callers of a sequential
//! iterator would observe, minus the work that was already in flight.
//!
//! ## Nesting
//!
//! A parallel call issued *from inside a pool participant* (nested
//! `par_iter`, including the posting caller while it works its own pass)
//! runs sequentially inline. The outer call already owns the team;
//! posting a second fan-out per participant would multiply scheduling
//! traffic without adding parallelism.

use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::runtime;

/// Upper bound on the number of chunks a parallel call is split into (before
/// `with_min_len` coarsening). More chunks than workers gives the
/// claim-cursor scheduler room to balance uneven per-item cost; a fixed
/// bound keeps chunk boundaries independent of the thread count so results
/// are bit-identical across pool sizes.
const TARGET_CHUNKS: usize = 64;

thread_local! {
    /// Set while the current thread participates in pool execution (a
    /// persistent worker, or the posting caller inside its own pass):
    /// nested parallel calls must run inline instead of fanning out again.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Scoped thread-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Process-wide cumulative pool profile cells (shim extension, std-only so
/// the shim keeps zero mandatory dependencies; the serving stack mirrors
/// these into its telemetry registry under the `pool.*` /
/// `runtime.pool.*` metric names).
struct ProfileCells {
    calls: AtomicU64,
    chunks_claimed: AtomicU64,
    steals: AtomicU64,
    tasks: AtomicU64,
    worker_busy_ns: AtomicU64,
    worker_idle_ns: AtomicU64,
    park_ns: AtomicU64,
    scope_ns: AtomicU64,
}

impl ProfileCells {
    const fn new() -> Self {
        ProfileCells {
            calls: AtomicU64::new(0),
            chunks_claimed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            worker_busy_ns: AtomicU64::new(0),
            worker_idle_ns: AtomicU64::new(0),
            park_ns: AtomicU64::new(0),
            scope_ns: AtomicU64::new(0),
        }
    }
}

/// Cumulative cells: monotone, only ever added to (never reset), so a
/// concurrent reader can never observe a value going backwards.
static PROFILE: ProfileCells = ProfileCells::new();

/// Reset baseline: [`reset_pool_profile`] snapshots the cumulative cells
/// here instead of zeroing them, and [`pool_profile`] reports the
/// saturating difference. A `record` racing a reset lands entirely on the
/// cumulative side, so busy/idle deltas can never interleave negative.
static BASELINE: ProfileCells = ProfileCells::new();

/// Whether the nanosecond timers run. Call/chunk/steal/task counts are
/// always cheap and always collected; the busy/idle/park/scope clocks cost
/// two `Instant` reads per chunk (or park) and are off unless something
/// opts in.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// A point-in-time copy of the pool's profile since the last
/// [`reset_pool_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolProfile {
    /// Top-level parallel calls executed (`run_chunks` entries, including
    /// sequential fast-path and nested-inline executions).
    pub calls: u64,
    /// Chunks executed. Chunk boundaries are thread-count-independent, so
    /// for a given workload this count is identical under any
    /// `BINGO_THREADS`.
    pub chunks_claimed: u64,
    /// Work items (chunks, `join` closures) executed by a pool worker
    /// other than the thread that posted them — the runtime's
    /// work-stealing traffic. Zero in a single-threaded configuration.
    pub steals: u64,
    /// Detached tasks ([`crate::spawn`]) executed by pool workers.
    pub tasks: u64,
    /// Nanoseconds participants spent inside chunk bodies (0 unless
    /// profiling is enabled).
    pub worker_busy_ns: u64,
    /// Participant wall nanoseconds inside a pass *not* spent in chunk
    /// bodies — claim traffic, slot writes (0 unless profiling is
    /// enabled).
    pub worker_idle_ns: u64,
    /// Nanoseconds workers spent parked on the injector condvar waiting
    /// for work (0 unless profiling is enabled). The warm-pool complement
    /// to `worker_idle_ns`: parked time is free, spinning time is not.
    pub park_ns: u64,
    /// Wall nanoseconds inside parallel sections, as seen by the calling
    /// thread (0 unless profiling is enabled).
    pub scope_ns: u64,
}

/// Turn the pool's nanosecond timers on or off (counts are always on).
/// `bingo_service::WalkService::build_with_telemetry` enables this
/// automatically when its telemetry handle is detailed.
pub fn set_pool_profiling(enabled: bool) {
    // relaxed-ok: an on/off stats switch; a late-observed toggle only
    // means one parallel call is profiled (or not) a beat later.
    PROFILING.store(enabled, Ordering::Relaxed);
}

/// Whether the nanosecond timers are currently on.
pub fn pool_profiling_enabled() -> bool {
    // relaxed-ok: see set_pool_profiling.
    PROFILING.load(Ordering::Relaxed)
}

/// The saturating difference between a cumulative cell and its reset
/// baseline.
fn delta(cell: &AtomicU64, base: &AtomicU64) -> u64 {
    // relaxed-ok: monotone stats counters read for reporting; torn
    // cross-counter snapshots are acceptable.
    cell.load(Ordering::Relaxed)
        .saturating_sub(base.load(Ordering::Relaxed)) // relaxed-ok: stats
}

/// A point-in-time copy of the pool's profile counters (cumulative cells
/// minus the [`reset_pool_profile`] baseline).
pub fn pool_profile() -> PoolProfile {
    PoolProfile {
        calls: delta(&PROFILE.calls, &BASELINE.calls),
        chunks_claimed: delta(&PROFILE.chunks_claimed, &BASELINE.chunks_claimed),
        steals: delta(&PROFILE.steals, &BASELINE.steals),
        tasks: delta(&PROFILE.tasks, &BASELINE.tasks),
        worker_busy_ns: delta(&PROFILE.worker_busy_ns, &BASELINE.worker_busy_ns),
        worker_idle_ns: delta(&PROFILE.worker_idle_ns, &BASELINE.worker_idle_ns),
        park_ns: delta(&PROFILE.park_ns, &BASELINE.park_ns),
        scope_ns: delta(&PROFILE.scope_ns, &BASELINE.scope_ns),
    }
}

/// Rebase the profile to zero by snapshotting every cumulative cell into
/// the baseline (for before/after measurements in tests and experiments).
///
/// The cumulative cells themselves are never written, so a `record` racing
/// the reset is simply attributed to one side or the other — unlike the
/// old store-zero scheme, the busy/idle deltas reported afterwards can
/// never interleave into negative (wrapped) values.
pub fn reset_pool_profile() {
    // relaxed-ok (all pairs below): stats snapshot; a concurrent record
    // between a cell's load and its baseline store lands on the
    // cumulative side and shows up in the next profile, never as a
    // negative delta.
    BASELINE
        .calls
        .store(PROFILE.calls.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stats
    BASELINE.chunks_claimed.store(
        PROFILE.chunks_claimed.load(Ordering::Relaxed), // relaxed-ok: stats
        Ordering::Relaxed,
    );
    BASELINE
        .steals
        .store(PROFILE.steals.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stats
    BASELINE
        .tasks
        .store(PROFILE.tasks.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stats
    BASELINE.worker_busy_ns.store(
        PROFILE.worker_busy_ns.load(Ordering::Relaxed), // relaxed-ok: stats
        Ordering::Relaxed,
    );
    BASELINE.worker_idle_ns.store(
        PROFILE.worker_idle_ns.load(Ordering::Relaxed), // relaxed-ok: stats
        Ordering::Relaxed,
    );
    BASELINE
        .park_ns
        .store(PROFILE.park_ns.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stats
    BASELINE
        .scope_ns
        .store(PROFILE.scope_ns.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stats
}

/// Record a participant's busy/idle split for one pass.
pub(crate) fn note_busy_idle(busy_ns: u64, idle_ns: u64) {
    // relaxed-ok: profiling accumulators, stats only.
    PROFILE.worker_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
    // relaxed-ok: profiling accumulator, stats only.
    PROFILE.worker_idle_ns.fetch_add(idle_ns, Ordering::Relaxed);
}

/// Record caller-observed wall time for one parallel section.
pub(crate) fn note_scope(ns: u64) {
    // relaxed-ok: profiling accumulator, stats only.
    PROFILE.scope_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Record work items executed by a helper worker (stolen from the poster).
pub(crate) fn note_steals(n: u64) {
    // relaxed-ok: stats counter.
    PROFILE.steals.fetch_add(n, Ordering::Relaxed);
}

/// Record one detached task executed by a pool worker.
pub(crate) fn note_task() {
    // relaxed-ok: stats counter.
    PROFILE.tasks.fetch_add(1, Ordering::Relaxed);
}

/// Record time a worker spent parked on the injector condvar.
pub(crate) fn note_park(ns: u64) {
    // relaxed-ok: profiling accumulator, stats only.
    PROFILE.park_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Permanently mark the current thread as a pool worker (daemon worker
/// startup).
pub(crate) fn mark_pool_worker() {
    IN_POOL_WORKER.with(|flag| flag.set(true));
}

/// Whether the current thread is executing with pool-worker semantics.
pub(crate) fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(std::cell::Cell::get)
}

/// Guard that restores the previous pool-worker flag on drop (used by the
/// posting caller while it participates in its own pass).
pub(crate) struct WorkerMode(bool);

impl Drop for WorkerMode {
    fn drop(&mut self) {
        let prev = self.0;
        IN_POOL_WORKER.with(|flag| flag.set(prev));
    }
}

/// Enter pool-worker mode on the current thread until the guard drops.
pub(crate) fn enter_worker_mode() -> WorkerMode {
    WorkerMode(IN_POOL_WORKER.with(|flag| flag.replace(true)))
}

/// Parse a `BINGO_THREADS`-style value: a positive integer. `None` for
/// anything else (empty, zero, garbage), meaning "use the default".
pub(crate) fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-wide default team size: `BINGO_THREADS` if set and valid,
/// else [`std::thread::available_parallelism`], else 1. Resolved once.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        parse_threads(std::env::var("BINGO_THREADS").ok().as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// The number of threads the *next* parallel call on this thread will use:
/// 1 inside a pool participant (nested calls run inline), else the
/// [`with_threads`] override if one is active, else the process default.
pub fn current_num_threads() -> usize {
    if IN_POOL_WORKER.with(std::cell::Cell::get) {
        return 1;
    }
    THREAD_OVERRIDE
        .with(std::cell::Cell::get)
        .unwrap_or_else(default_threads)
}

/// Run `f` with the pool team size pinned to `threads.max(1)` on this
/// thread (shim extension, not a rayon API). This is how the determinism
/// tests and the `repro parallel` experiment compare a 1-thread and an
/// N-thread execution inside one process; `BINGO_THREADS` serves the same
/// purpose across processes. The override is restored on exit, including
/// on panic.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            THREAD_OVERRIDE.with(|cell| cell.set(prev));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|cell| cell.replace(Some(threads.max(1)))));
    f()
}

/// Deterministic chunk size: depends only on `len` and `min_len`, never on
/// the thread count (see the module docs for why).
fn chunk_size(len: usize, min_len: usize) -> usize {
    len.div_ceil(TARGET_CHUNKS).max(min_len).max(1)
}

/// The fused chunk store: the input vector plus an atomic claim cursor
/// over its deterministic chunk ranges. Items are moved straight out of
/// the one source buffer by the claimant — no per-chunk re-materialization.
///
/// Ownership protocol: the cursor hands each chunk index to exactly one
/// claimant, whose [`ChunkItems`] iterator consumes (or, on unwind, drops)
/// every item of that range exactly once. Dropping the store releases the
/// items of chunks that were never handed out and then frees the buffer.
pub(crate) struct ChunkStore<S> {
    /// The source buffer. `ManuallyDrop` because items are moved out
    /// in-place; the buffer itself is freed (without dropping items) in
    /// `Drop` after the unclaimed tail has been released.
    buf: ManuallyDrop<Vec<S>>,
    /// `buf.as_mut_ptr()`, captured once so item reads/drops go through a
    /// pointer with write provenance.
    base: *mut S,
    size: usize,
    num_chunks: usize,
    cursor: AtomicUsize,
}

// SAFETY: items are only touched through uniquely-claimed, disjoint chunk
// ranges (the atomic cursor hands each index to exactly one claimant), and
// they are moved — never shared — so `S: Send` is the right bound.
#[allow(unsafe_code)]
unsafe impl<S: Send> Sync for ChunkStore<S> {}

impl<S> ChunkStore<S> {
    fn new(items: Vec<S>, size: usize, num_chunks: usize) -> Self {
        let mut buf = ManuallyDrop::new(items);
        let base = buf.as_mut_ptr();
        ChunkStore {
            buf,
            base,
            size,
            num_chunks,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Claim the next chunk, returning its index and consuming iterator.
    /// Each index is handed out exactly once across all participants.
    pub(crate) fn claim(&self) -> Option<(usize, ChunkItems<S>)> {
        // AcqRel: the chunk-claim point. The RMW total order alone
        // guarantees unique claims, but acquire/release also orders each
        // claim with the claimant's buffer traffic, so no later claimer
        // (or the dropping owner) can observe a range ahead of the cursor
        // that handed it out.
        let i = self.cursor.fetch_add(1, Ordering::AcqRel);
        if i >= self.num_chunks {
            return None;
        }
        let start = i * self.size;
        let end = self.buf.len().min(start + self.size);
        Some((
            i,
            ChunkItems {
                base: self.base,
                next: start,
                end,
            },
        ))
    }
}

impl<S> Drop for ChunkStore<S> {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // Acquire: pairs with the claim cursor's AcqRel so the tail
        // computed here cannot overlap a range some claimant took.
        let claimed = self.cursor.load(Ordering::Acquire).min(self.num_chunks);
        let tail = claimed * self.size;
        for i in tail..self.buf.len() {
            // SAFETY: indices >= `tail` were never handed out, so these
            // items are still live and owned by the store.
            unsafe { std::ptr::drop_in_place(self.base.add(i)) };
        }
        // SAFETY: every item has now been either moved out by a claimant,
        // dropped by a claimant's `ChunkItems`, or dropped above; zeroing
        // the length lets the Vec free the allocation without touching
        // them again.
        unsafe {
            self.buf.set_len(0);
            ManuallyDrop::drop(&mut self.buf);
        }
    }
}

/// Consuming iterator over one claimed chunk's items, moving them out of
/// the shared [`ChunkStore`] buffer. Dropping it mid-iteration (unwind in
/// a chunk body) drops the unconsumed remainder of the claimed range, so
/// item ownership stays exactly-once on every path.
///
/// Internal to the shim: instances never outlive the `run_chunks` pass
/// that created them (the pipeline closures consume them immediately).
pub(crate) struct ChunkItems<S> {
    base: *mut S,
    next: usize,
    end: usize,
}

impl<S> Iterator for ChunkItems<S> {
    type Item = S;

    #[allow(unsafe_code)]
    fn next(&mut self) -> Option<S> {
        if self.next >= self.end {
            return None;
        }
        let i = self.next;
        self.next += 1;
        // SAFETY: the range [start, end) was claimed by exactly one
        // participant (the store's atomic cursor), `i` is within the
        // source buffer, and the monotone `next` reads each index exactly
        // once; the buffer is `ManuallyDrop`, so the moved-out value is
        // never double-dropped.
        Some(unsafe { std::ptr::read(self.base.add(i)) })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl<S> ExactSizeIterator for ChunkItems<S> {}

impl<S> Drop for ChunkItems<S> {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        for i in self.next..self.end {
            // SAFETY: [next, end) of the claimed range was not consumed;
            // those items are still live and owned by this iterator.
            unsafe { std::ptr::drop_in_place(self.base.add(i)) };
        }
    }
}

/// Split `items` into deterministic chunks, apply `chunk_fn` to every chunk
/// on the persistent worker team (the caller participates), and return the
/// per-chunk results **in chunk order**.
///
/// `chunk_fn` must be safe to call concurrently from several threads
/// (`Sync`, shared by reference); each individual chunk is processed by
/// exactly one participant.
pub(crate) fn run_chunks<S, R, F>(items: Vec<S>, min_len: usize, chunk_fn: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(ChunkItems<S>) -> R + Sync,
{
    let len = items.len();
    if len == 0 {
        return Vec::new();
    }
    let size = chunk_size(len, min_len);
    let num_chunks = len.div_ceil(size);
    // relaxed-ok: stats counters (calls / chunks_claimed); nothing reads
    // them for synchronization.
    PROFILE.calls.fetch_add(1, Ordering::Relaxed);
    // relaxed-ok: stats counter.
    PROFILE
        .chunks_claimed
        .fetch_add(num_chunks as u64, Ordering::Relaxed);
    let profiling = pool_profiling_enabled();

    let workers = current_num_threads().min(num_chunks);
    let store = ChunkStore::new(items, size, num_chunks);
    if workers <= 1 {
        // Sequential fast path: same chunk boundaries, same results, no
        // pool traffic. This is also the nested-call path. The caller IS
        // the worker here: scope == busy, idle = 0.
        // lint:allow(determinism): opt-in profiling clock; never feeds
        // walk output, only the PoolProfile stats cells.
        let started = profiling.then(Instant::now);
        let mut out = Vec::with_capacity(num_chunks);
        while let Some((_, chunk)) = store.claim() {
            out.push(chunk_fn(chunk));
        }
        if let Some(started) = started {
            let ns = started.elapsed().as_nanos() as u64;
            note_scope(ns);
            note_busy_idle(ns, 0);
        }
        return out;
    }
    runtime::run_parallel(store, num_chunks, workers, profiling, chunk_fn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 16 ")), Some(16));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn chunk_size_honors_min_len_and_len() {
        assert_eq!(chunk_size(10, 1), 1);
        assert_eq!(chunk_size(10, 4), 4);
        assert_eq!(chunk_size(6400, 1), 100);
        assert_eq!(chunk_size(6400, 512), 512);
        assert_eq!(chunk_size(1, 1), 1);
        // min_len == 0 is treated as 1, never a zero-sized chunk.
        assert_eq!(chunk_size(10, 0), 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_num_threads();
        let inner = with_threads(3, current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
        // Zero is clamped to one.
        assert_eq!(with_threads(0, current_num_threads), 1);
        // The override survives a panic inside the scope.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(5, || panic!("boom"));
        }));
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn profile_counts_calls_and_chunks() {
        // Other tests in this binary run concurrently and also bump the
        // global cells, so assert on deltas with ≥, never equality.
        let before = pool_profile();
        set_pool_profiling(true);
        let sums: Vec<u64> = with_threads(4, || {
            run_chunks((0..1_000u64).collect(), 1, |chunk| chunk.sum::<u64>())
        });
        set_pool_profiling(false);
        assert_eq!(sums.iter().sum::<u64>(), 1_000 * 999 / 2);
        let after = pool_profile();
        assert!(after.calls > before.calls);
        let expected_chunks = 1_000u64.div_ceil(chunk_size(1_000, 1) as u64);
        assert!(after.chunks_claimed >= before.chunks_claimed + expected_chunks);
        assert!(
            after.scope_ns > before.scope_ns,
            "profiling was on: the scope clock must have advanced"
        );
        assert!(after.worker_busy_ns > before.worker_busy_ns);
    }

    #[test]
    fn reset_rebases_without_negative_deltas() {
        // Run some profiled work, rebase, and check the reported deltas
        // are sane. Concurrent tests may add a little work between the
        // rebase and the read, so the assertion is "no wrap-around", not
        // "exactly zero": under the old store-zero scheme a record racing
        // the reset produced deltas near u64::MAX.
        set_pool_profiling(true);
        let _: Vec<u64> = with_threads(2, || {
            run_chunks((0..10_000u64).collect(), 1, |chunk| chunk.sum::<u64>())
        });
        set_pool_profiling(false);
        assert!(pool_profile().calls >= 1);
        reset_pool_profile();
        let after = pool_profile();
        let sane = 1 << 40;
        assert!(after.calls < sane, "calls wrapped: {}", after.calls);
        assert!(
            after.worker_busy_ns < sane,
            "busy wrapped: {}",
            after.worker_busy_ns
        );
        assert!(
            after.worker_idle_ns < sane,
            "idle wrapped: {}",
            after.worker_idle_ns
        );
        assert!(after.scope_ns < sane, "scope wrapped: {}", after.scope_ns);
    }

    #[test]
    fn run_chunks_preserves_chunk_order() {
        for &threads in &[1usize, 2, 7] {
            let sums: Vec<u64> = with_threads(threads, || {
                run_chunks((0..10_000u64).collect(), 1, |chunk| chunk.sum::<u64>())
            });
            let total: u64 = sums.iter().sum();
            assert_eq!(total, 10_000 * 9_999 / 2);
            // Per-chunk results come back in chunk order: they must match a
            // sequential walk over the same (thread-count-independent)
            // chunk boundaries exactly.
            let size = chunk_size(10_000, 1);
            let expected: Vec<u64> = (0..10_000u64)
                .collect::<Vec<_>>()
                .chunks(size)
                .map(|c| c.iter().sum())
                .collect();
            assert_eq!(sums, expected, "threads={threads}");
        }
    }

    #[test]
    fn chunk_store_drops_every_item_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] usize);
        impl Drop for Counted {
            fn drop(&mut self) {
                // relaxed-ok: test drop counter.
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        // relaxed-ok: test counter baseline.
        let before = DROPS.load(Ordering::Relaxed);
        // Fully consumed pass: every item moved out and dropped by the
        // chunk bodies.
        let counts: Vec<usize> =
            run_chunks((0..100).map(Counted).collect(), 1, |chunk| chunk.count());
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // relaxed-ok: test counter.
        assert_eq!(DROPS.load(Ordering::Relaxed) - before, 100);

        // Aborted pass: a panic mid-chunk still drops the claimed chunk's
        // tail and the never-claimed chunks.
        // relaxed-ok: test counter baseline.
        let before = DROPS.load(Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(1, || {
                run_chunks((0..100).map(Counted).collect(), 1, |mut chunk| {
                    let first = chunk.next();
                    if first.is_some() {
                        panic!("abort mid-chunk");
                    }
                })
            })
        }));
        assert!(result.is_err());
        // relaxed-ok: test counter.
        assert_eq!(
            DROPS.load(Ordering::Relaxed) - before,
            100,
            "all items dropped exactly once on the panic path"
        );
    }
}

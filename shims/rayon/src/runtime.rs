//! The persistent parked-worker runtime behind every parallel entry point.
//!
//! ## Why persistent
//!
//! The previous executor design spawned a fresh `std::thread::scope` team
//! per parallel call. Spawn/join cost is microseconds per thread, which
//! dominates sub-millisecond passes (short walk waves, small engine
//! builds). This module replaces it with **one lazily-initialized,
//! process-wide team of daemon workers** that park on a condvar between
//! work items. A parallel call only pays a mutex push and a notify; the
//! workers are already warm.
//!
//! ## Architecture
//!
//! * [`Runtime`] owns the **injector**: a mutex-protected pair of queues —
//!   a list of active fork-join [`Job`]s wanting helpers, and a FIFO of
//!   detached tasks ([`spawn`]). One condvar parks idle workers.
//! * Workers are daemons: spawned on demand ([`ensure_pool_workers`] grows
//!   the set, it never shrinks), never joined, parked when the injector is
//!   empty. `bingo-service` sizes the pool to its shard count and runs its
//!   shard workers as resumable detached tasks on the same team the
//!   fork-join combinators use.
//! * Fork-join work ([`crate::pool::run_chunks`], [`join`]) is **borrowed,
//!   not boxed**: the job lives on the posting caller's stack and a
//!   lifetime-erased reference is published through the injector.
//!
//! ## Park/unpark protocol
//!
//! A worker holds the injector lock, takes the first available work item,
//! releases the lock, and runs the item; with nothing available it parks
//! on the injector condvar (atomically releasing the lock). Posters push
//! under the lock and notify after releasing it, so a wakeup can never be
//! lost: either the worker sees the new item on its locked re-check, or it
//! is parked and the notify lands.
//!
//! ## Soundness of the borrowed-job erasure
//!
//! The one `unsafe` corner of the shim is the lifetime erasure of
//! fork-join job references (`&'a dyn Job` → `&'static dyn Job`). The
//! posting protocol guarantees the reference never outlives the job:
//!
//! 1. The caller posts the job under the injector lock with a helper cap.
//! 2. A worker may pick the job up **only under the injector lock**, and
//!    checks into the job's [`Latch`] before releasing it (lock order:
//!    injector → latch).
//! 3. Before returning, the caller **revokes** the job under the injector
//!    lock — after revoke no new worker can discover the reference — and
//!    then waits on the latch until every checked-in helper has checked
//!    out.
//!
//! After revoke + latch-drain the caller again has exclusive ownership of
//! the job memory, so dropping it is sound. Helpers never touch the job
//! after their latch check-out, and the check-out's mutex release
//! happens-before the caller's wake-up observes the zero count.

use crate::pool::{self, ChunkItems, ChunkStore};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Completion latch shared by a posting caller and its helper workers:
/// counts helpers currently inside the job. The caller blocks in
/// [`Latch::wait_idle`] until every helper has checked out.
pub(crate) struct Latch {
    /// Number of helpers currently executing the job. Incremented under
    /// the injector lock at pickup (order: `rayon.inject` →
    /// `rayon.job_latch`), decremented with only the latch lock held.
    job_latch: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            job_latch: Mutex::new_named(0, "rayon.job_latch"),
            cv: Condvar::new(),
        }
    }

    /// Check a helper in. Called only under the injector lock, so a
    /// revoked job can never gain new helpers.
    fn enter(&self) {
        *self.job_latch.lock() += 1;
    }

    /// Check a helper out. The notify happens while the lock is held, so
    /// the waiting caller cannot observe zero and free the latch before
    /// this helper's unlock completes.
    fn exit(&self) {
        let mut active = self.job_latch.lock();
        *active -= 1;
        if *active == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until no helper is inside the job.
    fn wait_idle(&self) {
        let mut active = self.job_latch.lock();
        while *active > 0 {
            active = self.cv.wait(active);
        }
    }
}

/// A fork-join work item helper workers can participate in. Shared by
/// reference between the posting caller (whose stack owns the job) and
/// helpers; the post/revoke/latch protocol in the module docs guarantees
/// the reference never outlives the job.
trait Job: Sync {
    /// Run (a share of) the job on the calling worker thread.
    fn execute(&self);
    /// The latch helpers check in and out of.
    fn latch(&self) -> &Latch;
}

/// One posted fork-join job in the injector.
struct JobSlot {
    job: &'static dyn Job,
    /// Helpers started so far; the slot is removed once `helpers` reaches
    /// `wanted`, capping pool fan-in per job.
    helpers: usize,
    wanted: usize,
}

/// Injector state behind the runtime mutex.
struct Inject {
    /// Active fork-join jobs still wanting helpers, oldest first.
    jobs: Vec<JobSlot>,
    /// Detached tasks ([`spawn`]), FIFO.
    tasks: VecDeque<Box<dyn FnOnce() + Send>>,
    /// Workers spawned so far; grows monotonically.
    workers: usize,
}

/// The process-wide persistent runtime: injector + worker parking lot.
struct Runtime {
    inject: Mutex<Inject>,
    cv: Condvar,
}

/// The lazily-initialized global runtime.
fn runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime {
        inject: Mutex::new_named(
            Inject {
                jobs: Vec::new(),
                tasks: VecDeque::new(),
                workers: 0,
            },
            "rayon.inject",
        ),
        cv: Condvar::new(),
    })
}

impl Runtime {
    /// Grow the persistent worker set to at least `n` daemon threads.
    fn ensure_workers(&'static self, n: usize) {
        let mut inject = self.inject.lock();
        while inject.workers < n {
            let id = inject.workers;
            std::thread::Builder::new()
                .name(format!("bingo-pool-{id}"))
                .spawn(move || self.worker_main())
                .expect("spawn pool worker");
            inject.workers += 1;
        }
    }

    /// Publish `job` for helper pickup, capped at `wanted` helpers.
    ///
    /// Contract (enforced by the callers in this module): the poster must
    /// call [`Runtime::revoke`] and then wait the job's latch idle before
    /// the job is dropped.
    fn post(&'static self, job: &dyn Job, wanted: usize) {
        if wanted == 0 {
            return;
        }
        // Lifetime erasure of the borrowed job; see the module docs for
        // the revoke + latch protocol that keeps this sound.
        #[allow(unsafe_code)]
        let job: &'static dyn Job =
            unsafe { std::mem::transmute::<&dyn Job, &'static dyn Job>(job) };
        {
            let mut inject = self.inject.lock();
            inject.jobs.push(JobSlot {
                job,
                helpers: 0,
                wanted,
            });
        }
        self.cv.notify_all();
    }

    /// Withdraw `job` from the injector so no *new* helper can pick it up.
    /// Returns true if the slot was still present (and is now gone);
    /// helpers already inside the job are drained via its latch.
    fn revoke(&'static self, job: &dyn Job) -> bool {
        let target = job as *const dyn Job as *const ();
        let mut inject = self.inject.lock();
        let before = inject.jobs.len();
        inject
            .jobs
            .retain(|slot| slot.job as *const dyn Job as *const () != target);
        inject.jobs.len() != before
    }

    /// Queue a detached task and wake one parked worker for it.
    fn push_task(&'static self, task: Box<dyn FnOnce() + Send>) {
        self.ensure_workers(1);
        {
            let mut inject = self.inject.lock();
            inject.tasks.push_back(task);
        }
        self.cv.notify_one();
    }

    /// Take the first fork-join job still wanting helpers, checking the
    /// claimant into its latch. Runs under the injector lock.
    fn claim_job(inject: &mut Inject) -> Option<&'static dyn Job> {
        let slot = inject.jobs.first_mut()?;
        slot.helpers += 1;
        let job = slot.job;
        if slot.helpers >= slot.wanted {
            inject.jobs.remove(0);
        }
        job.latch().enter();
        Some(job)
    }

    /// Daemon worker body: serve fork-join jobs first (a caller is
    /// latch-waiting on them), then detached tasks, then park.
    fn worker_main(&'static self) {
        pool::mark_pool_worker();
        let mut inject = self.inject.lock();
        loop {
            if let Some(job) = Self::claim_job(&mut inject) {
                drop(inject);
                job.execute();
                job.latch().exit();
                inject = self.inject.lock();
                continue;
            }
            if let Some(task) = inject.tasks.pop_front() {
                drop(inject);
                // A detached task owns its own failure: a panic must not
                // take the worker (and every queued task behind it) down.
                let _ = catch_unwind(AssertUnwindSafe(task));
                pool::note_task();
                inject = self.inject.lock();
                continue;
            }
            // lint:allow(determinism): opt-in profiling clock, stats only.
            let parked = pool::pool_profiling_enabled().then(Instant::now);
            inject = self.cv.wait(inject);
            if let Some(parked) = parked {
                pool::note_park(parked.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// Grow the persistent worker pool to at least `n` daemon workers (shim
/// extension; rayon sizes its global pool at build time instead).
/// `bingo-service` calls this with its shard count so shard tasks never
/// serialize behind a one-worker pool on small machines.
pub fn ensure_pool_workers(n: usize) {
    runtime().ensure_workers(n);
}

/// Queue `f` onto the persistent pool as a detached, fire-and-forget task
/// (the rayon `spawn` shape, minus scoped lifetimes: `'static` only).
///
/// Tasks run with pool-worker semantics: nested parallel combinators
/// execute inline ([`crate::current_num_threads`] reports 1). A panicking
/// task is caught and dropped; it never takes the worker down.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) {
    runtime().push_task(Box::new(f));
}

/// Queue a long-lived, potentially blocking task (an accept loop, a
/// connection handler that may sit in a read) onto the persistent pool,
/// growing the pool by one worker first so the parked task never starves
/// fork-join passes or shard tasks of their workers (shim extension;
/// rayon proper has no blocking-task story).
pub fn spawn_blocking<F: FnOnce() + Send + 'static>(f: F) {
    let rt = runtime();
    let workers = rt.inject.lock().workers;
    rt.ensure_workers(workers + 1);
    rt.push_task(Box::new(f));
}

/// A posted `join` closure: taken by at most one helper, result handed
/// back through a slot.
struct JoinJob<B, RB> {
    join_task: Mutex<Option<B>>,
    join_result: Mutex<Option<std::thread::Result<RB>>>,
    latch: Latch,
}

impl<B, RB> JoinJob<B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    fn new(task: B) -> Self {
        JoinJob {
            join_task: Mutex::new_named(Some(task), "rayon.join_task"),
            join_result: Mutex::new_named(None, "rayon.join_result"),
            latch: Latch::new(),
        }
    }

    fn run(&self) {
        let task = self.join_task.lock().take();
        if let Some(task) = task {
            let outcome = catch_unwind(AssertUnwindSafe(task));
            *self.join_result.lock() = Some(outcome);
        }
    }
}

impl<B, RB> Job for JoinJob<B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    fn execute(&self) {
        pool::note_steals(1);
        self.run();
    }
    fn latch(&self) -> &Latch {
        &self.latch
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results — the
/// rayon binary splitter.
///
/// `b` is posted to the persistent pool while the caller runs `a` inline.
/// If no parked worker picked `b` up by the time `a` finishes, the caller
/// revokes it and runs it inline too — so `join` never blocks waiting for
/// a busy pool, and a single-threaded configuration (`BINGO_THREADS=1`,
/// nested calls inside a pool worker) degenerates to exactly `(a(), b())`.
/// Determinism: both closures always run exactly once, and the result
/// tuple is positional, so scheduling never shows through.
///
/// Panics in either closure propagate to the caller with their original
/// payload (if both panic, `a`'s payload wins), after both closures have
/// settled — the pool never holds a reference past the call.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::in_pool_worker() || crate::current_num_threads() <= 1 {
        return (a(), b());
    }
    let rt = runtime();
    rt.ensure_workers(1);
    let job = JoinJob::new(b);
    rt.post(&job, 1);
    let ra = catch_unwind(AssertUnwindSafe(a));
    if rt.revoke(&job) {
        // Nobody claimed b: it is exclusively ours again, run it inline.
        job.run();
    } else {
        job.latch.wait_idle();
    }
    let rb = job
        .join_result
        .into_inner()
        .expect("join task ran to completion");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}

/// A chunked fork-join pass over a [`ChunkStore`]: caller and helpers
/// claim chunk indices from the store's atomic cursor and write per-chunk
/// results into order-preserving slots.
struct ChunkJob<'f, S, R, F> {
    store: ChunkStore<S>,
    outputs: Vec<Mutex<Option<R>>>,
    chunk_fn: &'f F,
    abort: AtomicBool,
    panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    latch: Latch,
    profiling: bool,
}

impl<S, R, F> ChunkJob<'_, S, R, F>
where
    S: Send,
    R: Send,
    F: Fn(ChunkItems<S>) -> R + Sync,
{
    /// Claim and run chunks until the store is drained or a panic aborts
    /// the pass. Both the posting caller and helper workers run this.
    fn claim_loop(&self, is_helper: bool) {
        // lint:allow(determinism): opt-in profiling clock, stats only.
        let started = self.profiling.then(Instant::now);
        let mut busy_ns = 0u64;
        let mut claimed = 0u64;
        loop {
            // Acquire: pairs with the Release store below so a participant
            // that observes the abort flag also observes everything the
            // panicking participant published before it.
            if self.abort.load(Ordering::Acquire) {
                break;
            }
            let Some((i, chunk)) = self.store.claim() else {
                break;
            };
            claimed += 1;
            // lint:allow(determinism): opt-in profiling clock.
            let chunk_started = self.profiling.then(Instant::now);
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.chunk_fn)(chunk)));
            if let Some(chunk_started) = chunk_started {
                busy_ns += chunk_started.elapsed().as_nanos() as u64;
            }
            match outcome {
                Ok(result) => {
                    *self.outputs[i].lock() = Some(result);
                }
                Err(payload) => {
                    // Release: publishes the panic decision (and everything
                    // before it) to Acquire readers.
                    self.abort.store(true, Ordering::Release);
                    self.panic_slot.lock().get_or_insert(payload);
                    break;
                }
            }
        }
        if is_helper && claimed > 0 {
            pool::note_steals(claimed);
        }
        if let Some(started) = started {
            let wall = started.elapsed().as_nanos() as u64;
            pool::note_busy_idle(busy_ns, wall.saturating_sub(busy_ns));
        }
    }

    /// Reassemble the per-chunk results in chunk order; re-raises a
    /// captured worker panic with its original payload. Requires exclusive
    /// ownership (post-revoke, latch idle).
    fn finish(self) -> Vec<R> {
        let ChunkJob {
            store,
            outputs,
            panic_slot,
            ..
        } = self;
        // Dropping the store releases the items of never-claimed chunks
        // (nonempty only after an aborted pass) and frees the buffer.
        drop(store);
        if let Some(payload) = panic_slot.into_inner() {
            resume_unwind(payload);
        }
        outputs
            .into_iter()
            .map(|slot| slot.into_inner().expect("all chunks completed"))
            .collect()
    }
}

impl<S, R, F> Job for ChunkJob<'_, S, R, F>
where
    S: Send,
    R: Send,
    F: Fn(ChunkItems<S>) -> R + Sync,
{
    fn execute(&self) {
        self.claim_loop(true);
    }
    fn latch(&self) -> &Latch {
        &self.latch
    }
}

/// Execute a chunked pass over `store` on the persistent pool: post the
/// job for up to `workers - 1` helpers, participate from the calling
/// thread, then revoke and drain before collecting. Called by
/// [`crate::pool::run_chunks`] once it has decided the pass is worth
/// parallelism.
pub(crate) fn run_parallel<S, R, F>(
    store: ChunkStore<S>,
    num_chunks: usize,
    workers: usize,
    profiling: bool,
    chunk_fn: F,
) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(ChunkItems<S>) -> R + Sync,
{
    let rt = runtime();
    rt.ensure_workers(workers.saturating_sub(1));
    let job = ChunkJob {
        store,
        outputs: (0..num_chunks)
            .map(|_| Mutex::new_named(None, "rayon.chunk_slot"))
            .collect(),
        chunk_fn: &chunk_fn,
        abort: AtomicBool::new(false),
        panic_slot: Mutex::new_named(None, "rayon.panic_slot"),
        latch: Latch::new(),
        profiling,
    };
    // lint:allow(determinism): opt-in profiling clock, stats only.
    let scope_started = profiling.then(Instant::now);
    rt.post(
        &job,
        workers.saturating_sub(1).min(num_chunks.saturating_sub(1)),
    );
    {
        // The caller is a full pool participant: nested parallel calls in
        // its chunk bodies run inline, exactly as they do on helpers.
        let _worker_mode = pool::enter_worker_mode();
        job.claim_loop(false);
    }
    rt.revoke(&job);
    job.latch.wait_idle();
    if let Some(scope_started) = scope_started {
        pool::note_scope(scope_started.elapsed().as_nanos() as u64);
    }
    job.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;
    use std::collections::HashSet;
    use std::sync::mpsc;
    use std::sync::Mutex as StdMutex;
    use std::time::Duration;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        // Nested joins degrade gracefully.
        let ((a, b), (c, d)) = with_threads(4, || join(|| join(|| 1, || 2), || join(|| 3, || 4)));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(2, || join(|| 1, || panic!("b exploded")))
        }));
        let msg = result
            .expect_err("panic must propagate")
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default()
            .to_string();
        assert!(msg.contains("b exploded"), "payload: {msg:?}");
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(2, || join(|| panic!("a exploded"), || 2))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn spawn_runs_detached_tasks_on_the_pool() {
        let (tx, rx) = mpsc::channel();
        spawn(move || {
            tx.send(std::thread::current().id())
                .expect("receiver alive");
        });
        let worker = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("task ran on the pool");
        assert_ne!(worker, std::thread::current().id());
    }

    #[test]
    fn spawn_survives_a_panicking_task() {
        spawn(|| panic!("task exploded"));
        let (tx, rx) = mpsc::channel();
        spawn(move || {
            tx.send(42u32).expect("receiver alive");
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn helpers_steal_chunks_from_a_posted_pass() {
        // Every chunk body spins until two distinct threads have entered
        // chunk bodies of this pass: the posting caller plus one helper.
        // Termination is guaranteed — the pool has at least one parked
        // daemon worker and the post notifies it.
        let participants: StdMutex<HashSet<std::thread::ThreadId>> = StdMutex::new(HashSet::new());
        let before = crate::pool_profile().steals;
        let outputs: Vec<usize> = with_threads(2, || {
            crate::pool::run_chunks((0..64usize).collect(), 1, |chunk| {
                participants
                    .lock()
                    .expect("participant set")
                    .insert(std::thread::current().id());
                while participants.lock().expect("participant set").len() < 2 {
                    std::thread::yield_now();
                }
                chunk.sum::<usize>()
            })
        });
        assert_eq!(outputs.iter().sum::<usize>(), 64 * 63 / 2);
        assert!(
            crate::pool_profile().steals > before,
            "a helper must have claimed at least one chunk"
        );
    }
}

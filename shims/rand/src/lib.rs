//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no access to crates.io, so
//! this local shim provides exactly the surface the workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`Error`], and [`rngs::mock::StepRng`]. Generators themselves
//! (`Pcg64`, `Xorshift64`, …) live in `bingo-sampling::rng` and only rely on
//! these traits.
//!
//! Semantics follow rand 0.8 where observable: `gen::<f64>()` is uniform in
//! `[0, 1)` built from the top 53 bits of `next_u64`, and integer
//! `gen_range` uses the widening-multiply method (bias ≤ range/2^64, far
//! below anything a statistical test in this repository can detect).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type carried by [`RngCore::try_fill_bytes`]. Infallible for every
/// generator in this workspace; it exists so trait signatures match rand 0.8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw 32/64-bit output words.
pub trait RngCore {
    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

pub mod distributions {
    //! Minimal distribution machinery backing [`Rng::gen`](crate::Rng::gen).

    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform floats in `[0, 1)`, uniform
    /// integers over the full type range, fair bools.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → [0, 1) with full double precision, as rand does.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

#[inline]
fn widening_draw<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // span == 0 encodes the full 2^64 range.
    if span == 0 {
        rng.next_u64()
    } else {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi - lo) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                lo + widening_draw(rng, span) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                let span = if inclusive { span.wrapping_add(1) } else { span };
                lo.wrapping_add(widening_draw(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring rand 0.8.
pub trait Rng: RngCore {
    /// Draw a value from the [`distributions::Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draw a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill `dest` entirely with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 16]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// rand 0.8's default implementation (good avalanche, no zero seeds).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Construct by drawing the seed from another generator.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.try_fill_bytes(seed.as_mut())?;
        Ok(Self::from_seed(seed))
    }
}

pub mod rngs {
    //! Generator implementations bundled with the shim.

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::{Error, RngCore};

        /// A mock generator returning an arithmetic sequence: `initial`,
        /// `initial + increment`, … (wrapping). API-compatible with
        /// `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Create a `StepRng` yielding `initial`, then stepping by
            /// `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }

            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::mock::StepRng;

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StepRng::new(0, 0x9E37_79B9_7F4A_7C15);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StepRng::new(3, 0x2545_F491_4F6C_DD1D);
        for _ in 0..1000 {
            let a = rng.gen_range(5..17u64);
            assert!((5..17).contains(&a));
            let b = rng.gen_range(0..=7usize);
            assert!(b <= 7);
            let c = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&c));
            let d = rng.gen_range(1.5..2.5f64);
            assert!((1.5..2.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StepRng::new(1, 0x9E37_79B9_7F4A_7C15);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_sensitive() {
        struct Raw([u8; 16]);
        impl SeedableRng for Raw {
            type Seed = [u8; 16];
            fn from_seed(seed: Self::Seed) -> Self {
                Raw(seed)
            }
        }
        impl RngCore for Raw {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
            fn fill_bytes(&mut self, _dest: &mut [u8]) {}
            fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), Error> {
                Ok(())
            }
        }
        assert_eq!(Raw::seed_from_u64(7).0, Raw::seed_from_u64(7).0);
        assert_ne!(Raw::seed_from_u64(7).0, Raw::seed_from_u64(8).0);
        assert_ne!(Raw::seed_from_u64(0).0, [0u8; 16]);
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(10, 5);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 15);
        assert_eq!(rng.next_u32(), 20);
    }
}

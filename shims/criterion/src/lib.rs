//! Offline stand-in for the `criterion` crate.
//!
//! Provides the authoring API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `BatchSize`, `black_box`, `criterion_group!`,
//! `criterion_main!` — backed by a simple calibrated wall-clock loop that
//! reports the median per-iteration time. No statistical regression
//! analysis, plots, or saved baselines; good enough to compare relative
//! costs on one machine, which is all the repository's benches are for.
//!
//! Environment knobs: `BINGO_BENCH_QUICK=1` caps measurement at one sample
//! per benchmark (used in CI smoke runs).

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("alias", 1024)` renders as `alias/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified only by a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// How per-iteration setup output is batched. Only a hint in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup values: many per measurement batch.
    SmallInput,
    /// Large setup values: few per batch.
    LargeInput,
    /// One setup value per iteration.
    PerIteration,
}

/// Prevent the compiler from optimising a value away.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing loop handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_count,
        }
    }

    /// Measure `routine` repeatedly.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit in ~2ms?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                self.samples.push(elapsed / iters as u32);
                break;
            }
            iters *= 2;
        }
        for _ in 1..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Measure `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] with mutable access to the input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..self.sample_count {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn default_samples() -> usize {
    if std::env::var_os("BINGO_BENCH_QUICK").is_some() {
        1
    } else {
        10
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = self.sample_count.min(n.max(1));
        self
    }

    /// Ignored in the shim (criterion compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher, input);
        report(&self.name, &id.name, bencher.median());
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher::new(self.sample_count);
        f(&mut bencher);
        report(&self.name, &id.name, bencher.median());
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// Conversion into [`BenchmarkId`] for `bench_function`'s flexible argument.
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

fn report(group: &str, bench: &str, median: Duration) {
    println!("{group}/{bench:<40} median {median:>12.3?}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            sample_count: default_samples(),
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(default_samples());
        f(&mut bencher);
        report("", name, bencher.median());
        self
    }
}

/// Declare a benchmark group: `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's entry point: `criterion_main!(benches);`
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(2);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 2);
        assert!(b.median() < Duration::from_secs(1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("alias", 1024).name, "alias/1024");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}

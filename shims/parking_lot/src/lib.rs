//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API (a
//! `lock()` that returns the guard directly). Contention behaviour is
//! std's, which is more than adequate for this workspace's uses.
//!
//! ## Shim extensions
//!
//! Beyond the parking_lot API subset, this shim carries the workspace's
//! **runtime lock-order checker** (see [`lock_order`]): with
//! `BINGO_LOCK_CHECK=on` (or [`force_enable_lock_check`]) every
//! acquisition is recorded on a thread-local held-lock stack and in a
//! global lock-order graph, and an acquisition that contradicts the
//! established order — the ABBA deadlock shape — panics immediately, on
//! whatever schedule the test run happened to take. Locks can be named at
//! construction ([`Mutex::new_named`], [`RwLock::new_named`]) so
//! diagnostics and the graph speak the same vocabulary as `bingo-lint`'s
//! static lock-discipline rule.
//!
//! [`Condvar`] is also provided (std-style `wait(guard) -> guard`, not
//! parking_lot's `wait(&mut guard)`), integrated with the checker: the
//! wait releases the lock from the held stack and its wake-up re-runs the
//! full inversion check as a fresh acquisition.

#![forbid(unsafe_code)]

pub mod lock_order;

pub use lock_order::{force_enable_lock_check, held_locks, lock_check_enabled};

use lock_order::{HeldLock, LockMeta};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    meta: LockMeta,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Releasing it (drop) pops the lock
/// from the checker's held stack before the underlying mutex unlocks.
#[must_use = "if unused the Mutex will immediately unlock"]
pub struct MutexGuard<'a, T: ?Sized> {
    // Field order is drop order: pop the held-stack entry first, then
    // release the std guard. Both orders are correct (the stack is
    // thread-local); this one keeps "held" a subset of "actually locked".
    held: HeldLock,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self::new_named(value, "mutex")
    }

    /// Create a new mutex carrying a display name for lock-order
    /// diagnostics (shim extension; `parking_lot` has no equivalent).
    pub fn new_named(value: T, name: &'static str) -> Self {
        Mutex {
            meta: LockMeta::new(name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Check-then-block: an acquisition that would complete an ABBA
        // cycle panics here instead of deadlocking below.
        let held = lock_order::on_acquire(&self.meta);
        MutexGuard {
            held,
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            // Register only on success — a failed try_lock neither holds
            // nor orders anything. A successful one is a real acquisition
            // and participates fully in the order graph.
            Ok(g) => Some(MutexGuard {
                held: lock_order::on_acquire(&self.meta),
                inner: g,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                held: lock_order::on_acquire(&self.meta),
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable for use with the shim's [`Mutex`]. The API is
/// std-shaped (`wait` consumes and returns the guard, never errors) since
/// the workspace is the only consumer; the real `parking_lot` takes
/// `&mut guard` instead.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically release the guard's mutex and park until notified,
    /// re-acquiring the lock before returning. While parked the lock is
    /// *not* held — the checker's held stack reflects that, and the
    /// wake-up re-runs the inversion check as a fresh acquisition.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let MutexGuard { held, inner } = guard;
        let token = held.release_for_wait();
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            held: lock_order::reacquire(token),
            inner,
        }
    }

    /// [`Condvar::wait`] with a timeout; the flag reports whether the wait
    /// timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, std::sync::WaitTimeoutResult) {
        let MutexGuard { held, inner } = guard;
        let token = held.release_for_wait();
        let (inner, timed_out) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (
            MutexGuard {
                held: lock_order::reacquire(token),
                inner,
            },
            timed_out,
        )
    }
}

/// A reader-writer lock whose acquisition never returns a poison error.
pub struct RwLock<T: ?Sized> {
    meta: LockMeta,
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    // Present for its Drop effect (pops the checker's held stack).
    #[allow(dead_code)]
    held: HeldLock,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    // Present for its Drop effect (pops the checker's held stack).
    #[allow(dead_code)]
    held: HeldLock,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        Self::new_named(value, "rwlock")
    }

    /// Create a new lock with a display name for lock-order diagnostics
    /// (shim extension).
    pub fn new_named(value: T, name: &'static str) -> Self {
        RwLock {
            meta: LockMeta::new(name),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    ///
    /// The checker treats read and write acquisitions of one lock as the
    /// same graph node: a read-vs-write order inversion across two locks
    /// deadlocks just like write-vs-write.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let held = lock_order::on_acquire(&self.meta);
        RwLockReadGuard {
            held,
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let held = lock_order::on_acquire(&self.meta);
        RwLockWriteGuard {
            held,
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_handoff() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new_named(false, "cv.flag"), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            *ready = true;
            drop(ready);
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        assert!(*ready);
        t.join().expect("notifier thread");
    }

    #[test]
    fn condvar_wait_timeout_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let (_g, result) = cv.wait_timeout(g, Duration::from_millis(1));
        assert!(result.timed_out());
    }

    // The checker tests run in one process with checking force-enabled;
    // force_enable is sticky, which is fine — correct lock usage only adds
    // edges and never panics.

    #[test]
    fn lock_order_inversion_panics() {
        force_enable_lock_check();
        let a = Mutex::new_named(0, "test.order.a");
        let b = Mutex::new_named(0, "test.order.b");
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a: inversion
        }));
        let payload = result.expect_err("inversion must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("lock-order inversion"),
            "unexpected panic message: {msg}"
        );
        assert!(msg.contains("test.order.a") && msg.contains("test.order.b"));
        // The held stack unwound cleanly despite the panic.
        assert_eq!(held_locks(), 0);
    }

    #[test]
    fn recursive_acquisition_panics() {
        force_enable_lock_check();
        let m = Mutex::new_named(0, "test.recursive");
        let _g = m.lock();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _again = m.lock();
        }));
        let payload = result.expect_err("re-acquisition must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("re-acquired"), "unexpected message: {msg}");
    }

    #[test]
    fn consistent_order_never_panics() {
        force_enable_lock_check();
        let a = Mutex::new_named(0, "test.consistent.a");
        let b = Mutex::new_named(0, "test.consistent.b");
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert_eq!(held_locks(), 0);
    }

    #[test]
    fn condvar_wait_releases_held_entry() {
        force_enable_lock_check();
        let m = Mutex::new_named((), "test.cv.held");
        let cv = Condvar::new();
        let g = m.lock();
        assert_eq!(held_locks(), 1);
        let (g, result) = cv.wait_timeout(g, Duration::from_millis(1));
        assert!(result.timed_out());
        assert_eq!(held_locks(), 1, "lock re-held after the wait");
        drop(g);
        assert_eq!(held_locks(), 0);
    }

    #[test]
    fn out_of_order_guard_drops_unwind_cleanly() {
        force_enable_lock_check();
        let a = Mutex::new_named(0, "test.drops.a");
        let b = Mutex::new_named(0, "test.drops.b");
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // dropped before gb: pop-by-id, not strict stack order
        assert_eq!(held_locks(), 1);
        drop(gb);
        assert_eq!(held_locks(), 0);
    }
}

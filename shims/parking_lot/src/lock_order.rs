//! The runtime lock-order checker behind `BINGO_LOCK_CHECK`.
//!
//! Every `Mutex`/`RwLock` in this shim registers its acquisitions here when
//! checking is enabled. The checker maintains:
//!
//! - a **thread-local held-lock stack** — the locks the current thread holds
//!   right now, in acquisition order;
//! - a **global lock-order graph** — a directed edge `A -> B` is recorded
//!   the first time any thread acquires `B` while holding `A`.
//!
//! Before an acquisition of `B` while holding `A` inserts the edge
//! `A -> B`, the checker searches the graph for an existing path
//! `B -> ... -> A`. Finding one means two call sites disagree about the
//! order of `A` and `B` — the classic ABBA deadlock shape — and the checker
//! panics with both sides of the inversion, *whether or not* the schedule
//! at hand would actually have deadlocked. Re-acquiring a lock the thread
//! already holds panics too (std's non-reentrant primitives would deadlock
//! or UB there).
//!
//! Enablement is process-wide: `BINGO_LOCK_CHECK=on|1|true` in the
//! environment (read once), or [`force_enable_lock_check`] from test code.
//! Disabled, the only cost per acquisition is one relaxed atomic load.
//!
//! The checker cross-validates the *static* lock-order graph that
//! `bingo-lint`'s `lock-discipline` rule extracts: the static pass sees
//! every code path but approximates guard lifetimes; this pass sees exact
//! lifetimes but only executed paths. CI runs the full workspace test suite
//! with `BINGO_LOCK_CHECK=on` so the two views check each other.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Set by [`force_enable_lock_check`]; OR-ed with the environment switch.
static FORCED: AtomicBool = AtomicBool::new(false);

/// Whether `BINGO_LOCK_CHECK` asked for checking (resolved once).
fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            std::env::var("BINGO_LOCK_CHECK").ok().as_deref(),
            Some("on" | "1" | "true")
        )
    })
}

/// Whether acquisitions are being checked.
#[inline]
pub fn lock_check_enabled() -> bool {
    // relaxed-ok: a plain on/off flag; readers need no ordering with the
    // graph state, which has its own internal mutex.
    FORCED.load(Ordering::Relaxed) || env_enabled()
}

/// Turn checking on for the rest of the process (tests use this instead of
/// the `BINGO_LOCK_CHECK` environment variable, which is read only once).
/// There is deliberately no way to turn checking back off: edges recorded
/// so far stay valid, and a disable racing in-flight acquisitions would
/// leave the held stacks inconsistent.
pub fn force_enable_lock_check() {
    // relaxed-ok: see lock_check_enabled.
    FORCED.store(true, Ordering::Relaxed);
}

/// Identity + display name of one lock instance. Ids are assigned lazily on
/// first checked acquisition, so unchecked runs never touch the registry.
#[derive(Debug)]
pub(crate) struct LockMeta {
    /// 0 = unassigned; ids start at 1.
    id: AtomicU32,
    /// Display name for diagnostics (`Mutex::new_named`), or a generic
    /// fallback.
    name: &'static str,
}

impl LockMeta {
    pub(crate) const fn new(name: &'static str) -> Self {
        LockMeta {
            id: AtomicU32::new(0),
            name,
        }
    }

    /// This lock's id, assigning the next free one on first use.
    fn id(&self) -> u32 {
        // relaxed-ok: the id cell is an allocator, not a publication point —
        // the value is unique per lock via compare_exchange's RMW atomicity,
        // and all cross-thread agreement happens under the graph mutex.
        let current = self.id.load(Ordering::Relaxed);
        if current != 0 {
            return current;
        }
        static NEXT_ID: AtomicU32 = AtomicU32::new(1);
        // relaxed-ok: unique-id allocator; RMW atomicity alone guarantees
        // distinct ids.
        let candidate = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: losing the race just adopts the winner's id.
        match self
            .id
            .compare_exchange(0, candidate, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => candidate,
            Err(winner) => winner,
        }
    }
}

thread_local! {
    /// Locks the current thread holds, in acquisition order.
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// The global order graph. Guarded by a plain `std` mutex — the checker
/// must not recurse into the shim's own instrumented locks.
struct OrderGraph {
    /// Edges already recorded (`from -> to`).
    edges: HashSet<(u32, u32)>,
    /// Adjacency view of `edges` for path searches.
    adj: HashMap<u32, Vec<u32>>,
    /// Last-seen display name per id.
    names: HashMap<u32, &'static str>,
}

impl OrderGraph {
    fn name(&self, id: u32) -> &'static str {
        self.names.get(&id).copied().unwrap_or("?")
    }

    /// Depth-first search for a path `from -> ... -> to`, returned as the
    /// id sequence including both endpoints.
    fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut stack = vec![vec![from]];
        let mut visited = HashSet::new();
        visited.insert(from);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("paths are non-empty");
            if last == to {
                return Some(path);
            }
            if let Some(nexts) = self.adj.get(&last) {
                for &next in nexts {
                    if visited.insert(next) {
                        let mut extended = path.clone();
                        extended.push(next);
                        if next == to {
                            return Some(extended);
                        }
                        stack.push(extended);
                    }
                }
            }
        }
        None
    }
}

fn graph() -> &'static Mutex<OrderGraph> {
    static GRAPH: OnceLock<Mutex<OrderGraph>> = OnceLock::new();
    GRAPH.get_or_init(|| {
        Mutex::new(OrderGraph {
            edges: HashSet::new(),
            adj: HashMap::new(),
            names: HashMap::new(),
        })
    })
}

/// Token proving the current thread pushed a lock onto its held stack.
/// Dropping it pops the lock (by id — guards may be dropped out of
/// acquisition order). `None` inside means checking was disabled at
/// acquisition time: nothing to pop.
#[derive(Debug)]
pub(crate) struct HeldLock(Option<(u32, &'static str)>);

impl HeldLock {
    /// A token that tracks nothing (checking disabled).
    pub(crate) const fn untracked() -> Self {
        HeldLock(None)
    }

    /// Pop this lock for the duration of a condvar wait (the primitive
    /// releases the lock while parked) and return the re-acquisition
    /// token. `Condvar::wait` re-pushes via [`reacquire`].
    pub(crate) fn release_for_wait(mut self) -> Option<(u32, &'static str)> {
        self.0.take().inspect(|&(id, _)| pop_held(id))
    }
}

impl Drop for HeldLock {
    fn drop(&mut self) {
        if let Some((id, _)) = self.0 {
            pop_held(id);
        }
    }
}

fn pop_held(id: u32) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == id) {
            held.remove(pos);
        }
    });
}

/// Record an acquisition attempt of `meta`'s lock by the current thread,
/// panicking on a lock-order inversion or a same-thread re-acquisition.
/// Call *before* blocking on the underlying primitive, so an acquisition
/// that would complete an ABBA cycle panics instead of deadlocking.
pub(crate) fn on_acquire(meta: &LockMeta) -> HeldLock {
    if !lock_check_enabled() {
        return HeldLock::untracked();
    }
    let id = meta.id();
    let held_now: Vec<u32> = HELD.with(|held| held.borrow().clone());
    // Diagnose under the graph mutex, panic after releasing it.
    let inversion: Option<String> = {
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        g.names.insert(id, meta.name);
        if held_now.contains(&id) {
            Some(format!(
                "lock-order violation: thread {:?} re-acquired `{}` it already holds \
                 (non-reentrant primitive; this deadlocks outside the checker)",
                std::thread::current().name().unwrap_or("<unnamed>"),
                meta.name,
            ))
        } else {
            let mut found = None;
            for &h in &held_now {
                // An inversion exists if the graph already orders the new
                // lock *before* a held one.
                if let Some(path) = g.path(id, h) {
                    let chain: Vec<&str> = path.iter().map(|&p| g.name(p)).collect();
                    found = Some(format!(
                        "lock-order inversion: thread {:?} acquires `{}` while holding `{}`, \
                         but the established order is `{}` (BINGO_LOCK_CHECK; see the \
                         Concurrency invariants docs)",
                        std::thread::current().name().unwrap_or("<unnamed>"),
                        meta.name,
                        g.name(h),
                        chain.join("` -> `"),
                    ));
                    break;
                }
            }
            if found.is_none() {
                for &h in &held_now {
                    if g.edges.insert((h, id)) {
                        g.adj.entry(h).or_default().push(id);
                    }
                }
            }
            found
        }
    };
    if let Some(msg) = inversion {
        panic!("{msg}");
    }
    HELD.with(|held| held.borrow_mut().push(id));
    HeldLock(Some((id, meta.name)))
}

/// Re-push a lock released for a condvar wait (see
/// [`HeldLock::release_for_wait`]). The wake-up is a genuine
/// re-acquisition, so it goes through the full edge/inversion check
/// against whatever the thread still holds.
pub(crate) fn reacquire(token: Option<(u32, &'static str)>) -> HeldLock {
    match token {
        None => HeldLock::untracked(),
        // `on_acquire` would allocate a fresh id, so the push is inlined
        // with the original id to keep the graph at one node per lock.
        Some((id, name)) => {
            let held_now: Vec<u32> = HELD.with(|held| held.borrow().clone());
            let inversion: Option<String> = {
                let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
                let mut found = None;
                for &h in &held_now {
                    if h == id {
                        continue;
                    }
                    if let Some(path) = g.path(id, h) {
                        let chain: Vec<&str> = path.iter().map(|&p| g.name(p)).collect();
                        found = Some(format!(
                            "lock-order inversion re-acquiring `{}` after a condvar wait \
                             while holding `{}`: established order is `{}`",
                            name,
                            g.name(h),
                            chain.join("` -> `"),
                        ));
                        break;
                    }
                }
                if found.is_none() {
                    for &h in &held_now {
                        if h != id && g.edges.insert((h, id)) {
                            g.adj.entry(h).or_default().push(id);
                        }
                    }
                }
                found
            };
            if let Some(msg) = inversion {
                panic!("{msg}");
            }
            HELD.with(|held| held.borrow_mut().push(id));
            HeldLock(Some((id, name)))
        }
    }
}

/// Number of locks the current thread holds (checked acquisitions only).
/// Diagnostic hook for tests.
pub fn held_locks() -> usize {
    HELD.with(|held| held.borrow().len())
}

//! Integration tests for the sharded walk service (`bingo-service`):
//!
//! * statistical equivalence — sampling through 4 shards must reproduce the
//!   single-engine edge-transition distribution (chi-square test);
//! * update/walk interleaving — while update batches stream in, every walk
//!   step must traverse an edge that was alive at the epoch the owning
//!   shard had reached when it sampled the step (no torn or stale groups).

use bingo::prelude::*;
use bingo::sampling::stats::{chi_square, chi_square_critical_999};
use bingo::service::ServiceConfig;
use bingo_graph::updates::UpdateKind;
use bingo_graph::UpdateStreamBuilder;
use std::collections::HashMap;

/// A graph whose vertex 0 has neighbors owned by all four shards, with
/// biases spanning several radix groups.
fn cross_shard_fanout_graph() -> (DynamicGraph, Vec<(VertexId, u64)>) {
    let n = 40;
    let mut graph = DynamicGraph::new(n);
    let fanout: Vec<(VertexId, u64)> = vec![
        (5, 5),
        (9, 60),
        (12, 4),
        (15, 3),
        (22, 17),
        (28, 1),
        (33, 8),
        (38, 2),
    ];
    for &(dst, w) in &fanout {
        graph.insert_edge(0, dst, Bias::from_int(w)).unwrap();
    }
    // Give every vertex an out-edge so multi-step walks never dead-end.
    for v in 1..n as u32 {
        graph
            .insert_edge(v, (v + 1) % n as u32, Bias::from_int(1))
            .unwrap();
    }
    (graph, fanout)
}

#[test]
fn sharded_sampling_matches_single_engine_distribution() {
    let (graph, fanout) = cross_shard_fanout_graph();
    let single = BingoEngine::build(&graph, BingoConfig::default()).unwrap();

    // Expected transition probabilities out of vertex 0, read back from the
    // single engine so the test really compares service vs engine.
    let total: f64 = fanout
        .iter()
        .map(|&(dst, _)| single.edge_bias(0, dst).unwrap())
        .sum();
    let probs: Vec<f64> = fanout
        .iter()
        .map(|&(dst, _)| single.edge_bias(0, dst).unwrap() / total)
        .collect();
    let slot: HashMap<VertexId, usize> = fanout
        .iter()
        .enumerate()
        .map(|(i, &(dst, _))| (dst, i))
        .collect();

    let trials = 60_000;

    // Sharded service: one-step walks from vertex 0.
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 4,
            seed: 0xD15B,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    assert_eq!(service.num_shards(), 4);
    let starts = vec![0 as VertexId; trials];
    let ticket = service
        .submit(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 1 }),
            &starts,
        )
        .unwrap();
    let results = service.wait(ticket);
    let mut service_counts = vec![0usize; fanout.len()];
    for path in &results.paths {
        assert_eq!(path.len(), 2, "every walk takes exactly one step");
        service_counts[slot[&path[1]]] += 1;
    }

    // Single engine: the same number of direct samples.
    let mut rng = Pcg64::seed_from_u64(0x51);
    let mut engine_counts = vec![0usize; fanout.len()];
    for _ in 0..trials {
        let dst = single.sample_neighbor(0, &mut rng).unwrap();
        engine_counts[slot[&dst]] += 1;
    }

    let critical = chi_square_critical_999(fanout.len() - 1) * 1.5;
    let service_stat = chi_square(&service_counts, &probs);
    let engine_stat = chi_square(&engine_counts, &probs);
    assert!(
        service_stat < critical,
        "sharded distribution off: chi2 {service_stat:.2} vs critical {critical:.2} ({service_counts:?})"
    );
    assert!(
        engine_stat < critical,
        "single-engine distribution off: chi2 {engine_stat:.2} vs critical {critical:.2}"
    );

    // All sampling happened on vertex 0's owner shard, and one-step
    // walkers finish where their last step was taken instead of being
    // forwarded for a no-op step (the scheduler's length-limit check).
    let stats = service.shutdown();
    assert_eq!(stats.total_steps(), trials as u64);
    assert_eq!(stats.total_forwards(), 0);
    assert_eq!(stats.per_shard[0].steps, trials as u64);
}

#[test]
fn concurrent_updates_and_walks_respect_epoch_liveness() {
    // Build a base graph plus a valid mixed update stream.
    let mut rng = Pcg64::seed_from_u64(0xEC0);
    let mut graph = GraphGenerator::ErdosRenyi {
        vertices: 200,
        edges: 3000,
    }
    .generate(BiasDistribution::UniformInt { lo: 1, hi: 63 }, &mut rng);
    let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, 800).build(&mut graph, 600, &mut rng);
    let batches = stream.chunks(100);

    let num_shards = 4;
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards,
            seed: 0xE90C,
            record_epochs: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let partitioner = service.partitioner();
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 20 });

    // Interleave: one wave of walks between every pair of update batches,
    // WITHOUT waiting for the walks before ingesting the next batch.
    let mut tickets = Vec::new();
    let starts: Vec<VertexId> = (0..200).collect();
    tickets.push(service.submit(spec, &starts).unwrap());
    let mut last_receipt = None;
    for batch in &batches {
        let receipt = service.ingest(batch);
        last_receipt = Some(receipt);
        tickets.push(service.submit(spec, &starts).unwrap());
    }
    // One final quiesced wave: every step must see the last epoch.
    let receipt = last_receipt.expect("at least one batch");
    service.sync(receipt);
    let final_ticket = service.submit(spec, &starts).unwrap();

    let waves: Vec<_> = tickets.into_iter().map(|t| service.wait(t)).collect();
    let final_wave = service.wait(final_ticket);

    // Mirror the router: per-shard edge-multiset timeline, one snapshot per
    // epoch. Shard s at epoch e holds the initial owned edges plus the
    // first e per-shard slices of the update stream.
    let mut live: Vec<HashMap<(VertexId, VertexId), i64>> = vec![HashMap::new(); num_shards];
    for (src, edge) in graph.edges() {
        *live[partitioner.owner(src)]
            .entry((src, edge.dst))
            .or_insert(0) += 1;
    }
    let mut snapshots: Vec<Vec<HashMap<(VertexId, VertexId), i64>>> = vec![live.clone()];
    for batch in &batches {
        let splits = batch.split_by_owner(num_shards, |v| partitioner.owner(v));
        for (shard, split) in splits.iter().enumerate() {
            for event in split.events() {
                match *event {
                    UpdateEvent::Insert { src, dst, .. } => {
                        *live[shard].entry((src, dst)).or_insert(0) += 1;
                    }
                    UpdateEvent::Delete { src, dst } => {
                        if let Some(c) = live[shard].get_mut(&(src, dst)) {
                            if *c > 0 {
                                *c -= 1;
                            }
                        }
                    }
                    UpdateEvent::UpdateBias { .. } => { /* liveness unchanged */ }
                }
            }
        }
        snapshots.push(live.clone());
    }

    // Every traced step must traverse an edge alive at its (shard, epoch).
    let mut checked = 0usize;
    for wave in waves.iter().chain(std::iter::once(&final_wave)) {
        for (path, trace) in wave.paths.iter().zip(&wave.traces) {
            assert_eq!(trace.len(), path.len() - 1, "one trace entry per step");
            for t in trace {
                assert_eq!(
                    partitioner.owner(t.src),
                    t.shard,
                    "steps are sampled by the owner of their source"
                );
                let epoch = t.epoch as usize;
                assert!(epoch < snapshots.len(), "epoch within the flushed range");
                let alive = snapshots[epoch][t.shard]
                    .get(&(t.src, t.dst))
                    .copied()
                    .unwrap_or(0);
                assert!(
                    alive > 0,
                    "step {}→{} on shard {} not alive at epoch {}",
                    t.src,
                    t.dst,
                    t.shard,
                    t.epoch
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 1000, "enough steps were checked ({checked})");

    // The quiesced wave must run entirely at the final epoch.
    let final_epoch = batches.len() as u64;
    for trace in &final_wave.traces {
        for t in trace {
            assert_eq!(t.epoch, final_epoch, "post-sync steps see every update");
        }
    }

    let stats = service.shutdown();
    assert_eq!(
        stats.per_shard.iter().map(|s| s.epoch).max().unwrap(),
        final_epoch
    );
    assert_eq!(stats.total_updates_applied() as usize, {
        // Deletions of already-deleted duplicates are skipped by the
        // engine, exactly as the mirror skips them; insertions all apply.
        let mut mirror_applied = 0usize;
        let mut live: HashMap<(VertexId, VertexId), i64> = HashMap::new();
        for (src, edge) in graph.edges() {
            *live.entry((src, edge.dst)).or_insert(0) += 1;
        }
        for batch in &batches {
            for event in batch.events() {
                match *event {
                    UpdateEvent::Insert { src, dst, .. } => {
                        *live.entry((src, dst)).or_insert(0) += 1;
                        mirror_applied += 1;
                    }
                    UpdateEvent::Delete { src, dst } => {
                        if let Some(c) = live.get_mut(&(src, dst)) {
                            if *c > 0 {
                                *c -= 1;
                                mirror_applied += 1;
                            }
                        }
                    }
                    UpdateEvent::UpdateBias { .. } => mirror_applied += 2,
                }
            }
        }
        mirror_applied
    });
}

//! Integration tests for the sharded walk service (`bingo-service`):
//!
//! * statistical equivalence — sampling through 4 shards must reproduce the
//!   single-engine edge-transition distribution (chi-square test), for
//!   first-order walks *and* for node2vec's second-order transitions
//!   (which require the forwarded adjacency-fingerprint context);
//! * forwarded-context integrity — every context snapshot attached to a
//!   forwarded walker must equal the previous vertex's true adjacency;
//! * update/walk interleaving — while update batches stream in, every walk
//!   step must traverse an edge that was alive at the epoch the owning
//!   shard had reached when it sampled the step (no torn or stale groups).

use bingo::prelude::*;
use bingo::sampling::stats::{chi_square, chi_square_critical_999};
use bingo::service::ServiceConfig;
use bingo_graph::updates::UpdateKind;
use bingo_graph::UpdateStreamBuilder;
use std::collections::HashMap;

/// A graph whose vertex 0 has neighbors owned by all four shards, with
/// biases spanning several radix groups.
fn cross_shard_fanout_graph() -> (DynamicGraph, Vec<(VertexId, u64)>) {
    let n = 40;
    let mut graph = DynamicGraph::new(n);
    let fanout: Vec<(VertexId, u64)> = vec![
        (5, 5),
        (9, 60),
        (12, 4),
        (15, 3),
        (22, 17),
        (28, 1),
        (33, 8),
        (38, 2),
    ];
    for &(dst, w) in &fanout {
        graph.insert_edge(0, dst, Bias::from_int(w)).unwrap();
    }
    // Give every vertex an out-edge so multi-step walks never dead-end.
    for v in 1..n as u32 {
        graph
            .insert_edge(v, (v + 1) % n as u32, Bias::from_int(1))
            .unwrap();
    }
    (graph, fanout)
}

#[test]
fn sharded_sampling_matches_single_engine_distribution() {
    let (graph, fanout) = cross_shard_fanout_graph();
    let single = BingoEngine::build(&graph, BingoConfig::default()).unwrap();

    // Expected transition probabilities out of vertex 0, read back from the
    // single engine so the test really compares service vs engine.
    let total: f64 = fanout
        .iter()
        .map(|&(dst, _)| single.edge_bias(0, dst).unwrap())
        .sum();
    let probs: Vec<f64> = fanout
        .iter()
        .map(|&(dst, _)| single.edge_bias(0, dst).unwrap() / total)
        .collect();
    let slot: HashMap<VertexId, usize> = fanout
        .iter()
        .enumerate()
        .map(|(i, &(dst, _))| (dst, i))
        .collect();

    let trials = 60_000;

    // Sharded service: one-step walks from vertex 0.
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 4,
            seed: 0xD15B,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    assert_eq!(service.num_shards(), 4);
    let starts = vec![0 as VertexId; trials];
    let ticket = service
        .submit(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 1 }),
            &starts,
        )
        .unwrap();
    let results = service.wait(ticket);
    let mut service_counts = vec![0usize; fanout.len()];
    for path in &results.paths {
        assert_eq!(path.len(), 2, "every walk takes exactly one step");
        service_counts[slot[&path[1]]] += 1;
    }

    // Single engine: the same number of direct samples.
    let mut rng = Pcg64::seed_from_u64(0x51);
    let mut engine_counts = vec![0usize; fanout.len()];
    for _ in 0..trials {
        let dst = single.sample_neighbor(0, &mut rng).unwrap();
        engine_counts[slot[&dst]] += 1;
    }

    let critical = chi_square_critical_999(fanout.len() - 1) * 1.5;
    let service_stat = chi_square(&service_counts, &probs);
    let engine_stat = chi_square(&engine_counts, &probs);
    assert!(
        service_stat < critical,
        "sharded distribution off: chi2 {service_stat:.2} vs critical {critical:.2} ({service_counts:?})"
    );
    assert!(
        engine_stat < critical,
        "single-engine distribution off: chi2 {engine_stat:.2} vs critical {critical:.2}"
    );

    // All walkers were dequeued on vertex 0's owner shard, and one-step
    // walkers finish where their last step was taken instead of being
    // forwarded for a no-op step (the scheduler's length-limit check).
    // Steps are attributed to the *executing* shard: idle peers may steal
    // batches out of the hot shard's inbox, so shard 0's own step count
    // plus the stolen visits (one step each here) covers every trial.
    let stats = service.shutdown();
    assert_eq!(stats.total_steps(), trials as u64);
    assert_eq!(stats.total_forwards(), 0);
    assert_eq!(stats.per_shard[0].walkers_received, trials as u64);
    assert_eq!(
        stats.per_shard[0].steps + stats.total_stolen_walkers(),
        trials as u64,
        "every step ran on the owner shard or a stealing peer"
    );
}

#[test]
fn concurrent_updates_and_walks_respect_epoch_liveness() {
    // Build a base graph plus a valid mixed update stream.
    let mut rng = Pcg64::seed_from_u64(0xEC0);
    let mut graph = GraphGenerator::ErdosRenyi {
        vertices: 200,
        edges: 3000,
    }
    .generate(BiasDistribution::UniformInt { lo: 1, hi: 63 }, &mut rng);
    let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, 800).build(&mut graph, 600, &mut rng);
    let batches = stream.chunks(100);

    let num_shards = 4;
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards,
            seed: 0xE90C,
            record_epochs: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let partitioner = service.partitioner();
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 20 });

    // Interleave: one wave of walks between every pair of update batches,
    // WITHOUT waiting for the walks before ingesting the next batch.
    let mut tickets = Vec::new();
    let starts: Vec<VertexId> = (0..200).collect();
    tickets.push(service.submit(spec, &starts).unwrap());
    let mut last_receipt = None;
    for batch in &batches {
        let receipt = service.ingest(batch);
        last_receipt = Some(receipt);
        tickets.push(service.submit(spec, &starts).unwrap());
    }
    // One final quiesced wave: every step must see the last epoch.
    let receipt = last_receipt.expect("at least one batch");
    service.sync(receipt);
    let final_ticket = service.submit(spec, &starts).unwrap();

    let waves: Vec<_> = tickets.into_iter().map(|t| service.wait(t)).collect();
    let final_wave = service.wait(final_ticket);

    // Mirror the router: per-shard edge-multiset timeline, one snapshot per
    // epoch. Shard s at epoch e holds the initial owned edges plus the
    // first e per-shard slices of the update stream.
    let mut live: Vec<HashMap<(VertexId, VertexId), i64>> = vec![HashMap::new(); num_shards];
    for (src, edge) in graph.edges() {
        *live[partitioner.owner(src)]
            .entry((src, edge.dst))
            .or_insert(0) += 1;
    }
    let mut snapshots: Vec<Vec<HashMap<(VertexId, VertexId), i64>>> = vec![live.clone()];
    for batch in &batches {
        let splits = batch.split_by_owner(num_shards, |v| partitioner.owner(v));
        for (shard, split) in splits.iter().enumerate() {
            for event in split.events() {
                match *event {
                    UpdateEvent::Insert { src, dst, .. } => {
                        *live[shard].entry((src, dst)).or_insert(0) += 1;
                    }
                    UpdateEvent::Delete { src, dst } => {
                        if let Some(c) = live[shard].get_mut(&(src, dst)) {
                            if *c > 0 {
                                *c -= 1;
                            }
                        }
                    }
                    UpdateEvent::UpdateBias { .. } => { /* liveness unchanged */ }
                }
            }
        }
        snapshots.push(live.clone());
    }

    // Every traced step must traverse an edge alive at its (shard, epoch).
    let mut checked = 0usize;
    for wave in waves.iter().chain(std::iter::once(&final_wave)) {
        for (path, trace) in wave.paths.iter().zip(&wave.traces) {
            assert_eq!(trace.len(), path.len() - 1, "one trace entry per step");
            for t in trace {
                assert_eq!(
                    partitioner.owner(t.src),
                    t.shard,
                    "steps are sampled by the owner of their source"
                );
                let epoch = t.epoch as usize;
                assert!(epoch < snapshots.len(), "epoch within the flushed range");
                let alive = snapshots[epoch][t.shard]
                    .get(&(t.src, t.dst))
                    .copied()
                    .unwrap_or(0);
                assert!(
                    alive > 0,
                    "step {}→{} on shard {} not alive at epoch {}",
                    t.src,
                    t.dst,
                    t.shard,
                    t.epoch
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 1000, "enough steps were checked ({checked})");

    // The quiesced wave must run entirely at the final epoch.
    let final_epoch = batches.len() as u64;
    for trace in &final_wave.traces {
        for t in trace {
            assert_eq!(t.epoch, final_epoch, "post-sync steps see every update");
        }
    }

    let stats = service.shutdown();
    assert_eq!(
        stats.per_shard.iter().map(|s| s.epoch).max().unwrap(),
        final_epoch
    );
    assert_eq!(stats.total_updates_applied() as usize, {
        // Deletions of already-deleted duplicates are skipped by the
        // engine, exactly as the mirror skips them; insertions all apply.
        let mut mirror_applied = 0usize;
        let mut live: HashMap<(VertexId, VertexId), i64> = HashMap::new();
        for (src, edge) in graph.edges() {
            *live.entry((src, edge.dst)).or_insert(0) += 1;
        }
        for batch in &batches {
            for event in batch.events() {
                match *event {
                    UpdateEvent::Insert { src, dst, .. } => {
                        *live.entry((src, dst)).or_insert(0) += 1;
                        mirror_applied += 1;
                    }
                    UpdateEvent::Delete { src, dst } => {
                        if let Some(c) = live.get_mut(&(src, dst)) {
                            if *c > 0 {
                                *c -= 1;
                                mirror_applied += 1;
                            }
                        }
                    }
                    UpdateEvent::UpdateBias { .. } => mirror_applied += 2,
                }
            }
        }
        mirror_applied
    });
}

/// A 4-shard graph engineered so node2vec's second transition out of vertex
/// `HUB` has an analytically known distribution that *depends on the
/// previous vertex's adjacency*: candidate 15 is an out-neighbor of the
/// start vertex (distance factor 1), candidate 0 is the start itself
/// (factor 1/p), and the rest are at distance 2 (factor 1/q). Walkers start
/// on shard 0 and the hub lives on shard 2, so the second step can only be
/// sampled correctly if the forwarding shard shipped vertex 0's adjacency
/// fingerprint along with the walker.
const HUB: VertexId = 25;

fn node2vec_fanout_graph() -> (DynamicGraph, Vec<(VertexId, u64)>) {
    let n = 40;
    let mut graph = DynamicGraph::new(n);
    // Start vertex 0: a dominant edge to the hub plus one edge to 15 that
    // puts 15 at distance 1 from the start.
    graph.insert_edge(0, HUB, Bias::from_int(50)).unwrap();
    graph.insert_edge(0, 15, Bias::from_int(1)).unwrap();
    // The hub's fan-out spans all four shards.
    let fanout: Vec<(VertexId, u64)> = vec![
        (0, 3),  // backtrack → factor 1/p
        (15, 4), // out-neighbor of prev → factor 1
        (5, 2),  // distance 2 → factor 1/q
        (12, 6), // distance 2 → factor 1/q
        (33, 5), // distance 2 → factor 1/q
        (38, 1), // distance 2 → factor 1/q
    ];
    for &(dst, w) in &fanout {
        graph.insert_edge(HUB, dst, Bias::from_int(w)).unwrap();
    }
    // Liveness edges elsewhere (never sampled by the 2-step walks below,
    // but they keep the graph free of accidental dead ends).
    for v in 1..n as u32 {
        if v != HUB {
            graph
                .insert_edge(v, (v + 1) % n as u32, Bias::from_int(1))
                .unwrap();
        }
    }
    (graph, fanout)
}

#[test]
fn sharded_node2vec_matches_single_engine_distribution() {
    let (graph, fanout) = node2vec_fanout_graph();
    let p = 0.5;
    let q = 2.0;
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: 2,
        p,
        q,
    });

    // Analytic second-step distribution out of HUB given prev = 0: the
    // rejection sampler accepts candidate x with probability ∝ bias(x) ·
    // factor(x), factor = 1/p for the backtrack, 1 for out-neighbors of
    // the previous vertex, 1/q otherwise.
    let factor = |dst: VertexId| -> f64 {
        if dst == 0 {
            1.0 / p
        } else if graph.has_edge(0, dst) {
            1.0
        } else {
            1.0 / q
        }
    };
    let masses: Vec<f64> = fanout
        .iter()
        .map(|&(dst, w)| w as f64 * factor(dst))
        .collect();
    let total: f64 = masses.iter().sum();
    let probs: Vec<f64> = masses.iter().map(|m| m / total).collect();
    let slot: HashMap<VertexId, usize> = fanout
        .iter()
        .enumerate()
        .map(|(i, &(dst, _))| (dst, i))
        .collect();

    let trials = 60_000;

    // Sharded service: 2-step node2vec walks from vertex 0. The first step
    // lands on HUB (shard 2) with probability 50/51; the walker is
    // forwarded from shard 0 with vertex 0's adjacency fingerprint.
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 4,
            seed: 0x20D2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let starts = vec![0 as VertexId; trials];
    let results = service.wait(service.submit(spec, &starts).unwrap());
    let mut service_counts = vec![0usize; fanout.len()];
    let mut service_total = 0usize;
    for path in &results.paths {
        if path.len() == 3 && path[1] == HUB {
            service_counts[slot[&path[2]]] += 1;
            service_total += 1;
        }
    }

    // Single engine: the same walks, same analytic expectation.
    let single = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let mut rng = Pcg64::seed_from_u64(0x51E5);
    let mut engine_counts = vec![0usize; fanout.len()];
    let mut engine_total = 0usize;
    for _ in 0..trials {
        let path = spec.walk(&single, 0, &mut rng);
        if path.len() == 3 && path[1] == HUB {
            engine_counts[slot[&path[2]]] += 1;
            engine_total += 1;
        }
    }

    assert!(service_total > trials * 9 / 10, "most walks route via HUB");
    assert!(engine_total > trials * 9 / 10);

    let critical = chi_square_critical_999(fanout.len() - 1) * 1.5;
    let service_stat = chi_square(&service_counts, &probs);
    let engine_stat = chi_square(&engine_counts, &probs);
    assert!(
        service_stat < critical,
        "sharded node2vec off: chi2 {service_stat:.2} vs critical {critical:.2} ({service_counts:?})"
    );
    assert!(
        engine_stat < critical,
        "single-engine node2vec off: chi2 {engine_stat:.2} vs critical {critical:.2} ({engine_counts:?})"
    );

    // The context actually travelled: forwarded second-order walkers
    // shipped adjacency bytes between shards.
    let stats = service.shutdown();
    assert!(stats.total_forwards() > 0);
    assert!(
        stats.total_context_bytes() > 0,
        "node2vec forwards must carry the previous vertex's fingerprint"
    );
}

#[test]
fn forwarded_context_matches_true_adjacency() {
    let (graph, _) = node2vec_fanout_graph();
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 4,
            seed: 0xC0DE,
            record_epochs: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let partitioner = service.partitioner();
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: 12,
        p: 0.5,
        q: 2.0,
    });
    let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let results = service.wait(service.submit(spec, &starts).unwrap());

    let mut captured = 0usize;
    for contexts in &results.contexts {
        for ctx in contexts {
            // The capture happened on the shard owning the snapshotted
            // vertex...
            assert_eq!(
                partitioner.owner(ctx.vertex),
                ctx.shard,
                "context captured by the owner of vertex {}",
                ctx.vertex
            );
            // ...and the fingerprint is exactly that vertex's sorted true
            // out-adjacency (the graph saw no updates in this test).
            let mut expected: Vec<VertexId> = graph
                .neighbors(ctx.vertex)
                .expect("vertex in range")
                .edges()
                .iter()
                .map(|e| e.dst)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(
                ctx.adjacency, expected,
                "carried context of vertex {} diverged",
                ctx.vertex
            );
            captured += 1;
        }
    }
    assert!(
        captured > 0,
        "multi-shard node2vec must capture forwarded contexts"
    );
    let stats = service.shutdown();
    assert!(stats.total_context_bytes() > 0);
}

/// A 4-shard graph whose node2vec walks cross two shard boundaries on
/// consecutive steps: vertex 0 (shard 0) routes almost all walks to
/// `HUB1 = 15` (shard 1), which routes almost all second steps to
/// `HUB2 = 25` (shard 2). The *third* transition — out of `HUB2`, with
/// previous vertex `HUB1` — has an analytically known distribution that
/// depends on `HUB1`'s adjacency, so it is only sampled correctly if the
/// context captured on shard 0 was consumed by the step at shard 1 and a
/// fresh snapshot of `HUB1` was re-captured for the forward to shard 2.
const HUB1: VertexId = 15;
const HUB2: VertexId = 25;

fn two_boundary_graph() -> (DynamicGraph, Vec<(VertexId, u64)>) {
    let n = 40;
    let mut graph = DynamicGraph::new(n);
    graph.insert_edge(0, HUB1, Bias::from_int(50)).unwrap();
    graph.insert_edge(0, 35, Bias::from_int(1)).unwrap();
    // HUB1's adjacency defines the distance-1 set for the third step.
    graph.insert_edge(HUB1, HUB2, Bias::from_int(50)).unwrap();
    graph.insert_edge(HUB1, 35, Bias::from_int(3)).unwrap();
    graph.insert_edge(HUB1, 5, Bias::from_int(2)).unwrap();
    // HUB2's fan-out spans all four shards.
    let fanout: Vec<(VertexId, u64)> = vec![
        (HUB1, 3), // backtrack → factor 1/p
        (35, 4),   // out-neighbor of HUB1 → factor 1
        (5, 2),    // out-neighbor of HUB1 → factor 1
        (8, 6),    // distance 2 → factor 1/q
        (22, 5),   // distance 2 → factor 1/q
        (38, 1),   // distance 2 → factor 1/q
    ];
    for &(dst, w) in &fanout {
        graph.insert_edge(HUB2, dst, Bias::from_int(w)).unwrap();
    }
    for v in 1..n as u32 {
        if v != HUB1 && v != HUB2 {
            graph
                .insert_edge(v, (v + 1) % n as u32, Bias::from_int(1))
                .unwrap();
        }
    }
    (graph, fanout)
}

#[test]
fn sharded_node2vec_across_two_boundaries_matches_analytic_distribution() {
    let (graph, fanout) = two_boundary_graph();
    let p = 0.5;
    let q = 2.0;
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: 3,
        p,
        q,
    });

    // Analytic third-step distribution out of HUB2 given prev = HUB1.
    let factor = |dst: VertexId| -> f64 {
        if dst == HUB1 {
            1.0 / p
        } else if graph.has_edge(HUB1, dst) {
            1.0
        } else {
            1.0 / q
        }
    };
    let masses: Vec<f64> = fanout
        .iter()
        .map(|&(dst, w)| w as f64 * factor(dst))
        .collect();
    let total: f64 = masses.iter().sum();
    let probs: Vec<f64> = masses.iter().map(|m| m / total).collect();
    let slot: HashMap<VertexId, usize> = fanout
        .iter()
        .enumerate()
        .map(|(i, &(dst, _))| (dst, i))
        .collect();
    let critical = chi_square_critical_999(fanout.len() - 1) * 1.5;
    let trials = 60_000;

    // Both exact encodings must reproduce the distribution; Delta changes
    // the wire bytes but not the membership answers.
    for encoding in [ContextEncoding::Exact, ContextEncoding::Delta] {
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 4,
                seed: 0x2B0D ^ u64::from(encoding == ContextEncoding::Delta),
                record_epochs: true,
                context_encoding: encoding,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let starts = vec![0 as VertexId; trials];
        let results = service.wait(service.submit(spec, &starts).unwrap());
        let mut counts = vec![0usize; fanout.len()];
        let mut via = 0usize;
        for path in &results.paths {
            if path.len() == 4 && path[1] == HUB1 && path[2] == HUB2 {
                counts[slot[&path[3]]] += 1;
                via += 1;
            }
        }
        assert!(
            via > trials * 8 / 10,
            "most walks route 0→HUB1→HUB2 ({via})"
        );
        let stat = chi_square(&counts, &probs);
        assert!(
            stat < critical,
            "{encoding:?}: two-boundary node2vec off: chi2 {stat:.2} vs {critical:.2} ({counts:?})"
        );

        // The walkers that took the 0→HUB1→HUB2 spine were forwarded twice
        // with a capture each time: context for vertex 0 (captured on
        // shard 0), consumed at HUB1, then context for HUB1 re-captured on
        // shard 1 for the forward to shard 2.
        let recaptured = results
            .contexts
            .iter()
            .filter(|ctxs| {
                ctxs.iter().any(|c| c.vertex == 0) && ctxs.iter().any(|c| c.vertex == HUB1)
            })
            .count();
        assert!(
            recaptured > trials / 2,
            "consecutive boundary crossings re-capture context ({recaptured})"
        );

        let stats = service.shutdown();
        assert_eq!(
            stats.total_context_misses(),
            0,
            "no membership query fell back to a non-owning engine"
        );
        assert!(
            stats.total_context_cache_hits() > 0,
            "snapshots were reused"
        );
    }

    // Single engine, same analytic expectation.
    let single = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let mut rng = Pcg64::seed_from_u64(0x2B1D);
    let mut counts = vec![0usize; fanout.len()];
    for _ in 0..trials {
        let path = spec.walk(&single, 0, &mut rng);
        if path.len() == 4 && path[1] == HUB1 && path[2] == HUB2 {
            counts[slot[&path[3]]] += 1;
        }
    }
    let stat = chi_square(&counts, &probs);
    assert!(
        stat < critical,
        "single-engine reference off: chi2 {stat:.2} vs {critical:.2}"
    );
}

#[test]
fn context_byte_accounting_matches_recorded_traces() {
    let (graph, _) = node2vec_fanout_graph();
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 4,
            seed: 0xACC7,
            record_epochs: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: 12,
        p: 0.5,
        q: 2.0,
    });
    let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let results = service.wait(service.submit(spec, &starts).unwrap());
    let stats = service.shutdown();

    // `context_bytes_forwarded` is exactly the sum of the billed bytes of
    // every recorded capture, and `context_bytes_raw` is the sum of what
    // the exact-Vec baseline would have shipped for the same captures.
    let traces: Vec<_> = results.contexts.iter().flatten().collect();
    assert!(!traces.is_empty());
    let billed: u64 = traces.iter().map(|t| t.bytes_sent as u64).sum();
    assert_eq!(stats.total_context_bytes(), billed);
    let raw: u64 = traces
        .iter()
        .map(|t| CarriedContext::exact_wire_len(t.adjacency.len()) as u64)
        .sum();
    assert_eq!(stats.total_context_bytes_raw(), raw);
    // Per-trace billing follows handle negotiation: a snapshot bigger
    // than a handle is offered to the receiver, and bills either the
    // 16-byte handle (receiver already held the snapshot) or the full
    // body (first forward of that snapshot to this owner). Small
    // snapshots are never offered and always ship the body.
    let mut offered = 0u64;
    let mut handle_billed = 0u64;
    for t in &traces {
        let wire = CarriedContext::exact_wire_len(t.adjacency.len());
        if wire > bingo::service::CONTEXT_HANDLE_BYTES {
            offered += 1;
            if t.bytes_sent == bingo::service::CONTEXT_HANDLE_BYTES {
                handle_billed += 1;
            } else {
                assert_eq!(t.bytes_sent, wire, "non-handle forwards bill the body");
            }
        } else {
            assert_eq!(t.bytes_sent, wire, "small snapshots are never offered");
        }
    }
    assert_eq!(stats.total_handle_offers(), offered);
    assert_eq!(stats.total_handle_hits(), handle_billed);
    assert_eq!(stats.total_body_requests(), offered - handle_billed);
    assert!(handle_billed > 0, "repeat forwards ride the 16-byte handle");
    // Cache bookkeeping: one hit or miss per capture, and reuse happened.
    assert_eq!(
        stats.total_context_cache_hits() + stats.total_context_cache_misses(),
        traces.len() as u64
    );
    assert!(
        stats.total_context_cache_hits() > 0,
        "same-wave snapshots reused"
    );
    assert_eq!(stats.total_context_misses(), 0, "no capture faults");
}

#[test]
fn submit_all_vertices_on_empty_graph_completes_immediately() {
    let graph = DynamicGraph::new(0);
    let service = WalkService::build(&graph, ServiceConfig::default()).unwrap();
    // "One walk per vertex" over zero vertices is a valid request for
    // nothing, not an EmptySubmission error.
    let ticket = service
        .submit_all_vertices(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 }))
        .expect("empty all-vertices submission is valid");
    let results = service.wait(ticket);
    assert!(results.paths.is_empty());
    assert_eq!(results.total_steps(), 0);
    // An explicitly empty start list is still an error.
    assert_eq!(
        service.submit(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 }), &[]),
        Err(bingo::service::ServiceError::EmptySubmission)
    );
    let stats = service.shutdown();
    assert_eq!(stats.total_walks_completed(), 0);
}

#[test]
fn walk_client_serves_both_backends_with_chunked_polling() {
    let (graph, _) = node2vec_fanout_graph();
    let n = graph.num_vertices();
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 6 });

    // Local backend: synchronous, complete at submit time.
    let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let local_out = WalkClient::local(&engine)
        .submit(WalkRequest::spec(spec).all_vertices().seed(9))
        .unwrap()
        .wait();
    assert_eq!(local_out.num_walks, n);
    assert!(local_out.total_steps > 0);

    // Service backend with an in-flight cap and visit-count collection:
    // poll try_collect until the chunks drain.
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 4,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let client = WalkClient::sharded(&service);
    let mut handle = client
        .submit(
            WalkRequest::spec(spec)
                .all_vertices()
                .seed(9)
                .max_in_flight(7)
                .collect(CollectionMode::VisitCounts),
        )
        .unwrap();
    let output = loop {
        if let Some(out) = handle.try_collect().unwrap() {
            break out;
        }
        std::thread::yield_now();
    };
    assert_eq!(output.num_walks, n);
    assert!(output.paths.is_empty(), "visit-count mode drops paths");
    let counts = output.visit_counts.expect("visit counts collected");
    assert_eq!(counts.len(), n);
    // Every walk contributes path-length vertices: steps + 1 per walk.
    assert_eq!(
        counts.iter().sum::<u64>() as usize,
        output.total_steps + output.num_walks
    );
}

//! Tier-1 telemetry tests: histogram determinism, deterministic trace
//! sampling, cross-shard lifecycle stitching through a real service run,
//! and the zero-registration guarantee of the disabled mode.

use bingo::prelude::*;
use bingo::telemetry::hist::HistogramCore;
use bingo::telemetry::{
    bucket_index, bucket_lower_bound, names, HistogramSnapshot, TraceStage, NUM_BUCKETS,
};
use bingo::walks::WalkSpec;

/// A directed ring over `n` vertices: every walk of length >= n/shards is
/// guaranteed to cross every contiguous shard boundary.
fn ring(n: usize) -> DynamicGraph {
    let mut graph = DynamicGraph::new(n);
    for v in 0..n as VertexId {
        graph
            .insert_edge(v, (v + 1) % n as VertexId, Bias::from_int(1))
            .unwrap();
    }
    graph
}

// ---------------------------------------------------------------------------
// Histogram determinism
// ---------------------------------------------------------------------------

#[test]
fn bucket_boundaries_are_fixed_and_total() {
    // Bucket 0 holds zero; bucket i >= 1 holds [2^(i-1), 2^i).
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    for i in 1..NUM_BUCKETS {
        let lo = bucket_lower_bound(i);
        assert_eq!(bucket_index(lo), i, "lower edge lands in its own bucket");
        assert_eq!(bucket_index(lo - 1), i - 1, "edge - 1 lands one below");
    }
    assert_eq!(bucket_lower_bound(0), 0);
}

#[test]
fn histogram_buckets_are_thread_count_independent() {
    // The same multiset of values recorded under different team sizes (and
    // hence different interleavings) produces bit-identical snapshots.
    let values: Vec<u64> = (0..10_000u64)
        .map(|i| i.wrapping_mul(0x9E37) >> 3)
        .collect();
    let record_with = |threads: usize| -> HistogramSnapshot {
        let core = HistogramCore::new();
        rayon::with_threads(threads, || {
            use rayon::prelude::*;
            values.par_iter().for_each(|&v| core.record(v));
        });
        core.snapshot()
    };
    let one = record_with(1);
    let four = record_with(4);
    assert_eq!(one.buckets(), four.buckets());
    assert_eq!(one.sum(), four.sum());
    assert_eq!(one.quantile(0.5), four.quantile(0.5));
}

#[test]
fn histogram_merge_is_associative_and_commutative() {
    let mk = |values: &[u64]| -> HistogramSnapshot {
        let core = HistogramCore::new();
        for &v in values {
            core.record(v);
        }
        core.snapshot()
    };
    let a = mk(&[1, 5, 1 << 20, 0]);
    let b = mk(&[3, 3, 3, 1 << 40]);
    let c = mk(&[u64::MAX, 2]);

    let mut ab = a;
    ab.merge(&b);
    let mut ba = b;
    ba.merge(&a);
    assert_eq!(ab.buckets(), ba.buckets(), "merge commutes");
    assert_eq!(ab.sum(), ba.sum());

    let mut ab_c = ab;
    ab_c.merge(&c);
    let mut bc = b;
    bc.merge(&c);
    let mut a_bc = a;
    a_bc.merge(&bc);
    assert_eq!(ab_c.buckets(), a_bc.buckets(), "merge associates");
    assert_eq!(ab_c.sum(), a_bc.sum());
    assert_eq!(
        ab_c.count(),
        (a.count() + b.count() + c.count()),
        "counts add"
    );
}

#[test]
fn quantiles_are_exact_at_bucket_edges() {
    // Values sitting on bucket edges are reported exactly; a quantile never
    // exceeds its value's bucket edge.
    let core = HistogramCore::new();
    for k in [4u32, 4, 10, 10, 10, 20] {
        core.record(1u64 << k);
    }
    let snap = core.snapshot();
    assert_eq!(snap.count(), 6);
    assert_eq!(snap.quantile(0.0), 1 << 4);
    assert_eq!(snap.quantile(0.5), 1 << 10);
    assert_eq!(snap.quantile(1.0), 1 << 20);
    // Non-edge values floor to their bucket's lower edge.
    let core = HistogramCore::new();
    core.record((1 << 10) + 37);
    assert_eq!(core.snapshot().quantile(0.5), 1 << 10);
}

// ---------------------------------------------------------------------------
// Trace sampling
// ---------------------------------------------------------------------------

#[test]
fn sampling_set_is_a_pure_function_of_the_seed() {
    let a = Telemetry::enabled(0xB1A5);
    let b = Telemetry::enabled(0xB1A5);
    let c = Telemetry::enabled(0xB1A6);
    let set = |t: &Telemetry| -> Vec<(u64, u64)> {
        (1..8u64)
            .flat_map(|ticket| (0..512u64).map(move |w| (ticket, w)))
            .filter(|&(ticket, w)| t.is_sampled(ticket, w))
            .collect()
    };
    assert_eq!(set(&a), set(&b), "same seed, same sampled walkers");
    assert_ne!(set(&a), set(&c), "seed changes the set");
    assert!(!set(&a).is_empty());
}

#[test]
fn trace_ring_stays_bounded_under_saturation() {
    let tel = Telemetry::new(TelemetryConfig {
        trace_sample_one_in: 1,
        trace_capacity: 64,
        ..TelemetryConfig::default()
    });
    for w in 0..10_000u32 {
        tel.trace(
            1,
            w,
            TraceStage::StepBatch {
                shard: 0,
                steps: 1,
                epoch: 0,
            },
        );
    }
    let tracer = tel.tracer().expect("tracing on");
    assert_eq!(tracer.len(), 64, "ring never exceeds its bound");
    assert_eq!(tracer.dropped(), 10_000 - 64, "evictions are counted");
    let newest = tracer.events().last().map(|e| e.walker);
    assert_eq!(newest, Some(9_999), "eviction drops the oldest, not newest");
}

#[test]
fn lifecycles_stitch_across_shards_in_a_real_service_run() {
    // Sample every walker so the cross-shard journey is fully recorded,
    // then check the stitched lifecycle: spans recorded by different shard
    // worker threads join on (ticket, walker) and alternate step/hop in
    // ring order.
    let graph = ring(64);
    let telemetry = Telemetry::new(TelemetryConfig {
        trace_seed: 7,
        trace_sample_one_in: 1,
        ..TelemetryConfig::default()
    });
    let service = WalkService::build_with_telemetry(
        &graph,
        ServiceConfig {
            num_shards: 4,
            seed: 0x5717,
            ..ServiceConfig::default()
        },
        telemetry.clone(),
    )
    .expect("service builds");
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 40 });
    let starts: Vec<VertexId> = (0..8).map(|i| i * 8).collect();
    let results = service.wait(service.submit(spec, &starts).expect("submit"));
    assert_eq!(results.paths.len(), starts.len());
    let stats = service.shutdown();
    assert!(stats.total_forwards() > 0, "ring walks must cross shards");

    let tracer = telemetry.tracer().expect("tracing on");
    let lifecycles = tracer.lifecycles();
    assert_eq!(
        lifecycles.len(),
        starts.len(),
        "every walker sampled at 1-in-1"
    );
    for ((_, walker), events) in &lifecycles {
        // Exactly one submit first, one collect last.
        assert!(
            matches!(events.first().unwrap().stage, TraceStage::Submit { .. }),
            "w{walker} starts with submit"
        );
        let TraceStage::Collect { path_len, hops, .. } = events.last().unwrap().stage else {
            panic!("w{walker} ends with collect");
        };
        assert_eq!(path_len as usize, 41, "full-length ring walk");
        // seq strictly increases within a lifecycle (stitching preserved
        // record order even across shard threads).
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        // Hops chain: each hop leaves the shard the previous span ran on.
        let mut current_shard: Option<u32> = None;
        let mut hop_count = 0u32;
        for e in events {
            match e.stage {
                TraceStage::Submit { shard, .. } => current_shard = Some(shard),
                TraceStage::StepBatch { shard, .. } => {
                    assert_eq!(Some(shard), current_shard, "steps run on the owning shard");
                }
                TraceStage::ForwardHop {
                    from_shard,
                    to_shard,
                    ..
                } => {
                    assert_eq!(Some(from_shard), current_shard, "hop leaves current shard");
                    assert_ne!(from_shard, to_shard, "forwards change ownership");
                    current_shard = Some(to_shard);
                    hop_count += 1;
                }
                TraceStage::GatewayDispatch { .. } | TraceStage::Collect { .. } => {}
            }
        }
        assert_eq!(hop_count, hops, "collect's hop count matches the trace");
        assert!(hops > 0, "40-step ring walks cross 16-vertex shards");
    }
    // The dump renders every lifecycle as one stitched line.
    let dump = tracer.dump();
    assert!(
        dump.contains("hop("),
        "dump shows cross-shard hops:\n{dump}"
    );
    assert_eq!(tracer.complete_lifecycle_lines().len(), starts.len());
}

#[test]
fn sampled_service_trace_set_is_thread_count_independent() {
    // The sampled (ticket, walker) set of a detailed service run does not
    // depend on the rayon team size.
    let run = |threads: usize| -> Vec<(u64, u32)> {
        rayon::with_threads(threads, || {
            let graph = ring(48);
            let telemetry = Telemetry::enabled(0xD15C);
            let service = WalkService::build_with_telemetry(
                &graph,
                ServiceConfig {
                    num_shards: 3,
                    seed: 0xD15C,
                    ..ServiceConfig::default()
                },
                telemetry.clone(),
            )
            .expect("service builds");
            let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 12 });
            let starts: Vec<VertexId> = (0..48).collect();
            for _ in 0..4 {
                let ticket = service.submit(spec, &starts).expect("submit");
                service.wait(ticket);
            }
            service.shutdown();
            telemetry
                .tracer()
                .expect("tracing on")
                .lifecycles()
                .into_keys()
                .collect()
        })
    };
    let one = run(1);
    let four = run(4);
    assert!(!one.is_empty(), "1-in-64 over 192 walkers samples some");
    assert_eq!(one, four, "sampled set identical across thread counts");
}

// ---------------------------------------------------------------------------
// Disabled mode and stats views
// ---------------------------------------------------------------------------

#[test]
fn disabled_service_registers_no_histograms_but_keeps_stats_live() {
    let graph = ring(32);
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 2,
            seed: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("service builds");
    let telemetry = service.telemetry().clone();
    assert!(!telemetry.is_detailed());
    assert!(telemetry.timer().is_none(), "no clock reads when disabled");
    assert!(telemetry.tracer().is_none(), "no tracer when disabled");

    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 });
    let starts: Vec<VertexId> = (0..32).collect();
    service.wait(service.submit(spec, &starts).expect("submit"));
    let snap = telemetry.snapshot();
    // Counters are the stats substrate — live even when disabled…
    assert!(
        snap.counter_across_labels(names::SERVICE_SHARD_STEPS) > 0,
        "steps counted through the registry"
    );
    // …while the latency histograms were never registered.
    for name in [
        names::SERVICE_SUBMIT_NS,
        names::SERVICE_SHARD_STEP_BATCH_NS,
        names::SERVICE_SHARD_INBOX_DWELL_NS,
        names::SERVICE_FORWARD_HOP_NS,
        names::SERVICE_COLLECT_NS,
        names::SERVICE_TICKET_LATENCY_NS,
    ] {
        assert_eq!(
            snap.histogram_across_labels(name).count(),
            0,
            "{name} must not be registered in disabled mode"
        );
    }
    let stats = service.shutdown();
    assert!(
        stats.total_steps() > 0,
        "ServiceStats reads the same atomics"
    );
}

#[test]
fn service_stats_render_reports_utilization() {
    let graph = ring(32);
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 2,
            seed: 2,
            ..ServiceConfig::default()
        },
    )
    .expect("service builds");
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 });
    let starts: Vec<VertexId> = (0..32).collect();
    service.wait(service.submit(spec, &starts).expect("submit"));
    let stats = service.shutdown();
    let rendered = stats.render();
    assert!(rendered.contains("util%"), "per-shard utilization column");
    assert!(
        rendered.contains("mean utilization"),
        "totals line reports mean utilization:\n{rendered}"
    );
    assert!(stats.mean_utilization() >= 0.0);
}

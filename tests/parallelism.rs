//! Tier-1 regression tests for the `rayon` shim's parallel runtime:
//! parallel execution must be invisible in every output.
//!
//! The load-bearing property is **bit-identical determinism**: an engine
//! build plus a node2vec walk pass must produce exactly the same
//! `WalkStore` contents whether the shim runs on one thread
//! (`BINGO_THREADS=1` regime, pinned here with `rayon::with_threads`) or a
//! full team. Per-walker RNG streams are index-derived and the shim's
//! chunk boundaries are thread-count-independent, so nothing about
//! scheduling may leak into the results.

use bingo::prelude::*;
use bingo::walks::WalkStore;

fn test_graph(vertices: usize, edges: usize, seed: u64) -> DynamicGraph {
    let mut rng = Pcg64::seed_from_u64(seed);
    GraphGenerator::ErdosRenyi { vertices, edges }
        .generate(BiasDistribution::UniformInt { lo: 1, hi: 63 }, &mut rng)
}

/// Build an engine and run a full node2vec walk pass under a pinned thread
/// count, returning everything the comparison needs.
fn build_and_walk(graph: &DynamicGraph, threads: usize) -> (BingoEngine, WalkStore) {
    rayon::with_threads(threads, || {
        let engine = BingoEngine::build(graph, BingoConfig::default()).expect("engine builds");
        let spec = WalkSpec::Node2Vec(Node2VecConfig {
            walk_length: 16,
            p: 0.5,
            q: 2.0,
        });
        let store = WalkStore::generate(&engine, &spec, 0xDE7E_4214);
        (engine, store)
    })
}

#[test]
fn parallel_walk_store_is_bit_identical_to_sequential() {
    let graph = test_graph(600, 4800, 0xB1460);
    let (seq_engine, seq_store) = build_and_walk(&graph, 1);
    for threads in [2, 8] {
        let (par_engine, par_store) = build_and_walk(&graph, threads);
        // The engines are structurally equal…
        assert_eq!(seq_engine.num_edges(), par_engine.num_edges());
        for v in 0..graph.num_vertices() as VertexId {
            assert_eq!(
                seq_engine.degree(v),
                par_engine.degree(v),
                "degree of {v} with {threads} threads"
            );
        }
        assert_eq!(seq_engine.memory_report(), par_engine.memory_report());
        // …and the walk corpora are bit-identical, walk by walk.
        assert_eq!(
            seq_store.walks(),
            par_store.walks(),
            "WalkStore contents diverged at {threads} threads"
        );
        assert_eq!(seq_store.total_steps(), par_store.total_steps());
    }
}

#[test]
fn incremental_refresh_is_thread_count_independent() {
    let graph = test_graph(300, 2400, 0x5EED);
    let refresh = |threads: usize| {
        rayon::with_threads(threads, || {
            let mut engine =
                BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
            let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 12 });
            let mut store = WalkStore::generate(&engine, &spec, 7);
            // Delete a popular edge and re-sample the affected suffixes —
            // the incremental path the paper's §7.2 integration serves.
            let hub = (0..graph.num_vertices() as VertexId)
                .max_by_key(|&v| engine.degree(v))
                .unwrap();
            let dst = engine.neighbor_fingerprint(hub).unwrap()[0];
            engine.delete_edge(hub, dst).unwrap();
            let stats = store.on_edge_deleted(&engine, hub, dst);
            (store, stats)
        })
    };
    let (seq_store, seq_stats) = refresh(1);
    let (par_store, par_stats) = refresh(4);
    assert_eq!(seq_stats, par_stats);
    assert_eq!(seq_store.walks(), par_store.walks());
}

#[test]
fn walk_engine_results_are_thread_count_independent() {
    let graph = test_graph(400, 3200, 0xCAFE);
    let engine = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
    let spec = WalkSpec::Ppr(PprConfig {
        stop_probability: 0.15,
        max_length: 40,
    });
    let run = |threads: usize| {
        rayon::with_threads(threads, || {
            WalkEngine::new(11).run_all_vertices(&engine, &spec)
        })
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq, par);
}

#[test]
fn pool_team_size_is_pinnable_per_scope() {
    assert!(rayon::current_num_threads() >= 1);
    assert_eq!(rayon::with_threads(1, rayon::current_num_threads), 1);
    assert_eq!(rayon::with_threads(6, rayon::current_num_threads), 6);
}

//! Tier-1 regression tests for the `rayon` shim's parallel runtime:
//! parallel execution must be invisible in every output.
//!
//! The load-bearing property is **bit-identical determinism**: an engine
//! build plus a node2vec walk pass must produce exactly the same
//! `WalkStore` contents whether the shim runs on one thread
//! (`BINGO_THREADS=1` regime, pinned here with `rayon::with_threads`) or a
//! full team. Per-walker RNG streams are index-derived and the shim's
//! chunk boundaries are thread-count-independent, so nothing about
//! scheduling may leak into the results.
//!
//! The same contract extends to the sharded service now that its shards
//! are resumable tasks on the shared pool: cross-shard batch stealing
//! changes *where* a walker's visit executes, never the visit itself
//! (thieves run against the owning shard's engine through the same
//! epoch-checked read path), so `WalkResults` must be bit-identical at
//! any thread count with stealing on or off.

use bingo::prelude::*;
use bingo::service::ServiceConfig;
use bingo::walks::WalkStore;

fn test_graph(vertices: usize, edges: usize, seed: u64) -> DynamicGraph {
    let mut rng = Pcg64::seed_from_u64(seed);
    GraphGenerator::ErdosRenyi { vertices, edges }
        .generate(BiasDistribution::UniformInt { lo: 1, hi: 63 }, &mut rng)
}

/// Build an engine and run a full node2vec walk pass under a pinned thread
/// count, returning everything the comparison needs.
fn build_and_walk(graph: &DynamicGraph, threads: usize) -> (BingoEngine, WalkStore) {
    rayon::with_threads(threads, || {
        let engine = BingoEngine::build(graph, BingoConfig::default()).expect("engine builds");
        let spec = WalkSpec::Node2Vec(Node2VecConfig {
            walk_length: 16,
            p: 0.5,
            q: 2.0,
        });
        let store = WalkStore::generate(&engine, &spec, 0xDE7E_4214);
        (engine, store)
    })
}

#[test]
fn parallel_walk_store_is_bit_identical_to_sequential() {
    let graph = test_graph(600, 4800, 0xB1460);
    let (seq_engine, seq_store) = build_and_walk(&graph, 1);
    for threads in [2, 8] {
        let (par_engine, par_store) = build_and_walk(&graph, threads);
        // The engines are structurally equal…
        assert_eq!(seq_engine.num_edges(), par_engine.num_edges());
        for v in 0..graph.num_vertices() as VertexId {
            assert_eq!(
                seq_engine.degree(v),
                par_engine.degree(v),
                "degree of {v} with {threads} threads"
            );
        }
        assert_eq!(seq_engine.memory_report(), par_engine.memory_report());
        // …and the walk corpora are bit-identical, walk by walk.
        assert_eq!(
            seq_store.walks(),
            par_store.walks(),
            "WalkStore contents diverged at {threads} threads"
        );
        assert_eq!(seq_store.total_steps(), par_store.total_steps());
    }
}

#[test]
fn incremental_refresh_is_thread_count_independent() {
    let graph = test_graph(300, 2400, 0x5EED);
    let refresh = |threads: usize| {
        rayon::with_threads(threads, || {
            let mut engine =
                BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
            let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 12 });
            let mut store = WalkStore::generate(&engine, &spec, 7);
            // Delete a popular edge and re-sample the affected suffixes —
            // the incremental path the paper's §7.2 integration serves.
            let hub = (0..graph.num_vertices() as VertexId)
                .max_by_key(|&v| engine.degree(v))
                .unwrap();
            let dst = engine.neighbor_fingerprint(hub).unwrap()[0];
            engine.delete_edge(hub, dst).unwrap();
            let stats = store.on_edge_deleted(&engine, hub, dst);
            (store, stats)
        })
    };
    let (seq_store, seq_stats) = refresh(1);
    let (par_store, par_stats) = refresh(4);
    assert_eq!(seq_stats, par_stats);
    assert_eq!(seq_store.walks(), par_store.walks());
}

#[test]
fn walk_engine_results_are_thread_count_independent() {
    let graph = test_graph(400, 3200, 0xCAFE);
    let engine = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
    let spec = WalkSpec::Ppr(PprConfig {
        stop_probability: 0.15,
        max_length: 40,
    });
    let run = |threads: usize| {
        rayon::with_threads(threads, || {
            WalkEngine::new(11).run_all_vertices(&engine, &spec)
        })
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq, par);
}

/// One sharded node2vec wave (second-order, so walkers are forwarded with
/// carried context) under a pinned team size and an explicit steal policy.
/// Returns the result paths, slotted by walker index.
fn service_walk_paths(graph: &DynamicGraph, threads: usize, steal: bool) -> Vec<Vec<VertexId>> {
    rayon::with_threads(threads, || {
        let service = WalkService::build(
            graph,
            ServiceConfig {
                num_shards: 4,
                seed: 0x57EA_11CE,
                steal: Some(steal),
                ..ServiceConfig::default()
            },
        )
        .expect("service builds");
        let spec = WalkSpec::Node2Vec(Node2VecConfig {
            walk_length: 14,
            p: 0.5,
            q: 2.0,
        });
        let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
        let results = service.wait(service.submit(spec, &starts).expect("submit"));
        service.shutdown();
        results.paths
    })
}

#[test]
fn service_results_are_thread_count_and_steal_independent() {
    // Walk paths depend only on the per-walker RNG stream and the engine
    // state at the observed epoch — never on which shard task (owner or
    // thief) executed the visit, or on how many workers the pool has.
    let graph = test_graph(240, 1900, 0x0577_EA11);
    let baseline = service_walk_paths(&graph, 1, false);
    assert_eq!(baseline.len(), graph.num_vertices());
    for threads in [1, 2, 4, 8] {
        for steal in [false, true] {
            assert_eq!(
                service_walk_paths(&graph, threads, steal),
                baseline,
                "WalkResults diverged at {threads} threads, steal={steal}"
            );
        }
    }
}

#[test]
fn hot_shard_batches_are_stolen_by_idle_peers() {
    // Every walk starts on shard 0 and is one step long, so shard 0's
    // inbox floods far past the steal threshold while shards 1–3 sit
    // idle: the help-trigger must let them drain batches from shard 0's
    // inbox, and the stolen visits are attributed to the thieves.
    let n = 64usize;
    let mut graph = DynamicGraph::new(n);
    for v in 0..n as VertexId {
        graph
            .insert_edge(v, (v + 1) % n as VertexId, Bias::from_int(1))
            .unwrap();
    }
    let trials = 40_000;
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: 4,
            seed: 0x57EA,
            // Explicit: the CI matrix runs this suite with BINGO_STEAL=off,
            // and the config override outranks the environment.
            steal: Some(true),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let starts = vec![0 as VertexId; trials];
    let results = service.wait(
        service
            .submit(
                WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 1 }),
                &starts,
            )
            .unwrap(),
    );
    assert_eq!(results.paths.len(), trials);
    let stats = service.shutdown();
    assert_eq!(stats.total_steps(), trials as u64);
    assert!(
        stats.total_stolen_walkers() > 0,
        "idle peers must steal from the flooded shard: {}",
        stats.render()
    );
    assert!(stats.total_stolen_batches() > 0);
    // Stolen visits are executed by non-owners: every step a peer shard
    // reports here came out of shard 0's inbox.
    let peer_steps: u64 = stats.per_shard[1..].iter().map(|s| s.steps).sum();
    let peer_stolen: u64 = stats.per_shard[1..].iter().map(|s| s.stolen_walkers).sum();
    assert_eq!(peer_steps, peer_stolen, "peer steps all come from steals");
    assert_eq!(
        stats.per_shard[0].steps + peer_steps,
        trials as u64,
        "owner + thieves cover every visit"
    );
}

#[test]
fn pool_team_size_is_pinnable_per_scope() {
    assert!(rayon::current_num_threads() >= 1);
    assert_eq!(rayon::with_threads(1, rayon::current_num_threads), 1);
    assert_eq!(rayon::with_threads(6, rayon::current_num_threads), 6);
}

//! End-to-end integration tests spanning every crate: graph generation,
//! update streams, the Bingo engine, the baselines, and the walk
//! applications working together.

use bingo::baselines::{FlowWalkerBaseline, GSamplerBaseline, KnightKingBaseline};
use bingo::prelude::*;
use bingo::walks::{DynamicWalkSystem, EvaluationWorkflow, IngestMode, PprConfig};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;

fn test_graph(seed: u64, vertices: usize, edges: usize) -> DynamicGraph {
    let mut rng = Pcg64::seed_from_u64(seed);
    GraphGenerator::ErdosRenyi { vertices, edges }
        .generate(BiasDistribution::UniformInt { lo: 1, hi: 63 }, &mut rng)
}

#[test]
fn full_pipeline_generate_update_walk() {
    let mut rng = Pcg64::seed_from_u64(1);
    let mut graph = StandinDataset::Amazon.build(8_000, &mut rng);
    let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, 500).build(&mut graph, 600, &mut rng);
    let batches = stream.chunks(200);

    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let workflow = EvaluationWorkflow::new(
        WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
        IngestMode::Batched,
    );
    let report = workflow.run(&mut engine, &batches);

    assert_eq!(report.rounds.len(), batches.len());
    assert!(report.total_updates() > 0);
    assert!(report.rounds.iter().all(|r| r.walk_steps > 0));
    engine.check_invariants().unwrap();
}

#[test]
fn streaming_and_batched_ingestion_reach_the_same_graph() {
    let mut rng = Pcg64::seed_from_u64(2);
    let mut graph = test_graph(2, 300, 4000);
    let stream =
        UpdateStreamBuilder::new(UpdateKind::Mixed, 1000).build(&mut graph, 1500, &mut rng);

    let mut streaming = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let mut batched = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    streaming.apply_streaming(&stream);
    batched.apply_batch(&stream);

    assert_eq!(streaming.num_edges(), batched.num_edges());
    for v in 0..streaming.num_vertices() as VertexId {
        assert_eq!(streaming.degree(v), batched.degree(v), "vertex {v}");
    }
    streaming.check_invariants().unwrap();
    batched.check_invariants().unwrap();
}

#[test]
fn every_system_survives_the_same_dynamic_workload() {
    let mut rng = Pcg64::seed_from_u64(3);
    let mut graph = test_graph(3, 200, 3000);
    let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, 800).build(&mut graph, 800, &mut rng);
    let batches = stream.chunks(400);

    let spec = WalkSpec::Ppr(PprConfig {
        stop_probability: 0.1,
        max_length: 100,
    });
    let workflow = EvaluationWorkflow::new(spec, IngestMode::Batched);

    let mut bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let mut kk = KnightKingBaseline::build(&graph);
    let mut gs = GSamplerBaseline::build(&graph);
    let mut fw = FlowWalkerBaseline::build(&graph);

    let reports = [
        workflow.run(&mut bingo, &batches),
        workflow.run(&mut kk, &batches),
        workflow.run(&mut gs, &batches),
        workflow.run(&mut fw, &batches),
    ];
    // All systems applied the same number of updates and produced walks.
    let applied: Vec<usize> = reports.iter().map(|r| r.total_updates()).collect();
    assert!(applied.iter().all(|&a| a == applied[0]), "{applied:?}");
    for report in &reports {
        assert!(report.memory_bytes > 0);
        assert!(report.rounds.iter().all(|r| r.walk_steps > 0));
    }
    // The final graphs agree on edge counts.
    assert_eq!(bingo.num_edges(), kk.graph().num_edges());
    assert_eq!(bingo.num_edges(), fw.graph().num_edges());
}

#[test]
fn bingo_memory_is_bounded_relative_to_baselines() {
    // Bingo trades memory for update speed (Table 1: O(d·K)); the adaptive
    // representation must keep that overhead within a small factor of the
    // alias-table baseline rather than the worst-case K×.
    let mut rng = Pcg64::seed_from_u64(4);
    let graph = StandinDataset::Google.build(4_000, &mut rng);
    let bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let kk = KnightKingBaseline::build(&graph);
    let fw = FlowWalkerBaseline::build(&graph);
    let bingo_mem = DynamicWalkSystem::memory_bytes(&bingo);
    assert!(bingo_mem >= DynamicWalkSystem::memory_bytes(&fw));
    assert!(bingo_mem < 20 * DynamicWalkSystem::memory_bytes(&kk));
}

#[test]
fn node2vec_runs_on_a_dynamic_graph_after_updates() {
    let graph = test_graph(5, 150, 2500);
    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    // Apply a burst of streaming updates.
    for i in 0..200u32 {
        let src = i % 150;
        let dst = (i * 7 + 3) % 150;
        if src != dst {
            let _ = engine.insert_edge(src, dst, Bias::from_int(u64::from(i % 15) + 1));
        }
    }
    let walks = WalkEngine::new(9).run_all_vertices(
        &engine,
        &WalkSpec::Node2Vec(Node2VecConfig {
            walk_length: 15,
            p: 0.5,
            q: 2.0,
        }),
    );
    assert_eq!(walks.num_walks(), engine.num_vertices());
    // Every step must traverse an existing edge.
    for path in &walks.paths {
        for pair in path.windows(2) {
            assert!(engine.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
        }
    }
}

#[test]
fn partitioned_engine_matches_single_engine_edge_counts() {
    let graph = test_graph(6, 120, 2000);
    let single = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let partitioned =
        bingo::core::partition::PartitionedEngine::build(&graph, 4, BingoConfig::default())
            .unwrap();
    assert_eq!(single.num_edges(), partitioned.num_edges());
    let mut rng = Pcg64::seed_from_u64(11);
    let path = partitioned.walk(0, 30, &mut rng);
    assert!(!path.is_empty());
}

//! End-to-end tests for the observability plane: the exposition server's
//! HTTP endpoints, the stall watchdog's 503 flip on a deliberately wedged
//! shard, and the flight recorder's concurrency and panic-dump contracts.

use bingo::obs::{ObsConfig, ObsServer, WatchdogConfig};
use bingo::prelude::*;
use bingo::telemetry::{FlightEventKind, FlightRecorder};
use rand::RngCore;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Minimal HTTP/1.0 GET over a std TcpStream: returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"))
}

fn http_request(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read response to close");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

fn ring_graph(n: u32) -> DynamicGraph {
    let mut graph = DynamicGraph::new(n as usize);
    for v in 0..n {
        graph
            .insert_edge(v, (v + 1) % n, Bias::from_int(1))
            .expect("ring edge fits the graph");
    }
    graph
}

#[test]
fn exposition_endpoints_round_trip() {
    let telemetry = Telemetry::enabled(7);
    let graph = ring_graph(64);
    let config = ServiceConfig {
        num_shards: 4,
        seed: 7,
        ..ServiceConfig::default()
    };
    let service = Arc::new(
        WalkService::build_with_telemetry(&graph, config, telemetry.clone())
            .expect("service builds on a ring graph"),
    );
    let starts: Vec<u32> = (0..32).collect();
    let ticket = service
        .submit(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 }),
            &starts,
        )
        .expect("submit walks");
    let results = service.wait(ticket);
    assert_eq!(results.paths.len(), 32);

    let server = ObsServer::serve(
        ObsConfig::default(),
        telemetry.clone(),
        Some(Arc::clone(&service)),
        None,
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.0 200 OK");
    let steps_line = body
        .lines()
        .find(|l| l.starts_with("service_shard_steps"))
        .expect("prometheus body has the per-shard step counter");
    let value: u64 = steps_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("sample value parses");
    assert!(value > 0, "expected nonzero steps, got: {steps_line}");
    // Pool profile is folded in on scrape.
    assert!(body.contains("pool_calls"), "missing pool profile: {body}");

    let (status, body) = http_get(addr, "/status");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(body.contains("\"healthy\":true"), "status: {body}");
    assert!(body.contains("\"per_shard\":["), "status: {body}");
    assert!(body.contains("\"flight\":{"), "status: {body}");

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert_eq!(body, "ok\n");

    let (status, body) = http_get(addr, "/flight");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(body.starts_with("flight recorder:"), "flight: {body}");

    let (status, _body) = http_get(addr, "/trace");
    assert_eq!(status, "HTTP/1.0 200 OK");

    let (status, _body) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.0 404 Not Found");

    let (status, _body) = http_request(addr, "POST /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, "HTTP/1.0 405 Method Not Allowed");

    server.shutdown();
}

/// A walk model whose first step blocks until the test opens the gate —
/// wedging the shard that executes it mid-step.
#[derive(Debug)]
struct WedgeModel {
    gate: Arc<AtomicBool>,
    entered: Arc<AtomicBool>,
}

impl WalkModel for WedgeModel {
    fn name(&self) -> &str {
        "wedge"
    }

    fn expected_length(&self) -> usize {
        1
    }

    fn max_steps(&self) -> usize {
        1
    }

    fn step(
        &self,
        _state: &WalkState,
        _sampler: &dyn StepSampler,
        _rng: &mut dyn RngCore,
    ) -> Transition {
        self.entered.store(true, Ordering::Release);
        while !self.gate.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Transition::Terminate
    }
}

#[test]
fn wedged_shard_flips_healthz_to_503() {
    let telemetry = Telemetry::enabled(11);
    let graph = ring_graph(8);
    let config = ServiceConfig {
        num_shards: 1,
        seed: 11,
        ..ServiceConfig::default()
    };
    let service = Arc::new(
        WalkService::build_with_telemetry(&graph, config, telemetry.clone())
            .expect("service builds on a ring graph"),
    );
    let server = ObsServer::serve(
        ObsConfig {
            watchdog: WatchdogConfig {
                stall_after: Duration::from_millis(50),
                ..WatchdogConfig::default()
            },
            ..ObsConfig::default()
        },
        telemetry.clone(),
        Some(Arc::clone(&service)),
        None,
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();

    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    let wedge: SharedWalkModel = Arc::new(WedgeModel {
        gate: Arc::clone(&gate),
        entered: Arc::clone(&entered),
    });
    let wedged_ticket = service
        .submit_model(Arc::clone(&wedge), &[0])
        .expect("submit the wedging walker");
    while !entered.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(1));
    }
    // A second walker now sits in the wedged shard's inbox: the shard
    // holds queued work while its progress counters are frozen.
    let queued_ticket = service
        .submit_model(Arc::clone(&wedge), &[1])
        .expect("submit the queued walker");

    // First check seeds the heartbeat baseline; the second, past the
    // threshold, must observe the frozen counters and trip.
    let (status, _body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.0 200 OK");
    std::thread::sleep(Duration::from_millis(150));
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.0 503 Service Unavailable", "body: {body}");
    assert!(body.contains("shard 0 stalled"), "body: {body}");

    let (status, body) = http_get(addr, "/flight");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(body.contains("watchdog-trip shard=0"), "flight: {body}");

    // Un-wedge: both walks finish and health recovers.
    gate.store(true, Ordering::Release);
    assert_eq!(service.wait(wedged_ticket).paths.len(), 1);
    assert_eq!(service.wait(queued_ticket).paths.len(), 1);
    let (status, _body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.0 200 OK");

    server.shutdown();
}

#[test]
fn serve_from_env_gates_on_the_env_var() {
    // No other test in this binary reads BINGO_OBS, so mutating the
    // process environment here cannot race with them.
    std::env::remove_var(bingo::obs::OBS_ENV);
    let telemetry = Telemetry::disabled();
    assert!(
        bingo::obs::serve_from_env(&telemetry, None, None).is_none(),
        "unset BINGO_OBS must mean no listener"
    );
    std::env::set_var(bingo::obs::OBS_ENV, "127.0.0.1:0");
    let server =
        bingo::obs::serve_from_env(&telemetry, None, None).expect("BINGO_OBS starts the server");
    std::env::remove_var(bingo::obs::OBS_ENV);
    let (status, body) = http_get(server.local_addr(), "/healthz");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert_eq!(body, "ok\n");
    server.shutdown();
}

#[test]
fn flight_ring_wraparound_under_concurrent_writers() {
    const CAPACITY: usize = 64;
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 100;
    let recorder = FlightRecorder::new(CAPACITY);
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            let recorder = recorder.clone();
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    recorder.record(FlightEventKind::EpochAdvance { shard: w, epoch: i });
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("writer thread finishes");
    }
    // The drop counter is exact, not sampled: every slot claim past
    // capacity is one dropped event.
    assert_eq!(recorder.recorded(), WRITERS * PER_WRITER);
    assert_eq!(recorder.dropped(), WRITERS * PER_WRITER - CAPACITY as u64);
    let events = recorder.events();
    assert!(!events.is_empty());
    assert!(
        events.len() <= CAPACITY,
        "ring overflowed: {}",
        events.len()
    );
    // Ticks come back sorted even though writers raced.
    assert!(events.windows(2).all(|w| w[0].tick <= w[1].tick));
}

#[test]
fn panic_hook_dumps_last_recorded_event() {
    let recorder = FlightRecorder::new(16);
    recorder.record(FlightEventKind::ShardPark { shard: 3 });
    recorder.record(FlightEventKind::StealExecuted {
        thief: 1,
        victim: 0,
        walkers: 8,
    });
    let buffer: Arc<parking_lot::Mutex<Vec<u8>>> =
        Arc::new(parking_lot::Mutex::new_named(Vec::new(), "test.obs.sink"));
    struct BufSink(Arc<parking_lot::Mutex<Vec<u8>>>);
    impl Write for BufSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let sink: Box<dyn Write + Send> = Box::new(BufSink(Arc::clone(&buffer)));
    recorder.install_panic_hook_to(Arc::new(parking_lot::Mutex::new_named(
        sink,
        "test.obs.hook",
    )));

    let result = std::thread::spawn(|| panic!("forced panic for the flight hook")).join();
    assert!(result.is_err(), "the spawned thread must have panicked");
    // Detach our hook again so later panics in this binary behave normally.
    let _ = std::panic::take_hook();

    let dumped = String::from_utf8(buffer.lock().clone()).expect("dump is UTF-8");
    assert!(dumped.starts_with("flight recorder:"), "dump: {dumped}");
    assert!(
        dumped.contains("steal thief=1 victim=0 walkers=8"),
        "dump misses the last recorded event: {dumped}"
    );
    assert!(dumped.contains("park shard=3"), "dump: {dumped}");
}

//! Statistical-equivalence integration tests: after arbitrary update
//! streams, Bingo's transition distribution must stay identical to the
//! classical samplers' (Theorem 4.1) and to what the raw biases prescribe.

use bingo::baselines::{FlowWalkerBaseline, GSamplerBaseline, KnightKingBaseline};
use bingo::prelude::*;
use bingo::sampling::stats::{chi_square, chi_square_critical_999};
use bingo::walks::TransitionSampler;
use bingo_graph::updates::UpdateKind;

fn build_workload(seed: u64) -> DynamicGraph {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut graph = GraphGenerator::RMat {
        scale: 8,
        avg_degree: 10,
        a: 0.57,
        b: 0.19,
        c: 0.19,
    }
    .generate(
        BiasDistribution::PowerLaw {
            alpha: 1.6,
            max: 255,
        },
        &mut rng,
    );
    // Apply a mixed update stream so the sampling structures have gone
    // through plenty of insertions and deletions before we measure.
    let stream =
        UpdateStreamBuilder::new(UpdateKind::Mixed, 1000).build(&mut graph, 2000, &mut rng);
    graph.apply_batch(&stream);
    graph
}

/// Expected transition probabilities of a vertex straight from the graph.
fn expected_probs(graph: &DynamicGraph, v: VertexId) -> Vec<f64> {
    let adj = graph.neighbors(v).unwrap();
    let total = adj.total_bias();
    adj.edges().iter().map(|e| e.bias.value() / total).collect()
}

/// Chi-square test of a sampler against the bias-prescribed distribution,
/// on the highest-degree vertex (the hardest case for Bingo's groups).
fn assert_sampler_matches<S: TransitionSampler>(sampler: &S, graph: &DynamicGraph, seed: u64) {
    let v = (0..graph.num_vertices() as VertexId)
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let adj = graph.neighbors(v).unwrap();
    let expected = expected_probs(graph, v);
    // Map destination back to neighbor index. Duplicate destinations are
    // merged into the first matching slot.
    let mut rng = Pcg64::seed_from_u64(seed);
    let trials = 200_000;
    let mut counts = vec![0usize; adj.degree()];
    for _ in 0..trials {
        let dst = sampler.sample_neighbor(v, &mut rng).unwrap();
        let idx = adj.find(dst).unwrap();
        counts[idx] += 1;
    }
    // Merge duplicate destinations before the chi-square test.
    let mut merged: std::collections::BTreeMap<VertexId, (usize, f64)> = Default::default();
    for (i, e) in adj.iter() {
        let entry = merged.entry(e.dst).or_insert((0, 0.0));
        entry.0 += counts[i];
        entry.1 += expected[i];
    }
    let observed: Vec<usize> = merged.values().map(|&(c, _)| c).collect();
    let probs: Vec<f64> = merged.values().map(|&(_, p)| p).collect();
    let stat = chi_square(&observed, &probs);
    let critical = chi_square_critical_999(observed.len().saturating_sub(1).max(1));
    assert!(
        stat < critical * 1.5,
        "chi-square {stat:.1} exceeds critical {critical:.1} on vertex {v} (degree {})",
        adj.degree()
    );
}

#[test]
fn bingo_default_matches_bias_distribution_after_updates() {
    let graph = build_workload(1);
    let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    assert_sampler_matches(&engine, &graph, 10);
}

#[test]
fn bingo_baseline_config_matches_bias_distribution_after_updates() {
    let graph = build_workload(2);
    let engine = BingoEngine::build(&graph, BingoConfig::baseline()).unwrap();
    assert_sampler_matches(&engine, &graph, 20);
}

#[test]
fn all_baselines_match_bias_distribution() {
    let graph = build_workload(3);
    assert_sampler_matches(&KnightKingBaseline::build(&graph), &graph, 30);
    assert_sampler_matches(&GSamplerBaseline::build(&graph), &graph, 31);
    assert_sampler_matches(&FlowWalkerBaseline::build(&graph), &graph, 32);
}

#[test]
fn bingo_stays_correct_after_engine_level_updates() {
    let graph = build_workload(4);
    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    // Hammer the highest-degree vertex with more streaming updates.
    let v = (0..graph.num_vertices() as VertexId)
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    for i in 0..100u32 {
        let dst = (i * 13 + 1) % graph.num_vertices() as u32;
        let _ = engine.insert_edge(v, dst, Bias::from_int(u64::from(i % 31) + 1));
    }
    let snapshot = engine.snapshot_graph();
    assert_sampler_matches(&engine, &snapshot, 40);
    engine.check_invariants().unwrap();
}

#[test]
fn floating_point_biases_match_distribution() {
    let mut rng = Pcg64::seed_from_u64(5);
    let mut graph = DynamicGraph::new(50);
    for dst in 1..50u32 {
        let bias = Bias::from_float(0.05 + rng_f(&mut rng) * 3.0);
        graph.insert_edge(0, dst, bias).unwrap();
    }
    let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    assert_sampler_matches(&engine, &graph, 50);
}

fn rng_f(rng: &mut Pcg64) -> f64 {
    use rand::Rng;
    rng.gen::<f64>()
}

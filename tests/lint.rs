//! Tier-1 coverage for the lint gate itself.
//!
//! Three layers: every rule must fire on its known-bad fixture snippet
//! (linted under a virtual path so path-sensitive rules engage), the
//! real tree must be clean end-to-end, and the `parking_lot` shim's
//! runtime lock-order checker must panic on a seeded ABBA inversion.

use bingo_lint::{lint_files, lint_workspace, parse_metric_names, FileInput, LintConfig};
use std::path::Path;

fn repo_root() -> &'static Path {
    // The root package's manifest dir is the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

/// Lint one fixture file as if it lived at `virtual_path`.
fn lint_fixture(name: &str, virtual_path: &str, cfg: &LintConfig) -> Vec<bingo_lint::Finding> {
    let disk = repo_root().join("crates/bingo-lint/fixtures").join(name);
    let source = std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", disk.display()));
    lint_files(
        &[FileInput {
            path: virtual_path.to_string(),
            source,
        }],
        cfg,
    )
}

fn rule_lines(findings: &[bingo_lint::Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn atomics_fixture_fires_only_on_unjustified_relaxed() {
    let findings = lint_fixture(
        "bad_atomics.rs",
        "crates/bingo-core/src/fixture.rs",
        &LintConfig::default(),
    );
    // The bare Relaxed fires; the `// relaxed-ok:` one does not.
    assert_eq!(rule_lines(&findings, "atomics-ordering"), vec![7]);
}

#[test]
fn atomics_fixture_is_exempt_inside_telemetry() {
    let findings = lint_fixture(
        "bad_atomics.rs",
        "crates/bingo-telemetry/src/fixture.rs",
        &LintConfig::default(),
    );
    assert!(rule_lines(&findings, "atomics-ordering").is_empty());
}

#[test]
fn determinism_fixture_fires_on_clock_entropy_and_iteration() {
    let findings = lint_fixture(
        "bad_determinism.rs",
        "crates/bingo-walks/src/fixture.rs",
        &LintConfig::default(),
    );
    let lines = rule_lines(&findings, "determinism");
    assert_eq!(lines.len(), 3, "clock + entropy + iteration: {findings:?}");
    // The order-insensitive `.values().sum()` fold must NOT be flagged.
    let source =
        std::fs::read_to_string(repo_root().join("crates/bingo-lint/fixtures/bad_determinism.rs"))
            .expect("fixture readable");
    let sum_line = source
        .lines()
        .position(|l| l.contains(".values().sum()"))
        .expect("fold present") as u32
        + 1;
    assert!(!lines.contains(&sum_line));
}

#[test]
fn lock_fixture_fires_on_cycle_and_blocking_hold() {
    let findings = lint_fixture(
        "bad_locks.rs",
        "crates/bingo-service/src/fixture.rs",
        &LintConfig::default(),
    );
    let locks: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "lock-discipline")
        .collect();
    let cycles = locks.iter().filter(|f| f.message.contains("cycle")).count();
    let blocking = locks
        .iter()
        .filter(|f| f.message.contains("blocking"))
        .count();
    assert_eq!(
        cycles, 2,
        "one report per direction of the ABBA pair: {locks:?}"
    );
    assert_eq!(blocking, 1, "recv under the inbox lock: {locks:?}");
}

#[test]
fn metrics_fixture_fires_on_unknown_name_and_accepts_known() {
    let names_src =
        std::fs::read_to_string(repo_root().join("crates/bingo-telemetry/src/names.rs"))
            .expect("names.rs readable");
    let cfg = LintConfig {
        metric_names: parse_metric_names(&names_src),
        ..Default::default()
    };
    let findings = lint_fixture(
        "bad_metrics.rs",
        "crates/bingo-gateway/src/fixture.rs",
        &cfg,
    );
    assert_eq!(rule_lines(&findings, "metric-names").len(), 1);

    let good = lint_files(
        &[FileInput {
            path: "crates/bingo-gateway/src/fixture.rs".to_string(),
            source: "pub fn f(r: &Registry) { r.counter(\"service.shard.steps\").incr(1); }\n"
                .to_string(),
        }],
        &cfg,
    );
    assert!(rule_lines(&good, "metric-names").is_empty(), "{good:?}");
}

#[test]
fn hygiene_fixture_fires_on_unwrap_and_println_not_expect() {
    let findings = lint_fixture(
        "bad_hygiene.rs",
        "crates/bingo-service/src/fixture.rs",
        &LintConfig::default(),
    );
    assert_eq!(rule_lines(&findings, "panic-hygiene"), vec![6, 7]);

    // The same code outside the serving layers is not hygiene-checked.
    let elsewhere = lint_fixture(
        "bad_hygiene.rs",
        "crates/bingo-graph/src/fixture.rs",
        &LintConfig::default(),
    );
    assert!(rule_lines(&elsewhere, "panic-hygiene").is_empty());
}

#[test]
fn wire_fixture_fires_on_endianness_width_and_ordering() {
    let findings = lint_fixture(
        "bad_wire.rs",
        "crates/bingo-walks/src/wire/fixture.rs",
        &LintConfig::default(),
    );
    let lines = rule_lines(&findings, "wire-format");
    // HashMap import + HashMap field + `.len().to_le_bytes()` +
    // `to_be_bytes` + `usize::from_le_bytes`; the `lint:allow`-escaped
    // big-endian decode stays quiet.
    assert_eq!(lines, vec![4, 7, 11, 13, 18], "{findings:?}");
}

#[test]
fn wire_fixture_is_exempt_outside_wire_paths() {
    let findings = lint_fixture(
        "bad_wire.rs",
        "crates/bingo-walks/src/model.rs",
        &LintConfig::default(),
    );
    assert!(rule_lines(&findings, "wire-format").is_empty());
}

#[test]
fn baseline_suppresses_by_rule_and_path_prefix() {
    let cfg = LintConfig {
        allow: vec![(
            "atomics-ordering".to_string(),
            "crates/bingo-core/".to_string(),
        )],
        ..Default::default()
    };
    let findings = lint_fixture("bad_atomics.rs", "crates/bingo-core/src/fixture.rs", &cfg);
    assert!(rule_lines(&findings, "atomics-ordering").is_empty());
}

#[test]
fn real_tree_is_clean() {
    let findings = lint_workspace(repo_root(), None).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "the tree must lint clean; run `cargo run -p bingo-lint -- --workspace`:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn runtime_lock_order_checker_panics_on_seeded_inversion() {
    parking_lot::force_enable_lock_check();
    let a = parking_lot::Mutex::new_named(0u32, "linttest.inv_a");
    let b = parking_lot::Mutex::new_named(0u32, "linttest.inv_b");
    // Establish the order a -> b.
    {
        let ga = a.lock();
        let _gb = b.lock();
        drop(_gb);
        drop(ga);
    }
    // Now acquire in the opposite order: the checker must panic at the
    // second acquisition, before blocking.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }));
    let err = result.expect_err("ABBA inversion must panic under BINGO_LOCK_CHECK");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("lock-order inversion"),
        "unexpected panic payload: {msg}"
    );
}

#[test]
fn runtime_checker_accepts_consistent_order() {
    parking_lot::force_enable_lock_check();
    let a = parking_lot::Mutex::new_named(0u32, "linttest.ok_a");
    let b = parking_lot::Mutex::new_named(0u32, "linttest.ok_b");
    for _ in 0..3 {
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);
    }
}

//! Property-based tests on the core data structures and invariants.
//!
//! Originally written with proptest; the offline build environment has no
//! registry access, so the same properties are exercised with a hand-rolled
//! randomized-case loop (64 seeded cases per property, like the original
//! `ProptestConfig::with_cases(64)`), which keeps failures reproducible:
//! every assertion message carries the case seed.
//!
//! * Theorem 4.1 — the radix factorization never changes transition
//!   probabilities, for arbitrary bias vectors.
//! * The per-vertex sampling space keeps its structural invariants under
//!   arbitrary interleaved insert/delete sequences, both streaming and
//!   batched.
//! * The two-phase delete-and-swap compaction preserves exactly the
//!   surviving elements and reports valid moves.
//! * Alias tables and CDF tables stay consistent under arbitrary weights.

use bingo::core::vertex_space::VertexSpace;
use bingo::core::{BingoConfig, Lambda};
use bingo::prelude::*;
use bingo::sampling::CdfTable;
use bingo_graph::adjacency::{AdjacencyList, Edge};
use bingo_graph::two_phase_delete_and_swap;
use rand::Rng;

const CASES: u64 = 64;

fn adjacency_from(biases: &[u64]) -> AdjacencyList {
    let mut adj = AdjacencyList::new();
    for (i, &b) in biases.iter().enumerate() {
        adj.push(Edge::new(i as u32, Bias::from_int(b.max(1))));
    }
    adj
}

/// A random vector with length in `len_range` and elements in `value_range`.
fn random_vec(
    rng: &mut Pcg64,
    len_range: std::ops::Range<usize>,
    value_range: std::ops::Range<u64>,
) -> Vec<u64> {
    let len = rng.gen_range(len_range);
    (0..len)
        .map(|_| rng.gen_range(value_range.clone()))
        .collect()
}

/// Theorem 4.1: the per-group weights of the factorized space sum to the
/// original total bias, and every group's weight is cardinality × 2^k.
#[test]
fn radix_factorization_preserves_total_bias() {
    for case in 0..CASES {
        let mut rng = Pcg64::seed_from_u64(0xFAC7_0000 + case);
        let biases = random_vec(&mut rng, 1..200, 1..100_000);
        let space = VertexSpace::build(adjacency_from(&biases), BingoConfig::default());
        let total: u64 = biases.iter().sum();
        assert!(
            (space.total_weight() - total as f64).abs() < 1e-6,
            "case {case}: total weight mismatch"
        );
        for group in space.groups() {
            let expected = group.cardinality() as f64 * (1u64 << group.bit()) as f64;
            assert_eq!(group.weight(), expected, "case {case}");
        }
        assert!(space.check_invariants().is_ok(), "case {case}");
    }
}

/// The sampling space keeps its invariants under arbitrary interleaved
/// streaming insertions and deletions.
#[test]
fn vertex_space_invariants_hold_under_streaming_ops() {
    for case in 0..CASES {
        let mut rng = Pcg64::seed_from_u64(0x57E4_0000 + case);
        let initial = random_vec(&mut rng, 1..60, 1..1024);
        let adaptive = rng.gen_bool(0.5);
        let config = if adaptive {
            BingoConfig::default()
        } else {
            BingoConfig::baseline()
        };
        let mut space = VertexSpace::build(adjacency_from(&initial), config);
        let num_ops = rng.gen_range(0..80usize);
        for _ in 0..num_ops {
            let op: u8 = rng.gen_range(0..2u8);
            let dst: u32 = rng.gen_range(0..80u32);
            let bias = rng.gen_range(1..1024u64);
            match op {
                0 => {
                    space.insert(dst, Bias::from_int(bias)).unwrap();
                }
                _ => {
                    let _ = space.delete(dst);
                }
            }
            assert!(
                space.check_invariants().is_ok(),
                "case {case}: {:?}",
                space.check_invariants()
            );
        }
    }
}

/// Batched application reaches the same degree and total weight as applying
/// the same operations one at a time.
#[test]
fn batched_and_streaming_vertex_updates_agree() {
    for case in 0..CASES {
        let mut rng = Pcg64::seed_from_u64(0xBA7C_0000 + case);
        let initial = random_vec(&mut rng, 1..40, 1..512);
        let num_inserts = rng.gen_range(0..30usize);
        let insert_pairs: Vec<(VertexId, Bias)> = (0..num_inserts)
            .map(|_| {
                (
                    rng.gen_range(100..200u32),
                    Bias::from_int(rng.gen_range(1..512u64)),
                )
            })
            .collect();
        let num_deletes = rng.gen_range(0..20usize);
        // Deletions target destinations present in the initial list.
        let deletes: Vec<VertexId> = (0..num_deletes)
            .map(|_| (rng.gen_range(0..40usize) % initial.len()) as VertexId)
            .collect();
        let adj = adjacency_from(&initial);

        let mut streaming = VertexSpace::build(adj.clone(), BingoConfig::default());
        for &(dst, bias) in &insert_pairs {
            streaming.insert(dst, bias).unwrap();
        }
        let mut streaming_deleted = 0;
        for &dst in &deletes {
            if streaming.delete(dst).is_ok() {
                streaming_deleted += 1;
            }
        }

        let mut batched = VertexSpace::build(adj, BingoConfig::default());
        let outcome = batched.apply_batch(&insert_pairs, &deletes);

        assert_eq!(outcome.inserted, insert_pairs.len(), "case {case}");
        assert_eq!(outcome.deleted, streaming_deleted, "case {case}");
        assert_eq!(batched.degree(), streaming.degree(), "case {case}");
        assert!(
            (batched.total_weight() - streaming.total_weight()).abs() < 1e-6,
            "case {case}"
        );
        assert!(batched.check_invariants().is_ok(), "case {case}");
    }
}

/// Two-phase delete-and-swap removes exactly the requested positions and
/// reports moves that land in the compacted range.
#[test]
fn two_phase_compaction_preserves_survivors() {
    for case in 0..CASES {
        let mut rng = Pcg64::seed_from_u64(0xC0DE_0000 + case);
        let len = rng.gen_range(1..200usize);
        let num_deletes = rng.gen_range(0..100usize);
        let deletes: Vec<usize> = (0..num_deletes)
            .map(|_| rng.gen_range(0..220usize))
            .collect();
        let original: Vec<usize> = (0..len).collect();
        let mut items = original.clone();
        let moves = two_phase_delete_and_swap(&mut items, &deletes);
        let delete_set: std::collections::HashSet<usize> =
            deletes.iter().copied().filter(|&d| d < len).collect();
        let mut expected: Vec<usize> = original
            .iter()
            .copied()
            .filter(|v| !delete_set.contains(v))
            .collect();
        let mut got = items.clone();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected, "case {case}");
        for (from, to) in moves {
            assert!(to < items.len(), "case {case}");
            assert!(from >= items.len(), "case {case}");
        }
    }
}

/// Alias tables and CDF tables agree on the total weight and only produce
/// in-range samples for arbitrary weight vectors.
#[test]
fn alias_and_cdf_tables_are_consistent() {
    for case in 0..CASES {
        let mut rng = Pcg64::seed_from_u64(0xA11A_0000 + case);
        let len = rng.gen_range(1..100usize);
        let weights: Vec<f64> = (0..len).map(|_| rng.gen_range(0.01..1000.0f64)).collect();
        let alias = AliasTable::new(&weights).unwrap();
        let cdf = CdfTable::new(&weights).unwrap();
        let total: f64 = weights.iter().sum();
        assert!(
            (alias.total_weight() - total).abs() < 1e-6 * total,
            "case {case}"
        );
        assert!(
            (cdf.total_weight() - total).abs() < 1e-6 * total,
            "case {case}"
        );
        for _ in 0..50 {
            assert!(alias.sample(&mut rng) < weights.len(), "case {case}");
            assert!(cdf.sample(&mut rng) < weights.len(), "case {case}");
        }
    }
}

/// Floating-point biases: λ-scaling preserves relative weights for any λ
/// choice the engine can make.
#[test]
fn float_bias_space_preserves_relative_weights() {
    for case in 0..CASES {
        let mut rng = Pcg64::seed_from_u64(0xF10A_0000 + case);
        let len = rng.gen_range(2..40usize);
        let biases: Vec<f64> = (0..len).map(|_| rng.gen_range(0.01..50.0f64)).collect();
        let fixed_lambda = if rng.gen_bool(0.5) {
            Some(rng.gen_range(1..1000u32))
        } else {
            None
        };
        let mut adj = AdjacencyList::new();
        for (i, &b) in biases.iter().enumerate() {
            adj.push(Edge::new(i as u32, Bias::from_float(b)));
        }
        let config = BingoConfig {
            lambda: match fixed_lambda {
                Some(l) => Lambda::Fixed(f64::from(l)),
                None => Lambda::Auto,
            },
            ..BingoConfig::default()
        };
        let space = VertexSpace::build(adj, config);
        assert!(space.check_invariants().is_ok(), "case {case}");
        let total: f64 = biases.iter().sum();
        // total_weight = λ × Σ bias.
        let lambda = space.lambda();
        assert!(
            (space.total_weight() - lambda * total).abs() < 1e-6 * (1.0 + lambda * total),
            "case {case}"
        );
    }
}

#[test]
fn regression_empty_delete_list() {
    // Plain test guarding a corner the random cases may not hit: deleting
    // from an empty space and batching with empty inputs.
    let mut space = VertexSpace::build(AdjacencyList::new(), BingoConfig::default());
    assert!(space.delete(0).is_err());
    let outcome = space.apply_batch(&[], &[]);
    assert_eq!(outcome.inserted + outcome.deleted, 0);
    assert!(space.check_invariants().is_ok());
}

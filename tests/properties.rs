//! Property-based tests (proptest) on the core data structures and
//! invariants:
//!
//! * Theorem 4.1 — the radix factorization never changes transition
//!   probabilities, for arbitrary bias vectors.
//! * The per-vertex sampling space keeps its structural invariants under
//!   arbitrary interleaved insert/delete sequences, both streaming and
//!   batched.
//! * The two-phase delete-and-swap compaction preserves exactly the
//!   surviving elements and reports valid moves.
//! * Alias tables and CDF tables stay consistent under arbitrary weights.

use bingo::core::vertex_space::VertexSpace;
use bingo::core::{BingoConfig, Lambda};
use bingo::prelude::*;
use bingo::sampling::{CdfTable, Sampler};
use bingo_graph::adjacency::{AdjacencyList, Edge};
use bingo_graph::two_phase_delete_and_swap;
use proptest::prelude::*;

fn adjacency_from(biases: &[u64]) -> AdjacencyList {
    let mut adj = AdjacencyList::new();
    for (i, &b) in biases.iter().enumerate() {
        adj.push(Edge::new(i as u32, Bias::from_int(b.max(1))));
    }
    adj
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4.1: the per-group weights of the factorized space sum to the
    /// original total bias, and every group's weight is cardinality × 2^k.
    #[test]
    fn radix_factorization_preserves_total_bias(
        biases in prop::collection::vec(1u64..100_000, 1..200)
    ) {
        let space = VertexSpace::build(adjacency_from(&biases), BingoConfig::default());
        let total: u64 = biases.iter().sum();
        prop_assert!((space.total_weight() - total as f64).abs() < 1e-6);
        for group in space.groups() {
            let expected = group.cardinality() as f64 * (1u64 << group.bit()) as f64;
            prop_assert_eq!(group.weight(), expected);
        }
        prop_assert!(space.check_invariants().is_ok());
    }

    /// The sampling space keeps its invariants under arbitrary interleaved
    /// streaming insertions and deletions.
    #[test]
    fn vertex_space_invariants_hold_under_streaming_ops(
        initial in prop::collection::vec(1u64..1024, 1..60),
        ops in prop::collection::vec((0u8..2, 0u32..80, 1u64..1024), 0..80),
        adaptive in prop::bool::ANY,
    ) {
        let config = if adaptive { BingoConfig::default() } else { BingoConfig::baseline() };
        let mut space = VertexSpace::build(adjacency_from(&initial), config);
        for (op, dst, bias) in ops {
            match op {
                0 => { space.insert(dst, Bias::from_int(bias)).unwrap(); }
                _ => { let _ = space.delete(dst); }
            }
            prop_assert!(space.check_invariants().is_ok(), "{:?}", space.check_invariants());
        }
    }

    /// Batched application reaches the same degree and total weight as
    /// applying the same operations one at a time.
    #[test]
    fn batched_and_streaming_vertex_updates_agree(
        initial in prop::collection::vec(1u64..512, 1..40),
        inserts in prop::collection::vec((100u32..200, 1u64..512), 0..30),
        delete_idx in prop::collection::vec(0usize..40, 0..20),
    ) {
        let adj = adjacency_from(&initial);
        // Deletions target destinations present in the initial list.
        let deletes: Vec<VertexId> = delete_idx
            .iter()
            .map(|&i| (i % initial.len()) as VertexId)
            .collect();
        let insert_pairs: Vec<(VertexId, Bias)> = inserts
            .iter()
            .map(|&(dst, b)| (dst, Bias::from_int(b)))
            .collect();

        let mut streaming = VertexSpace::build(adj.clone(), BingoConfig::default());
        for &(dst, bias) in &insert_pairs {
            streaming.insert(dst, bias).unwrap();
        }
        let mut streaming_deleted = 0;
        for &dst in &deletes {
            if streaming.delete(dst).is_ok() {
                streaming_deleted += 1;
            }
        }

        let mut batched = VertexSpace::build(adj, BingoConfig::default());
        let outcome = batched.apply_batch(&insert_pairs, &deletes);

        prop_assert_eq!(outcome.inserted, insert_pairs.len());
        prop_assert_eq!(outcome.deleted, streaming_deleted);
        prop_assert_eq!(batched.degree(), streaming.degree());
        prop_assert!((batched.total_weight() - streaming.total_weight()).abs() < 1e-6);
        prop_assert!(batched.check_invariants().is_ok());
    }

    /// Two-phase delete-and-swap removes exactly the requested positions and
    /// reports moves that land in the compacted range.
    #[test]
    fn two_phase_compaction_preserves_survivors(
        len in 1usize..200,
        deletes in prop::collection::vec(0usize..220, 0..100),
    ) {
        let original: Vec<usize> = (0..len).collect();
        let mut items = original.clone();
        let moves = two_phase_delete_and_swap(&mut items, &deletes);
        let delete_set: std::collections::HashSet<usize> =
            deletes.iter().copied().filter(|&d| d < len).collect();
        let mut expected: Vec<usize> = original
            .iter()
            .copied()
            .filter(|v| !delete_set.contains(v))
            .collect();
        let mut got = items.clone();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        for (from, to) in moves {
            prop_assert!(to < items.len());
            prop_assert!(from >= items.len());
        }
    }

    /// Alias tables and CDF tables agree on the total weight and only
    /// produce in-range samples for arbitrary weight vectors.
    #[test]
    fn alias_and_cdf_tables_are_consistent(
        weights in prop::collection::vec(0.01f64..1000.0, 1..100),
        seed in 0u64..1000,
    ) {
        let alias = AliasTable::new(&weights).unwrap();
        let cdf = CdfTable::new(&weights).unwrap();
        let total: f64 = weights.iter().sum();
        prop_assert!((alias.total_weight() - total).abs() < 1e-6 * total);
        prop_assert!((cdf.total_weight() - total).abs() < 1e-6 * total);
        let mut rng = Pcg64::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(alias.sample(&mut rng) < weights.len());
            prop_assert!(cdf.sample(&mut rng) < weights.len());
        }
    }

    /// Floating-point biases: λ-scaling preserves relative weights for any
    /// λ choice the engine can make.
    #[test]
    fn float_bias_space_preserves_relative_weights(
        biases in prop::collection::vec(0.01f64..50.0, 2..40),
        fixed_lambda in prop::option::of(1u32..1000),
    ) {
        let mut adj = AdjacencyList::new();
        for (i, &b) in biases.iter().enumerate() {
            adj.push(Edge::new(i as u32, Bias::from_float(b)));
        }
        let config = BingoConfig {
            lambda: match fixed_lambda {
                Some(l) => Lambda::Fixed(f64::from(l)),
                None => Lambda::Auto,
            },
            ..BingoConfig::default()
        };
        let space = VertexSpace::build(adj, config);
        prop_assert!(space.check_invariants().is_ok());
        let total: f64 = biases.iter().sum();
        // total_weight = λ × Σ bias.
        let lambda = space.lambda();
        prop_assert!((space.total_weight() - lambda * total).abs() < 1e-6 * (1.0 + lambda * total));
    }
}

#[test]
fn proptest_regression_empty_delete_list() {
    // Plain test guarding a corner proptest may not hit: deleting from an
    // empty space and batching with empty inputs.
    let mut space = VertexSpace::build(AdjacencyList::new(), BingoConfig::default());
    assert!(space.delete(0).is_err());
    let outcome = space.apply_batch(&[], &[]);
    assert_eq!(outcome.inserted + outcome.deleted, 0);
    assert!(space.check_invariants().is_ok());
}

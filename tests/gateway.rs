//! Integration tests for the multi-tenant gateway (`bingo-gateway`) over a
//! real sharded walk service:
//!
//! * DRR fairness property — under saturating offered load, two tenants
//!   with 3:1 weights must complete steps within tolerance of a 75/25
//!   split while both are backlogged;
//! * admission boundaries — per-tenant queue overflow returns
//!   `Overloaded` without touching already-queued work, and saturation
//!   bounces requeue (never drop) chunks;
//! * result integrity — chunked, fairness-reordered dispatch still
//!   returns every path in submission order.

use bingo::gateway::{AimdConfig, Gateway, GatewayConfig, GatewayError, TenantId};
use bingo::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn ring_graph(n: usize) -> DynamicGraph {
    let mut g = DynamicGraph::new(n);
    for v in 0..n as u32 {
        g.insert_edge(v, (v + 1) % n as u32, Bias::from_int(2))
            .unwrap();
        g.insert_edge(v, (v + 5) % n as u32, Bias::from_int(1))
            .unwrap();
    }
    g
}

fn bounded_service(n: usize, shards: usize, max_inbox: usize) -> Arc<WalkService> {
    Arc::new(
        WalkService::build(
            &ring_graph(n),
            ServiceConfig {
                num_shards: shards,
                max_inbox,
                ..ServiceConfig::default()
            },
        )
        .unwrap(),
    )
}

#[test]
fn weighted_tenants_complete_within_tolerance_of_their_weights() {
    // Both tenants offer the same saturating load; weights 3:1. At the
    // moment the heavy tenant's offered walks complete, its share of all
    // completed steps must sit near 75% (loose tolerance: this runs in
    // debug builds on loaded CI machines).
    let service = bounded_service(256, 2, 32);
    let gateway = Gateway::new(
        service,
        GatewayConfig {
            chunk_walkers: 16,
            quantum_walkers: 16,
            window: AimdConfig {
                initial: 32,
                min: 16,
                max: 96,
                ..AimdConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 });
    let offered_per_tenant = 2_000u64;
    let mut tickets = Vec::new();
    for round in 0..(offered_per_tenant as usize / 100) {
        let starts: Vec<VertexId> = (0..100).map(|k| ((round * 7 + k) % 256) as u32).collect();
        tickets.push(
            gateway
                .submit(
                    WalkRequest::spec(spec)
                        .starts(starts.clone())
                        .tenant("heavy")
                        .weight(3),
                )
                .unwrap(),
        );
        tickets.push(
            gateway
                .submit(
                    WalkRequest::spec(spec)
                        .starts(starts)
                        .tenant("light")
                        .weight(1),
                )
                .unwrap(),
        );
    }
    let heavy = TenantId::new("heavy");
    let light = TenantId::new("light");
    let (heavy_cut, light_cut) = loop {
        let stats = gateway.stats();
        if stats.tenant(&heavy).map_or(0, |t| t.completed_walks) >= offered_per_tenant {
            break (
                stats.tenant(&heavy).map_or(0, |t| t.completed_steps),
                stats.tenant(&light).map_or(0, |t| t.completed_steps),
            );
        }
        std::thread::sleep(Duration::from_micros(300));
    };
    for t in tickets {
        gateway.wait(t).expect("no submission fails");
    }
    let stats = gateway.shutdown();

    let share = heavy_cut as f64 / (heavy_cut + light_cut).max(1) as f64;
    assert!(
        (share - 0.75).abs() <= 0.15,
        "heavy completed-step share {share:.3} not within 0.15 of 0.75 \
         (heavy {heavy_cut} vs light {light_cut} steps at cut)"
    );
    // Everything offered completed — queued under pressure, never dropped.
    for id in [&heavy, &light] {
        let t = stats.tenant(id).expect("tenant served");
        assert_eq!(t.completed_walks, offered_per_tenant, "tenant {id}");
        assert_eq!(t.failed_walks, 0);
        assert_eq!(t.rejected_overloaded, 0);
    }
}

#[test]
fn queue_overflow_rejects_only_the_oversized_tenant() {
    let service = bounded_service(64, 2, 32);
    let gateway = Gateway::new(
        service,
        GatewayConfig {
            max_queue_per_tenant: 100,
            ..GatewayConfig::default()
        },
    );
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 });
    // Fill "greedy" to its bound across several submissions...
    let mut tickets = Vec::new();
    let mut rejections = 0;
    for _ in 0..5 {
        match gateway.submit(
            WalkRequest::spec(spec)
                .starts((0..40).collect())
                .tenant("greedy"),
        ) {
            Ok(t) => tickets.push(t),
            Err(GatewayError::Overloaded {
                tenant, capacity, ..
            }) => {
                assert_eq!(tenant.as_str(), "greedy");
                assert_eq!(capacity, 100);
                rejections += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    // The loop above races the dispatcher (a fast drain can keep the queue
    // under the bound), so force a deterministic overflow: one submission
    // larger than the whole bound is refused no matter how much was
    // drained, because admission checks `queued + incoming > capacity`.
    match gateway.submit(
        WalkRequest::spec(spec)
            .starts((0..150).map(|i| i % 64).collect())
            .tenant("greedy"),
    ) {
        Ok(_) => panic!("a 150-walker submission must overflow the 100-walker bound"),
        Err(GatewayError::Overloaded {
            tenant, capacity, ..
        }) => {
            assert_eq!(tenant.as_str(), "greedy");
            assert_eq!(capacity, 100);
            rejections += 1;
        }
        Err(other) => panic!("unexpected error {other:?}"),
    }
    // ...while a polite tenant still gets in.
    let polite = gateway
        .submit(
            WalkRequest::spec(spec)
                .starts((0..40).collect())
                .tenant("polite"),
        )
        .expect("another tenant's overflow must not affect this one");
    for t in tickets {
        assert_eq!(gateway.wait(t).unwrap().paths.len(), 40);
    }
    assert_eq!(gateway.wait(polite).unwrap().paths.len(), 40);
    let stats = gateway.shutdown();
    let greedy = stats.tenant(&TenantId::new("greedy")).unwrap();
    assert_eq!(greedy.rejected_overloaded as usize, rejections);
    assert!(
        rejections > 0,
        "at least one submission overflowed the 100-walker bound"
    );
    assert!(greedy.peak_queued_walkers <= 100, "bound never exceeded");
}

#[test]
fn saturation_requeues_preserve_every_walk_and_its_order() {
    // Inboxes of 4 under a window that overshoots: chunks bounce with
    // retryable Saturated and must come back in order, losing nothing.
    let service = bounded_service(96, 3, 4);
    let gateway = Gateway::new(
        service,
        GatewayConfig {
            chunk_walkers: 8, // clamped to 4 by the inbox bound
            window: AimdConfig {
                initial: 96,
                min: 4,
                ..AimdConfig::default()
            },
            ..GatewayConfig::default()
        },
    );
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 12 });
    let starts: Vec<VertexId> = (0..96).rev().collect();
    let ticket = gateway
        .submit(WalkRequest::spec(spec).starts(starts.clone()).tenant("t"))
        .unwrap();
    let results = gateway.wait(ticket).unwrap();
    assert_eq!(results.paths.len(), 96);
    for (path, &start) in results.paths.iter().zip(&starts) {
        assert_eq!(path[0], start, "submission order survives requeues");
        assert_eq!(path.len(), 13, "ring walks run to full length");
    }
    let stats = gateway.shutdown();
    let t = stats.tenant(&TenantId::new("t")).unwrap();
    assert_eq!(t.completed_walks, 96);
    assert_eq!(t.failed_walks, 0, "nothing dropped");
}

//! Integration tests for the adaptive group representation (§5.1), the
//! floating-point bias path (§4.3), and the arbitrary-radix-base extension
//! (§9.2) at whole-engine scale.

use bingo::core::radix_base::RadixBaseSpace;
use bingo::core::{GroupKind, Lambda};
use bingo::prelude::*;
use bingo::sampling::stats::{chi_square, chi_square_critical_999, normalize};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;
use rand::Rng;

#[test]
fn adaptive_engine_uses_every_group_kind_on_skewed_graphs() {
    let mut rng = Pcg64::seed_from_u64(1);
    let graph = StandinDataset::LiveJournal.build(4_000, &mut rng);
    let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let report = engine.memory_report();
    // On a skewed graph with degree-derived biases, all four representations
    // should appear somewhere.
    assert!(report.count_for(GroupKind::Dense) > 0);
    assert!(report.count_for(GroupKind::Regular) > 0);
    assert!(report.count_for(GroupKind::OneElement) > 0);
    assert!(report.count_for(GroupKind::Sparse) > 0);
    // And the adaptive memory must not exceed the all-regular baseline.
    let baseline = BingoEngine::build(&graph, BingoConfig::baseline()).unwrap();
    assert!(report.sampling_bytes() <= baseline.memory_report().sampling_bytes());
}

#[test]
fn adaptive_thresholds_change_the_group_mix() {
    let mut rng = Pcg64::seed_from_u64(2);
    let graph = StandinDataset::Google.build(4_000, &mut rng);
    let default_engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    // α = 0 forces every non-empty group to be classified dense.
    let all_dense_config = BingoConfig {
        alpha_percent: 0.0,
        ..BingoConfig::default()
    };
    let dense_engine = BingoEngine::build(&graph, all_dense_config).unwrap();
    let default_report = default_engine.memory_report();
    let dense_report = dense_engine.memory_report();
    assert!(dense_report.count_for(GroupKind::Regular) == 0);
    assert!(dense_report.count_for(GroupKind::Sparse) == 0);
    assert!(dense_report.sampling_bytes() <= default_report.sampling_bytes());
    // Sampling must still be correct with the extreme configuration.
    let v = (0..graph.num_vertices() as VertexId)
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let adj = graph.neighbors(v).unwrap();
    let expected = normalize(
        &adj.edges()
            .iter()
            .map(|e| e.bias.value())
            .collect::<Vec<_>>(),
    );
    let mut rng = Pcg64::seed_from_u64(3);
    let mut counts = vec![0usize; adj.degree()];
    for _ in 0..100_000 {
        let dst = dense_engine.sample_neighbor(v, &mut rng).unwrap();
        counts[adj.find(dst).unwrap()] += 1;
    }
    // Merge duplicate destinations (R-MAT stand-ins contain multi-edges).
    let mut merged: std::collections::BTreeMap<VertexId, (usize, f64)> = Default::default();
    for (i, e) in adj.iter() {
        let entry = merged.entry(e.dst).or_insert((0, 0.0));
        entry.0 += counts[i];
        entry.1 += expected[i];
    }
    let observed: Vec<usize> = merged.values().map(|&(c, _)| c).collect();
    let probs: Vec<f64> = merged.values().map(|&(_, p)| p).collect();
    let stat = chi_square(&observed, &probs);
    assert!(stat < chi_square_critical_999(observed.len() - 1) * 1.5);
}

#[test]
fn float_bias_engine_handles_mixed_update_workloads() {
    let mut rng = Pcg64::seed_from_u64(4);
    // Start from an integer-bias graph, then convert to fractional biases.
    let base = StandinDataset::Amazon.build(8_000, &mut rng);
    let mut graph = DynamicGraph::new(base.num_vertices());
    for (src, e) in base.edges() {
        let jitter: f64 = rng.gen();
        graph
            .insert_edge(src, e.dst, Bias::from_float(e.bias.value() + jitter))
            .unwrap();
    }
    let mut stream_graph = graph.clone();
    let stream =
        UpdateStreamBuilder::new(UpdateKind::Mixed, 1000).build(&mut stream_graph, 1200, &mut rng);
    let mut engine = BingoEngine::build(&stream_graph, BingoConfig::default()).unwrap();
    let outcome = engine.apply_batch(&stream);
    assert_eq!(outcome.inserted, stream.num_insertions());
    engine.check_invariants().unwrap();
    // λ must be in effect on at least some vertices (fractional biases).
    let has_scaled_vertex = (0..engine.num_vertices() as VertexId)
        .any(|v| engine.vertex_space(v).unwrap().lambda() > 1.0);
    assert!(has_scaled_vertex);
    // Walks still run.
    let walks = WalkEngine::new(5).run_all_vertices(
        &engine,
        &WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 }),
    );
    assert_eq!(walks.num_walks(), engine.num_vertices());
}

#[test]
fn fixed_lambda_matches_paper_example_at_engine_scale() {
    // λ = 10 as in §4.3; the engine must respect the fixed factor.
    let mut graph = DynamicGraph::new(3);
    graph.insert_edge(0, 1, Bias::from_float(0.554)).unwrap();
    graph.insert_edge(0, 2, Bias::from_float(0.726)).unwrap();
    graph.insert_edge(1, 2, Bias::from_float(0.32)).unwrap();
    let config = BingoConfig {
        lambda: Lambda::Fixed(10.0),
        ..BingoConfig::default()
    };
    let engine = BingoEngine::build(&graph, config).unwrap();
    assert_eq!(engine.vertex_space(0).unwrap().lambda(), 10.0);
    assert_eq!(
        engine
            .vertex_space(0)
            .unwrap()
            .decimal_group()
            .cardinality(),
        2
    );
    engine.check_invariants().unwrap();
}

#[test]
fn radix_base_space_agrees_with_binary_engine_distribution() {
    // The §9.2 extension must produce the same distribution as the binary
    // factorization for the same bias vector.
    let biases: Vec<u64> = vec![5, 4, 3, 17, 100, 63, 1, 255, 12];
    let expected = normalize(&biases.iter().map(|&b| b as f64).collect::<Vec<_>>());

    // Binary engine over a single vertex.
    let mut graph = DynamicGraph::new(biases.len() + 1);
    for (i, &b) in biases.iter().enumerate() {
        graph
            .insert_edge(0, (i + 1) as VertexId, Bias::from_int(b))
            .unwrap();
    }
    let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let base4 = RadixBaseSpace::build(&biases, 4);

    let mut rng = Pcg64::seed_from_u64(6);
    let trials = 200_000;
    let mut engine_counts = vec![0usize; biases.len()];
    let mut base4_counts = vec![0usize; biases.len()];
    for _ in 0..trials {
        let dst = engine.sample_neighbor(0, &mut rng).unwrap();
        engine_counts[(dst - 1) as usize] += 1;
        base4_counts[base4.sample(&mut rng).unwrap()] += 1;
    }
    let critical = chi_square_critical_999(biases.len() - 1) * 1.5;
    assert!(chi_square(&engine_counts, &expected) < critical);
    assert!(chi_square(&base4_counts, &expected) < critical);
}

#[test]
fn reclassification_can_be_disabled_for_streaming() {
    let mut rng = Pcg64::seed_from_u64(7);
    let graph = StandinDataset::Amazon.build(8_000, &mut rng);
    let config = BingoConfig {
        reclassify_on_streaming: false,
        ..BingoConfig::default()
    };
    let mut engine = BingoEngine::build(&graph, config).unwrap();
    for i in 0..200u32 {
        let src = i % graph.num_vertices() as u32;
        let dst = (i * 31 + 7) % graph.num_vertices() as u32;
        if src != dst {
            let _ = engine.insert_edge(src, dst, Bias::from_int(u64::from(i % 63) + 1));
        }
    }
    // Invariants hold even without streaming reclassification; kinds may be
    // stale relative to the thresholds, which is the intended trade-off.
    engine.check_invariants().unwrap();
}

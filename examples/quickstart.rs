//! Quickstart: build a small weighted graph, create the Bingo engine, run a
//! few biased random walks, and stream some updates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bingo::prelude::*;

fn main() {
    // 1. Build the paper's running example graph (Figure 1, snapshot 1).
    //    Vertex 2 has three out-edges: (2,1,5), (2,4,4), (2,5,3).
    let mut graph = DynamicGraph::new(6);
    let edges = [
        (0, 1, 6),
        (0, 2, 7),
        (1, 2, 5),
        (2, 1, 5),
        (2, 4, 4),
        (2, 5, 3),
        (3, 2, 5),
        (4, 3, 1),
    ];
    for (src, dst, bias) in edges {
        graph
            .insert_edge(src, dst, Bias::from_int(bias))
            .expect("edge is valid");
    }
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Build the Bingo sampling engine (radix-factorized sampling spaces).
    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");

    // Inspect vertex 2's radix groups: biases 5, 4, 3 decompose into groups
    // 2^0 = {5, 3}, 2^1 = {3}, 2^2 = {5, 4} with group biases 2, 2, 8.
    let space = engine.vertex_space(2).expect("vertex 2 exists");
    println!("vertex 2 has {} radix groups:", space.num_groups());
    for group in space.groups() {
        println!(
            "  group 2^{}: {} edges, weight {}, representation {:?}",
            group.bit(),
            group.cardinality(),
            group.weight(),
            group.kind()
        );
    }

    // 3. Sample neighbors of vertex 2 in O(1) and check the empirical
    //    distribution matches the biases 5:4:3.
    let mut rng = Pcg64::seed_from_u64(42);
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..12_000 {
        let next = engine
            .sample_neighbor(2, &mut rng)
            .expect("vertex 2 has edges");
        *counts.entry(next).or_insert(0u32) += 1;
    }
    println!("12,000 samples from vertex 2 (expect ≈ 5000 / 4000 / 3000):");
    for (neighbor, count) in &counts {
        println!("  neighbor {neighbor}: {count}");
    }

    // 4. Stream the updates from Figure 1: insert (2,3,3), then delete (2,1).
    engine
        .insert_edge(2, 3, Bias::from_int(3))
        .expect("insert is valid");
    engine.delete_edge(2, 1).expect("edge exists");
    println!(
        "after updates vertex 2 has degree {} and total weight {}",
        engine.degree(2),
        engine.vertex_space(2).unwrap().total_weight()
    );

    // 5. Run a DeepWalk pass: one 10-step walker per vertex.
    let walks = WalkEngine::new(7).run_all_vertices(
        &engine,
        &WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
    );
    println!(
        "DeepWalk: {} walks, {} total steps, first path: {:?}",
        walks.num_walks(),
        walks.total_steps(),
        walks.paths[0]
    );
}

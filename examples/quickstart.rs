//! Quickstart: build a small weighted graph, create the Bingo engine, run a
//! few biased random walks, stream some updates, and plug a custom walk
//! model into the unified `WalkClient` front-end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bingo::prelude::*;
use bingo::walks::model::StepSampler;
use rand::{Rng, RngCore};
use std::sync::Arc;

fn main() {
    // 1. Build the paper's running example graph (Figure 1, snapshot 1).
    //    Vertex 2 has three out-edges: (2,1,5), (2,4,4), (2,5,3).
    let mut graph = DynamicGraph::new(6);
    let edges = [
        (0, 1, 6),
        (0, 2, 7),
        (1, 2, 5),
        (2, 1, 5),
        (2, 4, 4),
        (2, 5, 3),
        (3, 2, 5),
        (4, 3, 1),
    ];
    for (src, dst, bias) in edges {
        graph
            .insert_edge(src, dst, Bias::from_int(bias))
            .expect("edge is valid");
    }
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Build the Bingo sampling engine (radix-factorized sampling spaces).
    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");

    // Inspect vertex 2's radix groups: biases 5, 4, 3 decompose into groups
    // 2^0 = {5, 3}, 2^1 = {3}, 2^2 = {5, 4} with group biases 2, 2, 8.
    let space = engine.vertex_space(2).expect("vertex 2 exists");
    println!("vertex 2 has {} radix groups:", space.num_groups());
    for group in space.groups() {
        println!(
            "  group 2^{}: {} edges, weight {}, representation {:?}",
            group.bit(),
            group.cardinality(),
            group.weight(),
            group.kind()
        );
    }

    // 3. Sample neighbors of vertex 2 in O(1) and check the empirical
    //    distribution matches the biases 5:4:3.
    let mut rng = Pcg64::seed_from_u64(42);
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..12_000 {
        let next = engine
            .sample_neighbor(2, &mut rng)
            .expect("vertex 2 has edges");
        *counts.entry(next).or_insert(0u32) += 1;
    }
    println!("12,000 samples from vertex 2 (expect ≈ 5000 / 4000 / 3000):");
    for (neighbor, count) in &counts {
        println!("  neighbor {neighbor}: {count}");
    }

    // 4. Stream the updates from Figure 1: insert (2,3,3), then delete (2,1).
    engine
        .insert_edge(2, 3, Bias::from_int(3))
        .expect("insert is valid");
    engine.delete_edge(2, 1).expect("edge exists");
    println!(
        "after updates vertex 2 has degree {} and total weight {}",
        engine.degree(2),
        engine.vertex_space(2).unwrap().total_weight()
    );

    // 5. Run a DeepWalk pass: one 10-step walker per vertex.
    let walks = WalkEngine::new(7).run_all_vertices(
        &engine,
        &WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
    );
    println!(
        "DeepWalk: {} walks, {} total steps, first path: {:?}",
        walks.num_walks(),
        walks.total_steps(),
        walks.paths[0]
    );

    // 6. Walk applications are pluggable: implement `WalkModel` and submit
    //    it through the unified `WalkClient` — the same request would run
    //    unchanged on a sharded `WalkService`.
    #[derive(Debug)]
    struct TemperatureWalk {
        tau: f64,
        max_steps: usize,
    }

    impl WalkModel for TemperatureWalk {
        fn name(&self) -> &str {
            "temperature"
        }
        fn expected_length(&self) -> usize {
            self.tau.ceil() as usize
        }
        fn max_steps(&self) -> usize {
            self.max_steps
        }
        fn step(
            &self,
            state: &WalkState,
            sampler: &dyn StepSampler,
            rng: &mut dyn RngCore,
        ) -> Transition {
            // Survive a step with probability exp(-steps / tau): the walk
            // "cools" as it lengthens.
            let survive = (-(state.steps_taken() as f64) / self.tau).exp();
            if state.steps_taken() >= self.max_steps || rng.gen::<f64>() >= survive {
                return Transition::Terminate;
            }
            match sampler.sample_neighbor_dyn(state.current(), rng) {
                Some(next) => Transition::Step(next),
                None => Transition::Terminate,
            }
        }
    }

    let client = WalkClient::local(&engine);
    let output = client
        .submit(
            WalkRequest::model(Arc::new(TemperatureWalk {
                tau: 5.0,
                max_steps: 30,
            }))
            .all_vertices()
            .seed(11),
        )
        .expect("request is valid")
        .wait();
    println!(
        "custom temperature model via WalkClient: {} walks, {} steps, mean length {:.2}",
        output.num_walks,
        output.total_steps,
        output.total_steps as f64 / output.num_walks as f64
    );
}

//! Multi-tenant fairness under saturating load: two tenants with 3:1
//! weights push identical walk workloads through `bingo-gateway` against a
//! LiveJournal stand-in served by a bounded-inbox `WalkService`.
//!
//! While both tenants are backlogged, the deficit-round-robin dispatcher
//! must grant them step bandwidth in proportion to their weights: at the
//! moment the heavy tenant finishes its offered load, its share of all
//! completed steps must sit within ±10 percentage points of 75%. No
//! request may be dropped — saturation parks chunks in the tenant queues
//! (bounded, never exceeded) and the AIMD window adapts to the service's
//! inbox occupancy.
//!
//! The final line is a machine-readable JSON summary (per-tenant counts,
//! step shares, queue-wait p50/p99, the AIMD window trace, and the shared
//! telemetry registry's per-stage latency quantiles) that CI greps. The
//! run records into one `Telemetry` handle across the gateway and the
//! service (`BINGO_TELEMETRY=off` opts out), so sampled walker lifecycles
//! stitch the DRR dispatch to the shard-side spans.
//!
//! With `--obs`, the run additionally exposes the whole stack — gateway
//! and service — through the observability plane on an ephemeral loopback
//! port (printed as `obs_addr=`), then fetches its own `/healthz` and
//! `/status` so CI can gate on them in single-process output.
//!
//! ```text
//! cargo run --release --example gateway_fairness [-- --obs]
//! ```

use bingo::gateway::{AimdConfig, TenantId};
use bingo::obs::{ObsConfig, ObsServer};
use bingo::prelude::*;
use bingo::telemetry::json::{JsonArray, JsonObject};
use bingo::telemetry::{names, Tracer};
use rand::RngCore;
use std::io::{Read as IoRead, Write as IoWrite};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimal HTTP/1.0 GET against the exposition server: returns the body.
fn obs_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to obs server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read response to close");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .expect("response has a header/body separator")
}

const SHARDS: usize = 4;
/// Scale divisor for the LiveJournal stand-in (~8k vertices).
const SCALE: u64 = 1_000;
const WALK_LEN: usize = 10;
const REQUESTS_PER_TENANT: usize = 200;
const WALKS_PER_REQUEST: usize = 100;
const HEAVY_WEIGHT: u32 = 3;
const LIGHT_WEIGHT: u32 = 1;
const QUEUE_BOUND: usize = 25_000;

fn main() {
    let obs_enabled = std::env::args().any(|a| a == "--obs");
    let mut rng = Pcg64::seed_from_u64(0x6A7E);
    let graph = bingo::graph::datasets::StandinDataset::LiveJournal.build(SCALE, &mut rng);
    let num_vertices = graph.num_vertices();
    println!(
        "graph: {} vertices, {} edges; tenants: heavy(w={HEAVY_WEIGHT}) vs light(w={LIGHT_WEIGHT}), \
         {REQUESTS_PER_TENANT} requests x {WALKS_PER_REQUEST} walks x {WALK_LEN} steps each",
        graph.num_vertices(),
        graph.num_edges(),
    );

    let telemetry = Telemetry::from_env(0x6A7E, true);
    let service = Arc::new(
        WalkService::build_with_telemetry(
            &graph,
            ServiceConfig {
                num_shards: SHARDS,
                seed: 0x6A7E,
                max_inbox: 64,
                partition: PartitionStrategy::DegreeBalanced,
                ..ServiceConfig::default()
            },
            telemetry.clone(),
        )
        .expect("service builds"),
    );
    let service_for_obs = Arc::clone(&service);
    let gateway = Arc::new(Gateway::new(
        service,
        GatewayConfig {
            chunk_walkers: 32,
            quantum_walkers: 32,
            max_queue_per_tenant: QUEUE_BOUND,
            window: AimdConfig {
                initial: 64,
                min: 32,
                max: 256,
                additive_step: 16,
                decrease_factor: 0.5,
                occupancy_high: 0.75,
            },
            ..GatewayConfig::default()
        },
    ));
    // With --obs, expose the full stack for the duration of the run; the
    // fetched values are printed at the end, after the drain.
    let obs_server = if obs_enabled {
        let server = ObsServer::serve(
            ObsConfig::default(),
            telemetry.clone(),
            Some(service_for_obs),
            Some(Arc::clone(&gateway)),
        )
        .expect("bind an ephemeral loopback port");
        println!("obs_addr={}", server.local_addr());
        Some(server)
    } else {
        None
    };

    // Saturating offered load: both tenants enqueue their full workload up
    // front (interleaved, so neither gets a head start), far more than the
    // in-flight window admits at once — the DRR dispatcher decides who
    // drains.
    let offered_walks = (REQUESTS_PER_TENANT * WALKS_PER_REQUEST) as u64;
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: WALK_LEN,
    });
    let mut start_rng = Pcg64::seed_from_u64(0xFA1);
    let mut random_starts = |n: usize| -> Vec<VertexId> {
        (0..n)
            .map(|_| (start_rng.next_u64() % num_vertices as u64) as VertexId)
            .collect()
    };
    let t0 = Instant::now();
    let mut heavy_tickets = Vec::new();
    let mut light_tickets = Vec::new();
    for _ in 0..REQUESTS_PER_TENANT {
        heavy_tickets.push(
            gateway
                .submit(
                    WalkRequest::spec(spec)
                        .starts(random_starts(WALKS_PER_REQUEST))
                        .tenant("heavy")
                        .weight(HEAVY_WEIGHT),
                )
                .expect("queued, not rejected"),
        );
        light_tickets.push(
            gateway
                .submit(
                    WalkRequest::spec(spec)
                        .starts(random_starts(WALKS_PER_REQUEST))
                        .tenant("light")
                        .weight(LIGHT_WEIGHT),
                )
                .expect("queued, not rejected"),
        );
    }

    // Fairness is measured while both tenants contend: sample the step
    // counters at the moment the heavy tenant's offered load completes.
    let heavy_id = TenantId::new("heavy");
    let light_id = TenantId::new("light");
    let (heavy_steps_at_cut, light_steps_at_cut) = loop {
        let stats = gateway.stats();
        let heavy = stats.tenant(&heavy_id).map_or(0, |t| t.completed_walks);
        if heavy >= offered_walks {
            break (
                stats.tenant(&heavy_id).map_or(0, |t| t.completed_steps),
                stats.tenant(&light_id).map_or(0, |t| t.completed_steps),
            );
        }
        std::thread::sleep(Duration::from_micros(200));
    };
    let cut_total = (heavy_steps_at_cut + light_steps_at_cut).max(1);
    let heavy_share = heavy_steps_at_cut as f64 / cut_total as f64;
    let light_share = light_steps_at_cut as f64 / cut_total as f64;

    // Drain everything: every submission must complete with all its walks
    // (queued under backpressure, never dropped).
    let mut total_paths = 0usize;
    for ticket in heavy_tickets.into_iter().chain(light_tickets) {
        let results = gateway.wait(ticket).expect("no submission fails");
        // The stand-in has dead-end vertices, so walks may legitimately
        // stop early — but every submitted walk must come back, bounded by
        // the requested length.
        assert!(
            results.paths.iter().all(|p| p.len() <= WALK_LEN + 1),
            "no walk exceeds the requested length"
        );
        total_paths += results.paths.len();
    }
    let elapsed = t0.elapsed();
    // Scrape ourselves after the drain: every tenant's completions are in
    // the registry, and a healthy stack must report exactly that.
    if let Some(server) = &obs_server {
        let health = obs_get(server.local_addr(), "/healthz");
        println!("obs_healthz={}", health.trim());
        let status = obs_get(server.local_addr(), "/status");
        println!("obs_status={}", status.trim());
        assert_eq!(health.trim(), "ok", "/healthz must report healthy");
        assert!(
            status.contains("\"per_tenant\":["),
            "/status must carry the gateway tenant table"
        );
        server.shutdown();
    }
    let stats = gateway.stats();
    println!("\nper-tenant gateway stats:\n{}", stats.render());

    let heavy_t = stats.tenant(&heavy_id).expect("heavy tenant exists");
    let light_t = stats.tenant(&light_id).expect("light tenant exists");
    let expected_share = HEAVY_WEIGHT as f64 / (HEAVY_WEIGHT + LIGHT_WEIGHT) as f64;
    let fairness_ok = (heavy_share - expected_share).abs() <= 0.10;
    let dropped = heavy_t.failed_walks
        + light_t.failed_walks
        + (heavy_t.submitted_walks - heavy_t.completed_walks)
        + (light_t.submitted_walks - light_t.completed_walks);
    let overloaded = heavy_t.rejected_overloaded + light_t.rejected_overloaded;

    println!(
        "fairness cut at heavy completion: heavy {heavy_steps_at_cut} steps ({:.1}%), \
         light {light_steps_at_cut} steps ({:.1}%), target {:.1}% -> {}",
        100.0 * heavy_share,
        100.0 * light_share,
        100.0 * expected_share,
        if fairness_ok { "PASS" } else { "FAIL" },
    );
    println!(
        "drained {} walks in {:.3}s; window {} (seen {}..{}), {} trace entries, \
         {} saturation requeues",
        total_paths,
        elapsed.as_secs_f64(),
        stats.window,
        stats.window_min_seen,
        stats.window_max_seen,
        stats.window_trace.len(),
        heavy_t.saturated_requeues + light_t.saturated_requeues,
    );

    // Telemetry view of the same run: per-stage latency quantiles from the
    // registry shared by the gateway and the service, plus the sampled
    // walker lifecycles that stitch across both layers.
    let telemetry_json = if telemetry.is_detailed() {
        bingo::service::record_pool_profile(&telemetry);
        let snap = telemetry.snapshot();
        let mut latencies = JsonObject::new();
        for (key, name) in [
            ("queue_wait", names::GATEWAY_TENANT_WAIT_NS),
            ("dispatch", names::GATEWAY_DISPATCH_NS),
            ("step_batch", names::SERVICE_SHARD_STEP_BATCH_NS),
            ("forward_hop", names::SERVICE_FORWARD_HOP_NS),
            ("collect", names::SERVICE_COLLECT_NS),
            ("ticket", names::SERVICE_TICKET_LATENCY_NS),
        ] {
            if snap.histogram_across_labels(name).count() > 0 {
                latencies.field_raw(key, &snap.latency_json(name));
            }
        }
        let lifecycles = telemetry
            .tracer()
            .map(Tracer::complete_lifecycle_lines)
            .unwrap_or_default();
        let mut tel = JsonObject::new();
        tel.field_raw("latency_ns_p50_p99", &latencies.finish())
            .field_num("lifecycles_complete", lifecycles.len());
        let dispatched = lifecycles.iter().find(|l| l.contains("dispatch("));
        if let Some(line) = dispatched.or_else(|| lifecycles.first()) {
            tel.field_str("sample_lifecycle", line);
        }
        println!(
            "sampled lifecycles: {} complete; example: {}",
            lifecycles.len(),
            dispatched
                .or_else(|| lifecycles.first())
                .map_or("<none>", String::as_str),
        );
        assert!(
            dispatched.is_some(),
            "at least one sampled lifecycle must stitch the gateway dispatch \
             to the service spans"
        );
        Some(tel.finish())
    } else {
        None
    };

    // Machine-readable summary (grepped by CI), built on the shared
    // dependency-free JSON writer.
    let tenant_json = |t: &bingo::gateway::TenantStatsSnapshot, share: f64| {
        let mut obj = JsonObject::new();
        obj.field_str("tenant", t.tenant.as_str())
            .field_num("weight", t.weight)
            .field_num("submitted_walks", t.submitted_walks)
            .field_num("completed_walks", t.completed_walks)
            .field_num("completed_steps", t.completed_steps)
            .field_num("share_at_cut", format!("{share:.4}"))
            .field_num("peak_queued", t.peak_queued_walkers)
            .field_num("saturated_requeues", t.saturated_requeues)
            .field_num("rejected_overloaded", t.rejected_overloaded)
            .field_num(
                "wait_p50_ms",
                format!("{:.3}", t.wait_p50.as_secs_f64() * 1e3),
            )
            .field_num(
                "wait_p99_ms",
                format!("{:.3}", t.wait_p99.as_secs_f64() * 1e3),
            );
        obj.finish()
    };
    let mut tenants = JsonArray::new();
    tenants
        .push_raw(&tenant_json(heavy_t, heavy_share))
        .push_raw(&tenant_json(light_t, light_share));
    // The full trace can run to hundreds of adjustments; print a prefix
    // (the sawtooth shape shows within a few cycles) plus the total count.
    let mut trace = JsonArray::new();
    for s in stats.window_trace.iter().take(48) {
        trace.push_raw(&format!("[{:.1},{}]", s.at.as_secs_f64() * 1e3, s.window));
    }
    let mut summary = JsonObject::new();
    summary
        .field_str("experiment", "gateway_fairness")
        .field_raw("tenants", &tenants.finish())
        .field_num("heavy_share", format!("{heavy_share:.4}"))
        .field_num("light_share", format!("{light_share:.4}"))
        .field_num("expected_share", format!("{expected_share:.4}"))
        .field_bool("fairness_ok", fairness_ok)
        .field_num("dropped", dropped)
        .field_num("overloaded", overloaded)
        .field_num("queue_bound", QUEUE_BOUND)
        .field_num("window_min", stats.window_min_seen)
        .field_num("window_max", stats.window_max_seen)
        .field_num("window_final", stats.window)
        .field_num("aimd_adjustments", stats.window_trace.len())
        .field_raw("aimd_trace_ms_window", &trace.finish())
        .field_num("elapsed_s", format!("{:.3}", elapsed.as_secs_f64()));
    if let Some(tel) = &telemetry_json {
        summary.field_raw("telemetry", tel);
    }
    println!("{}", summary.finish());

    // Hard acceptance criteria.
    assert_eq!(
        total_paths as u64,
        2 * offered_walks,
        "every offered walk completed"
    );
    assert_eq!(dropped, 0, "no request dropped");
    assert_eq!(overloaded, 0, "queues absorbed the load without rejection");
    assert!(
        heavy_t.peak_queued_walkers <= QUEUE_BOUND && light_t.peak_queued_walkers <= QUEUE_BOUND,
        "per-tenant queue depth stayed under the configured bound"
    );
    assert!(
        fairness_ok,
        "heavy tenant's completed-step share {:.3} must be within 0.10 of {expected_share:.3}",
        heavy_share
    );
    assert!(
        stats.window_min_seen < stats.window_max_seen,
        "the AIMD controller adapted the window at least once"
    );
    println!("ok");
}

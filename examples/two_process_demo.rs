//! The distribution boundary, made real across two OS processes.
//!
//! The parent runs a sharded [`WalkService`] in
//! [`TransportMode::Serialized`]: every cross-shard forward is encoded
//! into the versioned wire frame of `bingo::walks::wire` and handed to a
//! [`ShardTransport`] that writes it, length-prefixed, down a loopback
//! `TcpStream`. The peer is a *separate process* (this same binary,
//! re-executed with `--child <port>`) that plays the remote shard host at
//! the byte level: it reads each frame off the socket, decodes it
//! (proving the frame is self-contained), re-encodes it (proving the
//! format is canonical — the echo must be byte-identical), and sends it
//! back. Both sides count raw payload bytes.
//!
//! Three claims are proven and printed for CI to gate on:
//!
//! 1. **Accounted bytes are wire bytes.** The payload bytes the parent
//!    wrote/read on the socket — and independently, the bytes the child
//!    counted — equal the service's `transport.bytes_sent` /
//!    `transport.bytes_recv` counters exactly.
//! 2. **Serialization is invisible to sampling.** The serialized run's
//!    walk paths are bit-identical to a single-process in-process run
//!    with the same seed, so the chi-square statistic over visit counts
//!    is unchanged (and both pass the 99.9% uniformity gate — the demo
//!    graph is vertex-transitive).
//! 3. **Scoped invalidation earns its keep.** Under an update-heavy
//!    phase, scoped context invalidation keeps snapshot caches warm:
//!    both the sender-side encode-reuse hit rate and the receiver-side
//!    handle hit rate beat the wholesale-flush baseline.
//!
//! ```text
//! cargo run --release --example two_process_demo
//! ```

use bingo::prelude::*;
use bingo::sampling::stats::{chi_square_critical_999, chi_square_uniformity};
use bingo::service::{ShardTransport, TransportMode};
use bingo::telemetry::Telemetry;
use bingo::walks::wire;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NUM_VERTICES: usize = 64;
const SHARDS: usize = 4;
const WALK_LEN: usize = 16;
const WAVES: usize = 3;
const UPDATE_ROUNDS: usize = 8;

/// Shutdown sentinel in the length-prefix channel: the child answers
/// with its two byte counters and exits.
const BYE: u32 = u32::MAX;

// ---------------------------------------------------------------------
// The carrier: a length-prefixed loopback TCP request/response channel.
// ---------------------------------------------------------------------

/// Writes each frame as `[u32 le length][payload]`, reads the echoed
/// frame the same way, and counts payload bytes in both directions.
/// Shard tasks call `carry` concurrently; the mutex serializes the
/// request/response pairs on the single stream.
struct TcpTransport {
    stream: Mutex<TcpStream>,
    sent: AtomicU64,
    recv: AtomicU64,
}

impl ShardTransport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp-loopback"
    }

    fn carry(&self, _to: usize, frame: Vec<u8>) -> io::Result<Vec<u8>> {
        let mut s = self.stream.lock().expect("transport mutex");
        s.write_all(&(frame.len() as u32).to_le_bytes())?;
        s.write_all(&frame)?;
        self.sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
        let mut len4 = [0u8; 4];
        s.read_exact(&mut len4)?;
        let n = u32::from_le_bytes(len4) as usize;
        let mut back = vec![0u8; n];
        s.read_exact(&mut back)?;
        self.recv.fetch_add(n as u64, Ordering::Relaxed);
        Ok(back)
    }
}

// ---------------------------------------------------------------------
// The child: a frame-bouncing remote shard host.
// ---------------------------------------------------------------------

/// Decode every incoming frame, re-encode it, assert the bytes are
/// identical (the wire format is canonical), echo it back, and on the
/// shutdown sentinel report how many payload bytes crossed each way.
fn run_child(port: u16) -> ! {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("child: connect to parent");
    let (mut recv, mut sent) = (0u64, 0u64);
    loop {
        let mut len4 = [0u8; 4];
        stream.read_exact(&mut len4).expect("child: read length");
        let n = u32::from_le_bytes(len4);
        if n == BYE {
            stream
                .write_all(&recv.to_le_bytes())
                .expect("child: report");
            stream
                .write_all(&sent.to_le_bytes())
                .expect("child: report");
            stream.flush().expect("child: flush report");
            std::process::exit(0);
        }
        let mut frame = vec![0u8; n as usize];
        stream.read_exact(&mut frame).expect("child: read frame");
        recv += frame.len() as u64;
        let (decoded, used) =
            wire::decode_walker(&frame).expect("child: every frame must be self-contained");
        assert_eq!(used, frame.len(), "child: no trailing bytes in a frame");
        let mut echo = Vec::with_capacity(frame.len());
        wire::encode_walker(&decoded, &mut echo);
        assert_eq!(echo, frame, "child: re-encode must be byte-identical");
        stream
            .write_all(&(echo.len() as u32).to_le_bytes())
            .expect("child: write length");
        stream.write_all(&echo).expect("child: write frame");
        sent += echo.len() as u64;
    }
}

// ---------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------

/// A vertex-transitive graph (every edge is a fixed shift mod n), so the
/// stationary visit distribution is uniform and chi-square can gate it.
/// Out-degree 4 makes exact membership snapshots 25 bytes — larger than
/// the 16-byte handle, so negotiation engages.
fn demo_graph() -> DynamicGraph {
    let n = NUM_VERTICES as u32;
    let mut g = DynamicGraph::new(NUM_VERTICES);
    for v in 0..n {
        for (shift, bias) in [(1, 3), (2, 2), (5, 2), (9, 1)] {
            g.insert_edge(v, (v + shift) % n, Bias::from_int(bias))
                .unwrap();
        }
    }
    g
}

fn node2vec() -> WalkSpec {
    WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: WALK_LEN,
        p: 0.5,
        q: 2.0,
    })
}

fn config(transport: TransportMode) -> ServiceConfig {
    ServiceConfig {
        num_shards: SHARDS,
        transport,
        ..ServiceConfig::default()
    }
}

/// Submit `WAVES` identical node2vec waves from every vertex and return
/// the concatenated paths (wave order preserved) plus the final stats.
/// Repeat waves in one epoch are what make handle negotiation hit: the
/// first wave seeds every receiver cache, later waves ship 16-byte
/// handles.
fn run_waves(service: &WalkService) -> Vec<Vec<VertexId>> {
    let starts: Vec<VertexId> = (0..NUM_VERTICES as VertexId).collect();
    let mut paths = Vec::new();
    for _ in 0..WAVES {
        let results = service.wait(service.submit(node2vec(), &starts).unwrap());
        paths.extend(results.paths);
    }
    paths
}

fn visit_counts(paths: &[Vec<VertexId>]) -> Vec<usize> {
    let mut counts = vec![0usize; NUM_VERTICES];
    for path in paths {
        for &v in path {
            counts[v as usize] += 1;
        }
    }
    counts
}

/// The update-heavy phase for claim 3: alternate a walk wave with a
/// structural batch touching one vertex per shard, under scoped or
/// wholesale invalidation, and report (sender encode-reuse hit rate,
/// receiver handle hit rate).
fn run_update_phase(scoped: bool) -> (f64, f64) {
    let graph = demo_graph();
    let mut cfg = config(TransportMode::InProcess);
    cfg.engine.scoped_context_invalidation = scoped;
    let service = WalkService::build(&graph, cfg).unwrap();
    let starts: Vec<VertexId> = (0..NUM_VERTICES as VertexId).collect();
    let span = NUM_VERTICES as u32 / SHARDS as u32;
    for round in 0..UPDATE_ROUNDS as u32 {
        service.wait(service.submit(node2vec(), &starts).unwrap());
        // One touched vertex in each shard's uniform range: wholesale
        // mode flushes every shard's caches, scoped mode drops exactly
        // these four vertices.
        let events: Vec<UpdateEvent> = (0..SHARDS as u32)
            .map(|shard| {
                let src = shard * span + round;
                UpdateEvent::Insert {
                    src,
                    dst: (src + 17 + round) % NUM_VERTICES as u32,
                    bias: Bias::from_int(1),
                }
            })
            .collect();
        let receipt = service.ingest(&UpdateBatch::new(events));
        service.sync(receipt);
    }
    let stats = service.shutdown();
    (stats.context_cache_hit_rate(), stats.handle_hit_rate())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--child" {
        run_child(args[2].parse().expect("child port argument"));
    }

    let graph = demo_graph();

    // ---- Claim 2 baseline: single-process, in-process forwarding. ----
    let service = WalkService::build(&graph, config(TransportMode::InProcess)).unwrap();
    let in_paths = run_waves(&service);
    let in_stats = service.shutdown();
    assert!(in_stats.total_forwards() > 0, "walks must cross shards");

    // ---- Serialized run: every forward crosses a real process boundary. ----
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let port = listener.local_addr().expect("listener addr").port();
    let exe = std::env::current_exe().expect("own binary path");
    let mut child = Command::new(exe)
        .arg("--child")
        .arg(port.to_string())
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child process");
    let (stream, _) = listener.accept().expect("child connects back");
    let transport = Arc::new(TcpTransport {
        stream: Mutex::new(stream),
        sent: AtomicU64::new(0),
        recv: AtomicU64::new(0),
    });
    let service = WalkService::build_with_transport(
        &graph,
        config(TransportMode::Serialized),
        Telemetry::disabled(),
        transport.clone(),
    )
    .unwrap();
    let ser_paths = run_waves(&service);
    let ser_stats = service.shutdown();

    // Shut the child down and collect its independent byte counts.
    let (child_recv, child_sent) = {
        let mut s = transport.stream.lock().expect("transport mutex");
        s.write_all(&BYE.to_le_bytes()).expect("send shutdown");
        let mut report = [0u8; 16];
        s.read_exact(&mut report).expect("read child report");
        (
            u64::from_le_bytes(report[..8].try_into().unwrap()),
            u64::from_le_bytes(report[8..].try_into().unwrap()),
        )
    };
    let status = child.wait().expect("child exit status");
    assert!(status.success(), "child must exit cleanly: {status:?}");

    // ---- Claim 1: accounted bytes are wire bytes, to the byte. ----
    let socket_sent = transport.sent.load(Ordering::Relaxed);
    let socket_recv = transport.recv.load(Ordering::Relaxed);
    let accounted_sent = ser_stats.total_transport_bytes_sent();
    let accounted_recv = ser_stats.total_transport_bytes_recv();
    assert_eq!(accounted_sent, socket_sent, "sent counter vs socket");
    assert_eq!(accounted_recv, socket_recv, "recv counter vs socket");
    assert_eq!(child_recv, socket_sent, "child saw every sent byte");
    assert_eq!(child_sent, socket_recv, "parent saw every echoed byte");
    assert!(accounted_sent > 0, "serialized forwards shipped frames");
    println!(
        "transport_bytes sent={accounted_sent} recv={accounted_recv} \
         child_recv={child_recv} child_sent={child_sent}"
    );
    println!("transport_bytes_match=true");

    // ---- Claim 2: serialization is invisible to sampling. ----
    assert_eq!(
        in_paths, ser_paths,
        "serialized paths must be bit-identical to in-process paths"
    );
    println!("paths_identical=true");
    let chi_in = chi_square_uniformity(&visit_counts(&in_paths));
    let chi_ser = chi_square_uniformity(&visit_counts(&ser_paths));
    let critical = chi_square_critical_999(NUM_VERTICES - 1);
    assert!(
        (chi_in - chi_ser).abs() < 1e-9,
        "identical paths, identical statistic"
    );
    assert!(chi_ser < critical, "uniformity holds over the wire");
    println!(
        "chi_square_inprocess={chi_in:.3} chi_square_serialized={chi_ser:.3} \
         critical_999={critical:.3}"
    );

    // Handle negotiation across the wire: repeat waves hit warm caches.
    assert!(
        ser_stats.total_handle_offers() > 0,
        "snapshots beat 16 bytes"
    );
    assert!(
        ser_stats.total_handle_hits() > 0,
        "repeat waves hit handles"
    );
    println!(
        "handle_offers={} handle_hits={} body_requests={} handle_hit_rate={:.4}",
        ser_stats.total_handle_offers(),
        ser_stats.total_handle_hits(),
        ser_stats.total_body_requests(),
        ser_stats.handle_hit_rate(),
    );

    // ---- Claim 3: scoped invalidation keeps caches warm under churn. ----
    let (scoped_reuse, scoped_handles) = run_update_phase(true);
    let (wholesale_reuse, wholesale_handles) = run_update_phase(false);
    assert!(
        scoped_reuse > wholesale_reuse,
        "scoped sender reuse {scoped_reuse:.4} must beat wholesale {wholesale_reuse:.4}"
    );
    assert!(
        scoped_handles > wholesale_handles,
        "scoped handle hits {scoped_handles:.4} must beat wholesale {wholesale_handles:.4}"
    );
    println!(
        "scoped_cache_hit_rate={scoped_reuse:.4} wholesale_cache_hit_rate={wholesale_reuse:.4} \
         scoped_handle_hit_rate={scoped_handles:.4} wholesale_handle_hit_rate={wholesale_handles:.4}"
    );
    println!("scoped_beats_wholesale=true");
}

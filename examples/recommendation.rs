//! Product recommendation with daily batched updates.
//!
//! The second deployment style the paper targets (§1, §3): systems such as
//! product or friend recommendation ingest a large batch of updates once per
//! day and then regenerate node embeddings from random-walk corpora
//! (DeepWalk / node2vec sentences fed to SkipGram).
//!
//! This example simulates three "days":
//!
//! 1. A user–product co-interaction graph with degree-derived biases.
//! 2. Each day, a 5 000-event batch of interactions is ingested with the
//!    massively-parallel batched path (§5.2) — and for comparison, the same
//!    batch is also replayed in streaming mode to show the throughput gap
//!    the paper reports in Figure 12.
//! 3. A node2vec corpus is regenerated and summarised (the downstream
//!    SkipGram training is out of scope for the engine).
//!
//! ```text
//! cargo run --release --example recommendation
//! ```

use bingo::prelude::*;
use bingo::walks::IngestMode;
use bingo_walks::DynamicWalkSystem;
use std::time::Instant;

const DAYS: usize = 3;
const DAILY_UPDATES: usize = 5_000;

fn main() {
    let mut rng = Pcg64::seed_from_u64(7_031_999);

    // 1. Co-interaction graph: R-MAT skew mimics the popularity skew of a
    //    catalogue; biases follow destination degree (the paper's default).
    let generator = GraphGenerator::RMat {
        scale: 13,
        avg_degree: 12,
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };
    let mut graph = generator.generate(BiasDistribution::DegreeBased, &mut rng);
    println!(
        "interaction graph: {} nodes, {} interactions",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Pre-generate the daily update batches using the paper's A/B protocol.
    let stream = UpdateStreamBuilder::new(
        bingo::graph::updates::UpdateKind::Mixed,
        DAYS * DAILY_UPDATES,
    )
    .build(&mut graph, DAYS * DAILY_UPDATES, &mut rng);
    let daily_batches = stream.chunks(DAILY_UPDATES);

    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
    let node2vec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: 40,
        p: 0.5,
        q: 2.0,
    });

    for (day, batch) in daily_batches.iter().enumerate() {
        // 2. Nightly ingestion: batched path vs streaming replay.
        let mut streaming_replica = engine.clone();
        let streaming_stats = streaming_replica.ingest(batch, IngestMode::Streaming);

        let start = Instant::now();
        let outcome = engine.apply_batch(batch);
        let batched_time = start.elapsed();

        let streaming_ups = streaming_stats.applied as f64 / streaming_stats.elapsed.as_secs_f64();
        let batched_ups = (outcome.inserted + outcome.deleted) as f64 / batched_time.as_secs_f64();
        println!(
            "\nday {}: ingested {} updates ({} inserts, {} deletes) touching {} nodes",
            day + 1,
            batch.len(),
            outcome.inserted,
            outcome.deleted,
            outcome.touched_vertices
        );
        println!(
            "  batched ingestion: {:>10.0} updates/s   streaming replay: {:>10.0} updates/s   (batched is {:.1}x faster)",
            batched_ups,
            streaming_ups,
            batched_ups / streaming_ups.max(1e-9)
        );

        // 3. Regenerate the walk corpus for embedding training.
        let start = Instant::now();
        let corpus = WalkEngine::new(9_000 + day as u64).run_all_vertices(&engine, &node2vec);
        let elapsed = start.elapsed();
        println!(
            "  regenerated corpus: {} walks, {} tokens in {:.2}s ({:.0} steps/s)",
            corpus.num_walks(),
            corpus.total_steps() + corpus.num_walks(),
            elapsed.as_secs_f64(),
            corpus.total_steps() as f64 / elapsed.as_secs_f64()
        );
        let counts = corpus.visit_counts(engine.num_vertices());
        let most_visited = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(v, &c)| (v, c))
            .expect("non-empty graph");
        println!(
            "  most central node today: {} ({} visits)",
            most_visited.0, most_visited.1
        );
    }

    println!(
        "\nfinal graph: {} interactions, sampling structures use {:.2} MiB",
        engine.num_edges(),
        engine.memory_report().sampling_bytes() as f64 / (1024.0 * 1024.0)
    );
}

//! GNN mini-batch sampling on a dynamic graph.
//!
//! The paper's first motivating use case (§1): graph-learning systems build
//! mini-batches by sampling subsets of vertices and edges with random walks
//! and fan-out neighbor sampling, and sampling dominates end-to-end training
//! time (96.2 % according to the gSampler measurements the paper cites).
//! When the underlying graph changes, the sampler must reflect the change in
//! the very next batch.
//!
//! This example trains nothing — it shows the sampling side: GraphSAGE-style
//! fan-out mini-batches drawn from a Bingo engine while the graph keeps
//! receiving streaming updates between batches.
//!
//! ```text
//! cargo run --release --example gnn_minibatch
//! ```

use bingo::prelude::*;
use bingo::walks::analytics::sample_mini_batch;
use rand::Rng;

const EPOCHS: usize = 3;
const BATCHES_PER_EPOCH: usize = 5;
const SEEDS_PER_BATCH: usize = 64;
const FANOUTS: [usize; 2] = [10, 5];
const UPDATES_BETWEEN_BATCHES: usize = 200;

fn main() {
    let mut rng = Pcg64::seed_from_u64(0x6E4);

    // A citation-network-shaped graph with degree-derived biases.
    let graph = GraphGenerator::RMat {
        scale: 12,
        avg_degree: 10,
        a: 0.52,
        b: 0.21,
        c: 0.21,
    }
    .generate(BiasDistribution::DegreeBased, &mut rng);
    let num_vertices = graph.num_vertices();
    println!(
        "training graph: {} vertices, {} edges; fan-outs {:?}",
        num_vertices,
        graph.num_edges(),
        FANOUTS
    );

    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");

    for epoch in 1..=EPOCHS {
        let mut epoch_vertices = 0usize;
        let mut epoch_edges = 0usize;
        for batch_idx in 0..BATCHES_PER_EPOCH {
            // Streaming updates arrive between batches (new citations,
            // retracted papers) and must be visible to the next batch.
            let mut applied = 0;
            for _ in 0..UPDATES_BETWEEN_BATCHES {
                let src = rng.gen_range(0..num_vertices) as VertexId;
                let dst = rng.gen_range(0..num_vertices) as VertexId;
                if src == dst {
                    continue;
                }
                if rng.gen::<f64>() < 0.8 {
                    if engine
                        .insert_edge(src, dst, Bias::from_int(rng.gen_range(1..16)))
                        .is_ok()
                    {
                        applied += 1;
                    }
                } else if engine.delete_edge(src, dst).is_ok() {
                    applied += 1;
                }
            }

            // Sample the mini-batch: biased fan-out sampling around a fresh
            // set of seed vertices.
            let seeds: Vec<VertexId> = (0..SEEDS_PER_BATCH)
                .map(|_| rng.gen_range(0..num_vertices) as VertexId)
                .collect();
            let batch = sample_mini_batch(&engine, &seeds, &FANOUTS, &mut rng);
            epoch_vertices += batch.num_vertices();
            epoch_edges += batch.num_edges();
            if batch_idx == 0 {
                println!(
                    "  epoch {epoch}, batch 1: {} updates ingested, sampled {} vertices / {} edges",
                    applied,
                    batch.num_vertices(),
                    batch.num_edges()
                );
            }
        }
        println!(
            "epoch {epoch}: {} batches, avg {} vertices and {} edges per batch (graph now {} edges)",
            BATCHES_PER_EPOCH,
            epoch_vertices / BATCHES_PER_EPOCH,
            epoch_edges / BATCHES_PER_EPOCH,
            engine.num_edges()
        );
    }

    println!(
        "\nsampling structures after training: {:.2} MiB",
        engine.memory_report().sampling_bytes() as f64 / (1024.0 * 1024.0)
    );
}

//! Fraud detection on a streaming transaction graph.
//!
//! The paper motivates dynamic random walks with fraud detection on
//! e-commerce platforms (§1): the transaction graph changes constantly, and
//! the walk-based features must reflect every update immediately, otherwise
//! "malicious users could commit a series of illicit activities" between
//! snapshot rebuilds.
//!
//! This example simulates that scenario end to end:
//!
//! 1. A synthetic account-to-account transaction graph (power-law degrees,
//!    transaction amounts as biases).
//! 2. A stream of new transactions (edge insertions, amount updates) and
//!    account closures (deletions) ingested one event at a time.
//! 3. After every burst of updates, personalized-PageRank walks from a
//!    watch-listed account estimate which counterparties are most exposed
//!    to it right now — the visit frequencies are the fraud-risk feature.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use bingo::prelude::*;
use bingo::walks::PprConfig;
use rand::Rng;

const ACCOUNTS: usize = 2_000;
const INITIAL_TRANSACTIONS: usize = 12_000;
const BURSTS: usize = 5;
const UPDATES_PER_BURST: usize = 500;

fn main() {
    let mut rng = Pcg64::seed_from_u64(20_260_614);

    // 1. Initial transaction graph: preferential attachment so a few
    //    accounts (merchants, mule hubs) concentrate most of the volume.
    let generator = GraphGenerator::PreferentialAttachment {
        vertices: ACCOUNTS,
        edges_per_vertex: INITIAL_TRANSACTIONS / ACCOUNTS,
    };
    // Transaction amounts in the 1..1000 range, power-law distributed.
    let amounts = BiasDistribution::PowerLaw {
        alpha: 1.8,
        max: 1000,
    };
    let graph = generator.generate(amounts, &mut rng);
    println!(
        "transaction graph: {} accounts, {} transactions",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
    let watchlisted: VertexId = 0; // the account under investigation
    let ppr = WalkSpec::Ppr(PprConfig {
        stop_probability: 1.0 / 40.0,
        max_length: 400,
    });

    for burst in 1..=BURSTS {
        // 2. Stream a burst of live updates: 70% new transactions, 20%
        //    amount corrections, 10% account-relationship removals.
        let mut inserted = 0;
        let mut updated = 0;
        let mut deleted = 0;
        for _ in 0..UPDATES_PER_BURST {
            let src = rng.gen_range(0..ACCOUNTS) as VertexId;
            let dst = rng.gen_range(0..ACCOUNTS) as VertexId;
            if src == dst {
                continue;
            }
            let roll: f64 = rng.gen();
            if roll < 0.7 {
                let amount = Bias::from_int(rng.gen_range(1..1000));
                if engine.insert_edge(src, dst, amount).is_ok() {
                    inserted += 1;
                }
            } else if roll < 0.9 {
                let amount = Bias::from_int(rng.gen_range(1..1000));
                if engine.update_bias(src, dst, amount).is_ok() {
                    updated += 1;
                } else if engine.insert_edge(src, dst, amount).is_ok() {
                    inserted += 1;
                }
            } else if engine.delete_edge(src, dst).is_ok() {
                deleted += 1;
            }
        }

        // 3. Immediately refresh the risk feature: 512 PPR walkers from the
        //    watch-listed account, visit frequency = exposure score.
        let starts = vec![watchlisted; 512];
        let walks = WalkEngine::new(1000 + burst as u64).run(&engine, &ppr, &starts);
        let freqs = walks.visit_frequencies(engine.num_vertices());
        let mut ranked: Vec<(usize, f64)> = freqs
            .iter()
            .copied()
            .enumerate()
            .filter(|&(v, f)| v as VertexId != watchlisted && f > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite frequencies"));

        println!(
            "\nburst {burst}: +{inserted} transactions, {updated} corrections, -{deleted} removals \
             (graph now has {} transactions)",
            engine.num_edges()
        );
        println!("  top-5 accounts most exposed to account {watchlisted}:");
        for (account, score) in ranked.iter().take(5) {
            println!("    account {account:>5}  exposure {score:.4}");
        }
    }

    let report = engine.memory_report();
    println!(
        "\nsampling structures: {:.2} MiB across {} radix groups (dense/regular/sparse/one-element = {:?})",
        report.sampling_bytes() as f64 / (1024.0 * 1024.0),
        report.group_counts.iter().sum::<usize>(),
        report.group_counts
    );
}

//! Sharded walk service under load: ≥4 shards serve concurrent walk waves
//! while a stream of ≥10k edge insert/delete/reweight events is ingested,
//! then the final sampling distribution is validated with a chi-square
//! test against the fully-updated graph and per-shard `ServiceStats` are
//! printed.
//!
//! ```text
//! cargo run --release --example service_throughput
//! ```

use bingo::prelude::*;
use bingo::sampling::stats::{chi_square, chi_square_critical_999};
use bingo::service::ServiceConfig;
use bingo_graph::updates::UpdateKind;
use std::collections::BTreeMap;

const SHARDS: usize = 4;
const TOTAL_EVENTS: usize = 12_000;
const BATCH_SIZE: usize = 600;
const WALK_LEN: usize = 20;

fn main() {
    // A scaled-down LiveJournal stand-in plus a mixed update stream.
    let mut rng = Pcg64::seed_from_u64(0x5E71CE);
    let mut graph = bingo::graph::datasets::StandinDataset::LiveJournal.build(1_000, &mut rng);
    let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, TOTAL_EVENTS).build(
        &mut graph,
        TOTAL_EVENTS,
        &mut rng,
    );
    let batches = stream.chunks(BATCH_SIZE);
    println!(
        "graph: {} vertices, {} edges; update stream: {} events in {} batches",
        graph.num_vertices(),
        graph.num_edges(),
        stream.len(),
        batches.len()
    );

    // Serve walks from SHARDS shards while the stream is ingested.
    let service = WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: SHARDS,
            seed: 0x7417,
            ..ServiceConfig::default()
        },
    )
    .expect("service builds");
    let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: WALK_LEN,
    });

    let t0 = std::time::Instant::now();
    let mut tickets = vec![service.submit(spec, &starts).expect("submit")];
    let mut last_receipt = None;
    for batch in &batches {
        last_receipt = Some(service.ingest(batch));
        tickets.push(service.submit(spec, &starts).expect("submit"));
    }
    let waves: Vec<TicketResults> = tickets.into_iter().map(|t| service.wait(t)).collect();
    let elapsed = t0.elapsed();
    service.sync(last_receipt.expect("at least one batch"));

    let total_steps: usize = waves.iter().map(TicketResults::total_steps).sum();
    let total_walks: usize = waves.iter().map(|w| w.paths.len()).sum();
    println!(
        "\nserved {} walks ({} steps) across {} waves while ingesting {} events: {:.3}s ({:.0} ksteps/s)",
        total_walks,
        total_steps,
        waves.len(),
        stream.len(),
        elapsed.as_secs_f64(),
        total_steps as f64 / elapsed.as_secs_f64() / 1e3,
    );

    // Validate the post-update sampling distribution: mirror the stream
    // onto the initial graph, pick the busiest vertex, and chi-square the
    // service's transitions against the mirrored edge biases.
    let mut mirror = graph.clone();
    mirror.apply_batch(&stream);
    let v = (0..mirror.num_vertices() as VertexId)
        .max_by_key(|&v| mirror.degree(v))
        .expect("non-empty graph");
    let mut expected: BTreeMap<VertexId, f64> = BTreeMap::new();
    for e in mirror.neighbors(v).expect("vertex in range").edges() {
        *expected.entry(e.dst).or_insert(0.0) += e.bias.value();
    }
    let total_bias: f64 = expected.values().sum();
    let probs: Vec<f64> = expected.values().map(|w| w / total_bias).collect();

    let trials = 60_000;
    let ticket = service
        .submit(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 1 }),
            &vec![v; trials],
        )
        .expect("submit");
    let results = service.wait(ticket);
    let mut counts: BTreeMap<VertexId, usize> = expected.keys().map(|&dst| (dst, 0)).collect();
    for path in &results.paths {
        *counts.get_mut(&path[1]).expect("sampled an alive edge") += 1;
    }
    let observed: Vec<usize> = counts.values().copied().collect();
    let stat = chi_square(&observed, &probs);
    let critical = chi_square_critical_999(probs.len() - 1) * 1.5;
    println!(
        "\nchi-square validation at vertex {v} (degree {}, {} distinct dsts): \
         stat {stat:.2} vs critical {critical:.2} → {}",
        mirror.degree(v),
        probs.len(),
        if stat < critical { "PASS" } else { "FAIL" }
    );

    let stats = service.shutdown();
    println!("\nper-shard service stats:\n{}", stats.render());

    assert!(stream.len() >= 10_000, "example must ingest >= 10k events");
    assert!(
        stats
            .per_shard
            .iter()
            .all(|s| s.epoch == batches.len() as u64),
        "every shard applied every batch"
    );
    assert!(stat < critical, "sampling distribution diverged");
    println!("ok");
}

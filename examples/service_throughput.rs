//! Sharded walk service under load: ≥4 shards serve concurrent walk waves
//! while a stream of ≥10k edge insert/delete/reweight events is ingested,
//! then the final sampling distribution is validated with a chi-square
//! test against the fully-updated graph and per-shard `ServiceStats` are
//! printed.
//!
//! The wave workload runs three times — on the uniform vertex split, on
//! the degree-balanced split (`Partitioner::balanced_by_degree`) and on
//! the visit-weighted split (`Partitioner::balanced_by_visits`, which
//! weighs vertices by seeded warm-up-walk traffic instead of raw degree) —
//! and prints two per-shard views of each: owner-attributed walker
//! routing (judges the partitioner — stealing never moves ownership) and
//! executed step share (judges the runtime — idle shards steal walker
//! batches out of hot shards' inboxes, so execution flattens even on a
//! skewed split). The printed `hottest_shard_step_share` (executed steps,
//! so stealing counts for the thief) is gated at ≤40% by CI. A node2vec
//! wave (served through the `WalkClient` facade) exercises the
//! forwarded-context path.
//!
//! Unless `BINGO_TELEMETRY=off`, the balanced workload then runs a third
//! time with detailed telemetry: the example prints per-stage latency
//! p50/p99 (submit, step batch, inbox dwell, forward hop, collection),
//! sampled walker lifecycle traces stitched across shards, the thread-pool
//! profile, and `telemetry_overhead_pct` — the detailed run's wall-clock
//! cost over the telemetry-disabled baseline (the disabled mode itself
//! adds no clock reads, so the baseline run *is* the no-telemetry cost).
//!
//! With `--obs`, the validation service additionally runs with the
//! observability plane attached: an exposition server binds an ephemeral
//! loopback port (printed as `obs_addr=`), and the example fetches its own
//! `/metrics` and `/healthz` over a plain `TcpStream` so CI can gate on the
//! scraped values in single-process output.
//!
//! ```text
//! cargo run --release --example service_throughput [-- --obs]
//! ```

use bingo::obs::{ObsConfig, ObsServer};
use bingo::prelude::*;
use bingo::sampling::stats::{chi_square, chi_square_critical_999};
use bingo::service::{PartitionStrategy, ServiceConfig};
use bingo::telemetry::{names, Tracer};
use bingo_graph::updates::UpdateKind;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::Arc;

/// Minimal HTTP/1.0 GET against the exposition server: returns the body.
fn obs_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to obs server");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read response to close");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .expect("response has a header/body separator")
}

const SHARDS: usize = 4;
const TOTAL_EVENTS: usize = 12_000;
const BATCH_SIZE: usize = 600;
const WALK_LEN: usize = 20;

/// Run the wave workload (one walk wave up front, one after every update
/// batch) on a fresh service with the given partition strategy, returning
/// the final stats and the wave results.
fn serve_waves(
    graph: &DynamicGraph,
    batches: &[UpdateBatch],
    partition: PartitionStrategy,
    telemetry: Telemetry,
) -> (ServiceStats, Vec<TicketResults>, std::time::Duration) {
    let service = WalkService::build_with_telemetry(
        graph,
        ServiceConfig {
            num_shards: SHARDS,
            seed: 0x7417,
            partition,
            ..ServiceConfig::default()
        },
        telemetry,
    )
    .expect("service builds");
    let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: WALK_LEN,
    });

    let t0 = std::time::Instant::now();
    let mut tickets = vec![service.submit(spec, &starts).expect("submit")];
    let mut last_receipt = None;
    for batch in batches {
        last_receipt = Some(service.ingest(batch));
        tickets.push(service.submit(spec, &starts).expect("submit"));
    }
    let waves: Vec<TicketResults> = tickets.into_iter().map(|t| service.wait(t)).collect();
    let elapsed = t0.elapsed();
    service.sync(last_receipt.expect("at least one batch"));
    (service.shutdown(), waves, elapsed)
}

fn step_share(stats: &ServiceStats) -> Vec<f64> {
    let total = stats.total_steps().max(1) as f64;
    stats
        .per_shard
        .iter()
        .map(|s| 100.0 * s.steps as f64 / total)
        .collect()
}

/// Owner-attributed load: walker visits routed to each shard because it
/// owns the vertex, regardless of which task executed them. Stealing
/// moves *execution* between shards but never ownership, so this view —
/// not executed steps — is what judges partition quality.
fn owner_share(stats: &ServiceStats) -> Vec<f64> {
    let total: u64 = stats.per_shard.iter().map(|s| s.walkers_received).sum();
    let total = total.max(1) as f64;
    stats
        .per_shard
        .iter()
        .map(|s| 100.0 * s.walkers_received as f64 / total)
        .collect()
}

fn main() {
    // Observability is opt-in: the --obs flag (ephemeral port) or a
    // BINGO_OBS=host:port bind address. Neither set → no listener at all.
    let obs_enabled = std::env::args().any(|a| a == "--obs")
        || std::env::var(bingo::obs::OBS_ENV).is_ok_and(|v| !v.trim().is_empty());
    // A scaled-down LiveJournal stand-in plus a mixed update stream.
    let mut rng = Pcg64::seed_from_u64(0x5E71CE);
    let mut graph = bingo::graph::datasets::StandinDataset::LiveJournal.build(1_000, &mut rng);
    let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, TOTAL_EVENTS).build(
        &mut graph,
        TOTAL_EVENTS,
        &mut rng,
    );
    let batches = stream.chunks(BATCH_SIZE);
    println!(
        "graph: {} vertices, {} edges; update stream: {} events in {} batches",
        graph.num_vertices(),
        graph.num_edges(),
        stream.len(),
        batches.len()
    );

    // Same wave workload on both partition strategies: the power-law
    // stand-in concentrates degree in the low vertex ids, so the uniform
    // split overloads shard 0 while the degree-balanced split evens out
    // the per-shard step share.
    let (uniform_stats, _, uniform_elapsed) = serve_waves(
        &graph,
        &batches,
        PartitionStrategy::Uniform,
        Telemetry::disabled(),
    );
    let (stats, waves, elapsed) = serve_waves(
        &graph,
        &batches,
        PartitionStrategy::DegreeBalanced,
        Telemetry::disabled(),
    );
    let (visit_stats, _, _) = serve_waves(
        &graph,
        &batches,
        PartitionStrategy::VisitWeighted,
        Telemetry::disabled(),
    );
    let fmt_shares =
        |shares: Vec<f64>| -> Vec<String> { shares.iter().map(|s| format!("{s:.1}%")).collect() };
    // Two views of the same load. Owner-attributed walker routing judges
    // the *partitioner* (stealing never moves ownership); executed steps
    // judge the *runtime* (stealing moves execution off hot shards).
    println!("\nper-shard owner load (% of walker visits routed by ownership):");
    println!(
        "  uniform split:          {:?}",
        fmt_shares(owner_share(&uniform_stats))
    );
    println!(
        "  degree-balanced split:  {:?}",
        fmt_shares(owner_share(&stats))
    );
    println!(
        "  visit-weighted split:   {:?}",
        fmt_shares(owner_share(&visit_stats))
    );
    println!("per-shard step share (% of all steps executed, thief-attributed):");
    println!(
        "  uniform split:          {:?}",
        fmt_shares(step_share(&uniform_stats))
    );
    println!(
        "  degree-balanced split:  {:?}",
        fmt_shares(step_share(&stats))
    );
    println!(
        "  visit-weighted split:   {:?}",
        fmt_shares(step_share(&visit_stats))
    );
    println!(
        "batch stealing: uniform {} batches ({} walkers), degree-balanced {} ({}), \
         visit-weighted {} ({})",
        uniform_stats.total_stolen_batches(),
        uniform_stats.total_stolen_walkers(),
        stats.total_stolen_batches(),
        stats.total_stolen_walkers(),
        visit_stats.total_stolen_batches(),
        visit_stats.total_stolen_walkers(),
    );
    // CI gates on this line: with a balanced split plus inbox stealing, no
    // shard task may end up executing more than 40% of all steps.
    let hottest = 100.0
        * stats
            .hottest_step_share()
            .max(visit_stats.hottest_step_share());
    println!("hottest_shard_step_share={hottest:.1}");

    let total_steps: usize = waves.iter().map(TicketResults::total_steps).sum();
    let total_walks: usize = waves.iter().map(|w| w.paths.len()).sum();
    println!(
        "\nserved {} walks ({} steps) across {} waves while ingesting {} events: \
         {:.3}s balanced vs {:.3}s uniform ({:.0} ksteps/s balanced)",
        total_walks,
        total_steps,
        waves.len(),
        stream.len(),
        elapsed.as_secs_f64(),
        uniform_elapsed.as_secs_f64(),
        total_steps as f64 / elapsed.as_secs_f64() / 1e3,
    );

    // Same balanced workload once more with detailed telemetry: per-stage
    // latency histograms, sampled lifecycle traces, the pool profile, and
    // the wall-clock overhead of recording it all.
    let telemetry = Telemetry::from_env(0x7417, true);
    if telemetry.is_detailed() {
        let (_, _, detailed_elapsed) = serve_waves(
            &graph,
            &batches,
            PartitionStrategy::DegreeBalanced,
            telemetry.clone(),
        );
        bingo::service::record_pool_profile(&telemetry);
        let snap = telemetry.snapshot();
        let stages = [
            ("submit", names::SERVICE_SUBMIT_NS),
            ("step_batch", names::SERVICE_SHARD_STEP_BATCH_NS),
            ("inbox_dwell", names::SERVICE_SHARD_INBOX_DWELL_NS),
            ("update_apply", names::SERVICE_SHARD_UPDATE_APPLY_NS),
            ("forward_hop", names::SERVICE_FORWARD_HOP_NS),
            ("collect", names::SERVICE_COLLECT_NS),
            ("ticket", names::SERVICE_TICKET_LATENCY_NS),
        ];
        println!("\nper-stage latency p50/p99 (ns, log2-bucket lower edges):");
        for (label, name) in stages {
            let h = snap.histogram_across_labels(name);
            println!(
                "  {label:<12} count={:<8} p50={:<10} p99={}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99)
            );
        }
        let step_batch_count = snap
            .histogram_across_labels(names::SERVICE_SHARD_STEP_BATCH_NS)
            .count();
        println!("step_batch_count={step_batch_count}");
        println!(
            "pool profile: calls={} chunks={} busy_ns={} idle_ns={}",
            snap.counter(names::POOL_CALLS, &[]),
            snap.counter(names::POOL_CHUNKS_CLAIMED, &[]),
            snap.counter(names::POOL_WORKER_BUSY_NS, &[]),
            snap.counter(names::POOL_WORKER_IDLE_NS, &[]),
        );

        // Sampled lifecycles: deterministic in (seed, ticket, walker), so
        // the same walkers are traced whatever BINGO_THREADS says. Print a
        // few stitched examples, preferring cross-shard journeys.
        let lifecycles = telemetry
            .tracer()
            .map(Tracer::complete_lifecycle_lines)
            .unwrap_or_default();
        let mut shown: Vec<&String> = lifecycles
            .iter()
            .filter(|l| l.contains("hop("))
            .take(2)
            .collect();
        shown.extend(lifecycles.iter().filter(|l| !l.contains("hop(")).take(1));
        println!(
            "sampled walker lifecycles: {} complete (showing {}):",
            lifecycles.len(),
            shown.len()
        );
        for line in shown {
            println!("  {line}");
        }

        let overhead_pct = 100.0 * (detailed_elapsed.as_secs_f64() - elapsed.as_secs_f64())
            / elapsed.as_secs_f64();
        println!(
            "telemetry_overhead_pct={overhead_pct:.1} (detailed {:.3}s vs disabled {:.3}s)",
            detailed_elapsed.as_secs_f64(),
            elapsed.as_secs_f64()
        );

        assert!(step_batch_count > 0, "step-batch latencies were recorded");
        assert!(
            snap.histogram_across_labels(names::SERVICE_FORWARD_HOP_NS)
                .count()
                > 0,
            "cross-shard hops recorded forward latencies"
        );
        assert!(
            lifecycles.iter().any(|l| l.contains("hop(")),
            "at least one sampled lifecycle crossed shards"
        );
    }

    // Validate the post-update sampling distribution on a fresh balanced
    // service over the fully-updated graph: pick the busiest vertex and
    // chi-square the service's transitions against the edge biases.
    let mut mirror = graph.clone();
    mirror.apply_batch(&stream);
    // With --obs the validation service records into a live registry so
    // the exposition server has something to serve.
    let obs_telemetry = if obs_enabled {
        Telemetry::enabled(0x7418)
    } else {
        Telemetry::disabled()
    };
    let service = Arc::new(
        WalkService::build_with_telemetry(
            &mirror,
            ServiceConfig {
                num_shards: SHARDS,
                seed: 0x7418,
                partition: PartitionStrategy::DegreeBalanced,
                ..ServiceConfig::default()
            },
            obs_telemetry.clone(),
        )
        .expect("service builds"),
    );
    let v = (0..mirror.num_vertices() as VertexId)
        .max_by_key(|&v| mirror.degree(v))
        .expect("non-empty graph");
    let mut expected: BTreeMap<VertexId, f64> = BTreeMap::new();
    for e in mirror.neighbors(v).expect("vertex in range").edges() {
        *expected.entry(e.dst).or_insert(0.0) += e.bias.value();
    }
    let total_bias: f64 = expected.values().sum();
    let probs: Vec<f64> = expected.values().map(|w| w / total_bias).collect();

    let trials = 60_000;
    let ticket = service
        .submit(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 1 }),
            &vec![v; trials],
        )
        .expect("submit");
    let results = service.wait(ticket);
    let mut counts: BTreeMap<VertexId, usize> = expected.keys().map(|&dst| (dst, 0)).collect();
    for path in &results.paths {
        *counts.get_mut(&path[1]).expect("sampled an alive edge") += 1;
    }
    let observed: Vec<usize> = counts.values().copied().collect();
    let stat = chi_square(&observed, &probs);
    let critical = chi_square_critical_999(probs.len() - 1) * 1.5;
    println!(
        "\nchi-square validation at vertex {v} (degree {}, {} distinct dsts): \
         stat {stat:.2} vs critical {critical:.2} → {}",
        mirror.degree(v),
        probs.len(),
        if stat < critical { "PASS" } else { "FAIL" }
    );

    // A node2vec wave through the unified client: the second-order factor
    // needs the previous vertex's adjacency, which crosses shards inside
    // forwarded context fingerprints.
    let client = WalkClient::sharded(&service);
    let n2v = client
        .submit(
            WalkRequest::spec(WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: WALK_LEN,
                p: 0.5,
                q: 2.0,
            }))
            .all_vertices()
            .collect(CollectionMode::VisitCounts),
        )
        .expect("submit node2vec")
        .wait();
    println!(
        "node2vec wave via WalkClient: {} walks, {} steps",
        n2v.num_walks, n2v.total_steps
    );

    // With --obs, expose the validation service and scrape ourselves: the
    // printed lines are what CI gates on (nonzero step samples, healthy).
    if obs_enabled {
        // BINGO_OBS picks the bind address when set; --obs alone takes an
        // ephemeral loopback port.
        let from_env = bingo::obs::serve_from_env(&obs_telemetry, Some(Arc::clone(&service)), None);
        let server = match from_env {
            Some(server) => server,
            None => ObsServer::serve(
                ObsConfig::default(),
                obs_telemetry.clone(),
                Some(Arc::clone(&service)),
                None,
            )
            .expect("bind an ephemeral loopback port"),
        };
        println!("obs_addr={}", server.local_addr());
        let metrics = obs_get(server.local_addr(), "/metrics");
        let scraped_steps: u64 = metrics
            .lines()
            .filter(|l| l.starts_with("service_shard_steps"))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum();
        println!("obs_metrics_steps_total={scraped_steps}");
        let health = obs_get(server.local_addr(), "/healthz");
        println!("obs_healthz={}", health.trim());
        assert!(
            scraped_steps > 0,
            "scraped /metrics must show executed steps"
        );
        assert_eq!(health.trim(), "ok", "/healthz must report healthy");
        server.shutdown();
    }

    let final_stats = service.stats();
    println!(
        "\nper-shard service stats (validation service):\n{}",
        final_stats.render()
    );

    // Forwarded-context volume of the node2vec wave: hot-hub snapshots are
    // captured once per (vertex, epoch) and Arc-shared by every walker
    // forwarded in the same wave, so the bytes actually materialized shrink
    // far below the exact-Vec-per-forward baseline. The one-line summary is
    // grepped by CI so the reuse path cannot silently regress.
    let ctx_raw = final_stats.total_context_bytes_raw();
    let ctx_sent = final_stats.total_context_bytes();
    let hit_rate = final_stats.context_cache_hit_rate();
    let shrink = final_stats.context_shrink_factor();
    println!(
        "\nctx_bytes_raw={ctx_raw} ctx_bytes_sent={ctx_sent} cache_hit_rate={hit_rate:.3} \
         ctx_shrink={shrink:.1}x context_misses={}",
        final_stats.total_context_misses()
    );

    assert!(stream.len() >= 10_000, "example must ingest >= 10k events");
    assert!(
        stats
            .per_shard
            .iter()
            .all(|s| s.epoch == batches.len() as u64),
        "every shard applied every batch"
    );
    assert!(stat < critical, "sampling distribution diverged");
    assert_eq!(n2v.num_walks, mirror.num_vertices(), "node2vec wave served");
    assert!(
        final_stats.total_context_bytes() > 0,
        "node2vec forwards carried context"
    );
    assert!(
        shrink >= 5.0,
        "forwarded-context bytes must drop >=5x vs the exact-Vec baseline \
         (raw {ctx_raw} vs sent {ctx_sent}: {shrink:.1}x)"
    );
    assert!(hit_rate > 0.0, "wave-shared snapshots must be reused");
    assert_eq!(
        final_stats.total_context_misses(),
        0,
        "no second-order membership query may fall back to a non-owning shard"
    );
    // Partition quality is judged on owner-attributed routing: stealing
    // rebalances *execution* for every strategy (so executed-step shares
    // converge), but only a better partition reduces the walker traffic a
    // hub shard owns in the first place.
    let uniform_max = owner_share(&uniform_stats)
        .into_iter()
        .fold(0.0f64, f64::max);
    let balanced_max = owner_share(&stats).into_iter().fold(0.0f64, f64::max);
    assert!(
        balanced_max <= uniform_max + 1e-9,
        "degree-balanced split must not increase the hottest shard's owner load \
         ({balanced_max:.1}% vs {uniform_max:.1}%)"
    );
    assert!(
        hottest <= 40.0,
        "balanced split + batch stealing must keep the hottest shard at \
         <=40% of executed steps (got {hottest:.1}%)"
    );
    println!("ok");
}

//! Compare Bingo against the three baseline systems on the same dynamic
//! workload — a miniature, single-configuration version of Table 3.
//!
//! The example builds a LiveJournal-shaped stand-in graph, generates a mixed
//! update stream, and runs the paper's evaluation workflow (rounds of
//! updates followed by a DeepWalk pass) on Bingo, KnightKing, gSampler and
//! FlowWalker, printing runtime, memory and speedups.
//!
//! ```text
//! cargo run --release --example engine_comparison
//! ```

use bingo::baselines::{FlowWalkerBaseline, GSamplerBaseline, KnightKingBaseline};
use bingo::prelude::*;
use bingo::walks::{DynamicWalkSystem, EvaluationWorkflow, IngestMode};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;
use bingo_graph::updates::UpdateStreamBuilder;

const ROUNDS: usize = 3;
const BATCH_SIZE: usize = 2_000;
const WALK_LENGTH: usize = 20;

fn run_system<S: DynamicWalkSystem>(
    system: &mut S,
    batches: &[bingo_graph::UpdateBatch],
) -> (f64, f64, usize) {
    let workflow = EvaluationWorkflow::new(
        WalkSpec::DeepWalk(DeepWalkConfig {
            walk_length: WALK_LENGTH,
        }),
        IngestMode::Batched,
    );
    let report = workflow.run(system, batches);
    (
        report.total_update_time().as_secs_f64(),
        report.total_walk_time().as_secs_f64(),
        report.memory_bytes,
    )
}

fn main() {
    let mut rng = Pcg64::seed_from_u64(0xB1460);
    let mut graph = StandinDataset::LiveJournal.build(2_000, &mut rng);
    println!(
        "LiveJournal stand-in: {} vertices, {} edges (the real graph has 4.8M / 68.5M)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, ROUNDS * BATCH_SIZE).build(
        &mut graph,
        ROUNDS * BATCH_SIZE,
        &mut rng,
    );
    let batches = stream.chunks(BATCH_SIZE);
    println!(
        "workload: {} rounds × {} mixed updates + DeepWalk (length {WALK_LENGTH}, one walker per vertex)\n",
        batches.len(),
        BATCH_SIZE
    );

    let mut results: Vec<(&str, f64, f64, usize)> = Vec::new();

    let mut bingo = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
    let (u, w, m) = run_system(&mut bingo, &batches);
    results.push(("Bingo", u, w, m));

    let mut kk = KnightKingBaseline::build(&graph);
    let (u, w, m) = run_system(&mut kk, &batches);
    results.push(("KnightKing", u, w, m));

    let mut gs = GSamplerBaseline::build(&graph);
    let (u, w, m) = run_system(&mut gs, &batches);
    results.push(("gSampler", u, w, m));

    let mut fw = FlowWalkerBaseline::build(&graph);
    let (u, w, m) = run_system(&mut fw, &batches);
    results.push(("FlowWalker", u, w, m));

    let bingo_total = results[0].1 + results[0].2;
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "system", "update_s", "walk_s", "total_s", "memory_MiB", "vs_Bingo"
    );
    for (name, update, walk, memory) in &results {
        let total = update + walk;
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>12.2} {:>9.2}x",
            name,
            update,
            walk,
            total,
            *memory as f64 / (1024.0 * 1024.0),
            total / bingo_total
        );
    }
    println!(
        "\n(the paper's Table 3 reports the same comparison on A100 GPUs and the full graphs; \
         expect the same ordering, not the same absolute numbers)"
    );
}

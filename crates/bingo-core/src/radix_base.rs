//! Bingo with arbitrary radix bases (§9.2, Figure 17).
//!
//! With a radix base `b > 2`, a bias is decomposed into base-`b` digits.
//! Members of group `b^i` no longer share the same sub-bias (their digit may
//! be anything in `1..b`), so a third level is added: within each group,
//! members are partitioned into *sub-groups* by digit value, an
//! inter-subgroup alias table picks the digit, and intra-subgroup sampling is
//! uniform again. Larger bases reduce the number of groups `K` (and thus the
//! update cost and inverted-index memory) at the price of `b − 1` sub-groups
//! per group.
//!
//! The paper describes but does not evaluate this design (building the
//! nested structure on GPUs is hard); here it is implemented as a
//! self-contained per-vertex sampling space so the ablation benchmarks can
//! quantify the trade-off.

use bingo_sampling::{AliasTable, Sampler};
use rand::Rng;

/// Per-vertex sampling space using an arbitrary power-of-two radix base.
#[derive(Debug, Clone)]
pub struct RadixBaseSpace {
    base: u64,
    /// `digits[group][member]`: neighbor indices, partitioned per group into
    /// sub-groups by digit value. `subgroups[group][digit - 1]` is the member
    /// list of that digit.
    subgroups: Vec<Vec<Vec<u32>>>,
    /// Inter-subgroup alias tables, one per non-empty group.
    subgroup_alias: Vec<Option<AliasTable>>,
    /// Inter-group alias table.
    inter: Option<AliasTable>,
    /// The biases, kept so updates can recompute digit memberships.
    biases: Vec<u64>,
}

impl RadixBaseSpace {
    /// Build a space for integer biases with the given radix base
    /// (must be a power of two ≥ 2).
    pub fn build(biases: &[u64], base: u64) -> Self {
        assert!(
            base >= 2 && base.is_power_of_two(),
            "base must be a power of two ≥ 2"
        );
        let mut space = RadixBaseSpace {
            base,
            subgroups: Vec::new(),
            subgroup_alias: Vec::new(),
            inter: None,
            biases: biases.to_vec(),
        };
        space.rebuild();
        space
    }

    /// The radix base.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of groups `K_b = ceil(log_b(max bias + 1))`.
    pub fn num_groups(&self) -> usize {
        self.subgroups.len()
    }

    /// Current number of candidates.
    pub fn len(&self) -> usize {
        self.biases.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.biases.is_empty()
    }

    /// Total weight (sum of biases).
    pub fn total_weight(&self) -> u64 {
        self.biases.iter().sum()
    }

    fn digits_of(&self, mut bias: u64) -> Vec<(usize, u64)> {
        let mut digits = Vec::new();
        let mut group = 0usize;
        while bias > 0 {
            let digit = bias % self.base;
            if digit > 0 {
                digits.push((group, digit));
            }
            bias /= self.base;
            group += 1;
        }
        digits
    }

    /// Rebuild every level from the stored biases. `O(d · K_b)`.
    pub fn rebuild(&mut self) {
        let max = self.biases.iter().copied().max().unwrap_or(0);
        let mut num_groups = 0usize;
        let mut m = max;
        while m > 0 {
            num_groups += 1;
            m /= self.base;
        }
        self.subgroups = vec![vec![Vec::new(); (self.base - 1) as usize]; num_groups];
        for (idx, &bias) in self.biases.iter().enumerate() {
            for (group, digit) in self.digits_of(bias) {
                self.subgroups[group][(digit - 1) as usize].push(idx as u32);
            }
        }
        self.rebuild_tables();
    }

    fn rebuild_tables(&mut self) {
        self.subgroup_alias = self
            .subgroups
            .iter()
            .map(|subs| {
                let weights: Vec<f64> = subs
                    .iter()
                    .enumerate()
                    .map(|(digit_minus_one, members)| {
                        members.len() as f64 * (digit_minus_one as f64 + 1.0)
                    })
                    .collect();
                if weights.iter().sum::<f64>() > 0.0 {
                    AliasTable::new(&weights).ok()
                } else {
                    None
                }
            })
            .collect();
        let group_weights: Vec<f64> = self
            .subgroups
            .iter()
            .enumerate()
            .map(|(g, subs)| {
                let base_power = (self.base as f64).powi(g as i32);
                subs.iter()
                    .enumerate()
                    .map(|(d, members)| members.len() as f64 * (d as f64 + 1.0) * base_power)
                    .sum::<f64>()
            })
            .collect();
        self.inter = if group_weights.iter().sum::<f64>() > 0.0 {
            AliasTable::new(&group_weights).ok()
        } else {
            None
        };
    }

    /// Insert a new candidate, returning its index. `O(K_b)` plus the alias
    /// rebuilds over `K_b` and `b − 1` entries.
    pub fn insert(&mut self, bias: u64) -> usize {
        let idx = self.biases.len();
        self.biases.push(bias);
        let digits = self.digits_of(bias);
        let need_groups = digits.iter().map(|&(g, _)| g + 1).max().unwrap_or(0);
        while self.subgroups.len() < need_groups {
            self.subgroups
                .push(vec![Vec::new(); (self.base - 1) as usize]);
        }
        for (group, digit) in digits {
            self.subgroups[group][(digit - 1) as usize].push(idx as u32);
        }
        self.rebuild_tables();
        idx
    }

    /// Remove the candidate at `index` (swap-remove semantics: the last
    /// candidate takes its index). `O(K_b)` amortized.
    pub fn remove(&mut self, index: usize) -> Option<u64> {
        if index >= self.biases.len() {
            return None;
        }
        let removed_bias = self.biases[index];
        let last = self.biases.len() - 1;
        // Remove the target from its sub-groups.
        for (group, digit) in self.digits_of(removed_bias) {
            let members = &mut self.subgroups[group][(digit - 1) as usize];
            if let Some(pos) = members.iter().position(|&m| m == index as u32) {
                members.swap_remove(pos);
            }
        }
        // Remap the moved candidate (previously `last`) to `index`.
        if index != last {
            let moved_bias = self.biases[last];
            for (group, digit) in self.digits_of(moved_bias) {
                let members = &mut self.subgroups[group][(digit - 1) as usize];
                if let Some(pos) = members.iter().position(|&m| m == last as u32) {
                    members[pos] = index as u32;
                }
            }
        }
        self.biases.swap_remove(index);
        self.rebuild_tables();
        Some(removed_bias)
    }

    /// Sample a candidate index proportionally to its bias.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let inter = self.inter.as_ref()?;
        for _ in 0..64 {
            let group = inter.sample(rng);
            let alias = match self.subgroup_alias.get(group).and_then(|a| a.as_ref()) {
                Some(a) => a,
                None => continue,
            };
            let digit_slot = alias.sample(rng);
            let members = &self.subgroups[group][digit_slot];
            if members.is_empty() {
                continue;
            }
            return Some(members[rng.gen_range(0..members.len())] as usize);
        }
        None
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let members: usize = self
            .subgroups
            .iter()
            .flat_map(|subs| subs.iter())
            .map(|m| m.capacity() * std::mem::size_of::<u32>())
            .sum();
        let tables: usize = self
            .subgroup_alias
            .iter()
            .flatten()
            .map(AliasTable::memory_bytes)
            .sum::<usize>()
            + self
                .inter
                .as_ref()
                .map(AliasTable::memory_bytes)
                .unwrap_or(0);
        members + tables + self.biases.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sampling::rng::Pcg64;
    use bingo_sampling::stats::{empirical_distribution, max_abs_deviation, normalize};
    use rand::SeedableRng;

    #[test]
    fn figure_17_example_base_4() {
        // Figure 17: biases 2, 3, 10, 11.5 → the paper uses 2, 3, 10, 11 for
        // the base-4 illustration (integer part).
        let space = RadixBaseSpace::build(&[2, 3, 10, 11], 4);
        assert_eq!(space.base(), 4);
        // max = 11 → digits in base 4: 11 = 2*4 + 3 → 2 groups.
        assert_eq!(space.num_groups(), 2);
        assert_eq!(space.total_weight(), 26);
    }

    #[test]
    fn sampling_distribution_matches_biases_for_various_bases() {
        let biases = [5u64, 4, 3, 17, 100, 63, 1];
        let expected = normalize(&biases.iter().map(|&b| b as f64).collect::<Vec<_>>());
        for base in [2u64, 4, 8, 16] {
            let space = RadixBaseSpace::build(&biases, base);
            let mut rng = Pcg64::seed_from_u64(base);
            let freq = empirical_distribution(
                |r| space.sample(r).unwrap(),
                biases.len(),
                300_000,
                &mut rng,
            );
            assert!(
                max_abs_deviation(&freq, &expected) < 0.01,
                "base {base}: {freq:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn larger_bases_use_fewer_groups() {
        let biases: Vec<u64> = (1..=1000).collect();
        let base2 = RadixBaseSpace::build(&biases, 2);
        let base16 = RadixBaseSpace::build(&biases, 16);
        assert!(base16.num_groups() < base2.num_groups());
    }

    #[test]
    fn insert_and_remove_keep_distribution_correct() {
        let mut space = RadixBaseSpace::build(&[5, 4, 3], 4);
        space.insert(8);
        assert_eq!(space.len(), 4);
        assert_eq!(space.total_weight(), 20);
        // Remove index 0 (bias 5); index 3 (bias 8) moves into slot 0.
        assert_eq!(space.remove(0), Some(5));
        assert_eq!(space.len(), 3);
        assert_eq!(space.total_weight(), 15);

        let mut rng = Pcg64::seed_from_u64(9);
        let freq = empirical_distribution(|r| space.sample(r).unwrap(), 3, 200_000, &mut rng);
        // Slot 0 now holds bias 8, slot 1 bias 4, slot 2 bias 3.
        assert!(max_abs_deviation(&freq, &[8.0 / 15.0, 4.0 / 15.0, 3.0 / 15.0]) < 0.01);
    }

    #[test]
    fn remove_out_of_range_returns_none() {
        let mut space = RadixBaseSpace::build(&[1, 2], 4);
        assert_eq!(space.remove(5), None);
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn empty_space_samples_nothing() {
        let space = RadixBaseSpace::build(&[], 4);
        let mut rng = Pcg64::seed_from_u64(3);
        assert!(space.is_empty());
        assert_eq!(space.sample(&mut rng), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_base_is_rejected() {
        let _ = RadixBaseSpace::build(&[1, 2, 3], 3);
    }

    #[test]
    fn memory_shrinks_with_larger_base_for_wide_biases() {
        let biases: Vec<u64> = (1..=2000).map(|i| i * 31).collect();
        let base2 = RadixBaseSpace::build(&biases, 2);
        let base16 = RadixBaseSpace::build(&biases, 16);
        // Fewer groups → fewer member copies (popcount vs digit count).
        assert!(base16.memory_bytes() < base2.memory_bytes());
    }
}

//! Engine configuration.

/// How the λ amortization factor for floating-point biases (§4.3) is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lambda {
    /// Pick λ automatically: 1 for all-integer biases, otherwise a power of
    /// two large enough that the decimal group stays below the `1/d`
    /// threshold the complexity analysis requires (§4.4) for typical
    /// degrees.
    Auto,
    /// Use a fixed λ.
    Fixed(f64),
}

/// Configuration of the Bingo engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BingoConfig {
    /// Enable the adaptive group representation of §5.1 (dense /
    /// one-element / sparse / regular). Disabling it reproduces the "BS"
    /// baseline of Figures 11 and 13, where every group is regular.
    pub adaptive: bool,
    /// Dense-group threshold α (percent of the vertex degree). A group
    /// holding more than `α%` of the neighbors is represented as dense.
    pub alpha_percent: f64,
    /// Sparse-group threshold β (percent of the vertex degree). A group
    /// holding fewer than `β%` of the neighbors (and more than one) is
    /// represented as sparse.
    pub beta_percent: f64,
    /// λ amortization factor for floating-point biases.
    pub lambda: Lambda,
    /// Reclassify group representations after every streaming update.
    /// Batched updates always reclassify once per touched vertex during the
    /// rebuild phase.
    pub reclassify_on_streaming: bool,
    /// Size of the engine's hot-hub context cache: the top-k owned vertices
    /// by degree whose adjacency fingerprints are pre-built once per engine
    /// generation and handed out as `Arc` clones
    /// (`BingoEngine::context_fingerprint`). `0` disables pre-building
    /// (every fingerprint is encoded on demand). Only read on the
    /// forwarded-context path, so first-order workloads are unaffected.
    pub context_hot_hubs: usize,
    /// Scope hot-hub fingerprint invalidation to the vertices a structural
    /// update actually touched (the update paths know their source-vertex
    /// sets): untouched hubs keep their `Arc`-shared snapshots and touched
    /// hot hubs are re-encoded in place, instead of flushing the whole hot
    /// set on every structural mutation. Disable to reproduce the old
    /// wholesale-flush behavior (the baseline the `repro transport`
    /// experiment compares against).
    pub scoped_context_invalidation: bool,
}

impl Default for BingoConfig {
    fn default() -> Self {
        // α = 40, β = 10 are the paper's empirically chosen thresholds.
        BingoConfig {
            adaptive: true,
            alpha_percent: 40.0,
            beta_percent: 10.0,
            lambda: Lambda::Auto,
            reclassify_on_streaming: true,
            context_hot_hubs: 64,
            scoped_context_invalidation: true,
        }
    }
}

impl BingoConfig {
    /// The baseline configuration ("BS" in the paper's figures): no adaptive
    /// group representation, every group stored in the regular format.
    pub fn baseline() -> Self {
        BingoConfig {
            adaptive: false,
            ..Self::default()
        }
    }

    /// Resolve the λ factor for a set of biases.
    ///
    /// `has_float` says whether any bias is non-integral; `max_bias` is the
    /// largest bias value of the vertex (used to keep the scaled values well
    /// inside 64 bits).
    pub fn resolve_lambda(&self, has_float: bool) -> f64 {
        match self.lambda {
            Lambda::Fixed(l) => l.max(1.0),
            Lambda::Auto => {
                if has_float {
                    // 2^10: the decimal remainder of each edge is < 1/1024 of
                    // its integer part for biases ≥ 1, comfortably keeping
                    // the decimal group's share below 1/d for real degrees.
                    1024.0
                } else {
                    1.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_thresholds() {
        let c = BingoConfig::default();
        assert!(c.adaptive);
        assert_eq!(c.alpha_percent, 40.0);
        assert_eq!(c.beta_percent, 10.0);
        assert_eq!(c.lambda, Lambda::Auto);
    }

    #[test]
    fn baseline_disables_adaptation() {
        assert!(!BingoConfig::baseline().adaptive);
    }

    #[test]
    fn lambda_resolution() {
        let auto = BingoConfig::default();
        assert_eq!(auto.resolve_lambda(false), 1.0);
        assert_eq!(auto.resolve_lambda(true), 1024.0);
        let fixed = BingoConfig {
            lambda: Lambda::Fixed(10.0),
            ..BingoConfig::default()
        };
        assert_eq!(fixed.resolve_lambda(true), 10.0);
        let degenerate = BingoConfig {
            lambda: Lambda::Fixed(0.0),
            ..BingoConfig::default()
        };
        assert_eq!(degenerate.resolve_lambda(true), 1.0);
    }
}

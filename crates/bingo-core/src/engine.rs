//! The whole-graph Bingo engine.
//!
//! [`BingoEngine`] holds one [`VertexSpace`] per vertex — mirroring the
//! paper's GPU design, which "treats each vertex as an individual object" —
//! and exposes the two functionalities of Figure 3: random-walk sampling
//! queries and graph updates (streaming or batched). Batched updates are
//! grouped by source vertex and applied to all touched vertices in parallel,
//! which is the CPU equivalent of the paper's per-vertex GPU kernels.

use crate::config::BingoConfig;
use crate::context::{ContextProvider, ContextProviderStats};
use crate::memory::MemoryReport;
use crate::stats::{ConversionMatrix, EngineStats};
use crate::vertex_space::VertexSpace;
use crate::{BingoError, Result};
use bingo_graph::{Bias, DynamicGraph, UpdateBatch, UpdateEvent, VertexId};
use rand::Rng;
use rayon::prelude::*;
use std::sync::Arc;

/// Outcome of ingesting a batch of updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Edges inserted.
    pub inserted: usize,
    /// Edges deleted.
    pub deleted: usize,
    /// Deletions that referenced edges not present in the graph.
    pub missing_deletes: usize,
    /// Vertices whose sampling space was rebuilt from scratch (λ changes).
    pub full_rebuilds: usize,
    /// Number of distinct vertices touched by the batch.
    pub touched_vertices: usize,
}

/// A radix-factorized sampling engine over a dynamic weighted graph.
///
/// An engine normally owns the sampling space of *every* vertex
/// (`vertex_base == 0`). For sharded deployments ([`build_range`] and
/// `bingo-service`), an engine owns a contiguous slice
/// `[vertex_base, vertex_base + spaces.len())` of the vertex-id space: it
/// stores out-edges only for its owned vertices, while destination ids may
/// point anywhere in the global graph of `global_vertices` vertices.
///
/// [`build_range`]: BingoEngine::build_range
#[derive(Debug, Clone)]
pub struct BingoEngine {
    spaces: Vec<VertexSpace>,
    /// Global vertex id of `spaces[0]` (0 for whole-graph engines).
    vertex_base: usize,
    /// Size of the global vertex-id space destinations are validated against.
    global_vertices: usize,
    config: BingoConfig,
    num_edges: usize,
    stats: EngineStats,
    /// Hot-hub fingerprint cache for the forwarded-context path; lazily
    /// built, invalidated by every structural edge mutation (bias-only
    /// reweights keep it).
    context: ContextProvider,
}

impl BingoEngine {
    /// Build the engine from a snapshot of a dynamic graph.
    ///
    /// Per-vertex sampling spaces are constructed in parallel.
    pub fn build(graph: &DynamicGraph, config: BingoConfig) -> Result<Self> {
        Self::build_range(graph, 0..graph.num_vertices(), config)
    }

    /// Build a shard engine owning the out-edges of the contiguous vertex
    /// range `range` of `graph` (§9.1's 1-D partitioning). The engine only
    /// stores sampling spaces for the owned vertices, but accepts global
    /// destination ids up to `graph.num_vertices()`.
    ///
    /// Queries for non-owned vertices behave as if the vertex were isolated
    /// (`degree` 0, `sample_neighbor` → `None`); mutations of non-owned
    /// sources return [`BingoError::VertexOutOfRange`].
    pub fn build_range(
        graph: &DynamicGraph,
        range: std::ops::Range<usize>,
        config: BingoConfig,
    ) -> Result<Self> {
        let global_vertices = graph.num_vertices();
        if range.end > global_vertices || range.start > range.end {
            return Err(BingoError::VertexOutOfRange {
                vertex: range.end as VertexId,
                num_vertices: global_vertices,
            });
        }
        let spaces: Vec<VertexSpace> = (range.start..range.end)
            .into_par_iter()
            .map(|v| {
                let adj = graph
                    .neighbors(v as VertexId)
                    .expect("vertex within range")
                    .clone();
                VertexSpace::build(adj, config)
            })
            .collect();
        let num_edges = spaces.iter().map(VertexSpace::degree).sum();
        Ok(BingoEngine {
            spaces,
            vertex_base: range.start,
            global_vertices,
            config,
            num_edges,
            stats: EngineStats::default(),
            context: ContextProvider::default(),
        })
    }

    /// Build an engine over an empty graph with `num_vertices` vertices.
    pub fn empty(num_vertices: usize, config: BingoConfig) -> Self {
        BingoEngine {
            spaces: (0..num_vertices)
                .map(|_| VertexSpace::build(Default::default(), config))
                .collect(),
            vertex_base: 0,
            global_vertices: num_vertices,
            config,
            num_edges: 0,
            stats: EngineStats::default(),
            context: ContextProvider::default(),
        }
    }

    /// Number of vertices in the global vertex-id space. Equals the number
    /// of owned vertices for whole-graph engines.
    pub fn num_vertices(&self) -> usize {
        self.global_vertices
    }

    /// Global id of the first owned vertex (0 for whole-graph engines).
    pub fn vertex_base(&self) -> usize {
        self.vertex_base
    }

    /// Number of vertices whose out-edges this engine owns.
    pub fn num_owned(&self) -> usize {
        self.spaces.len()
    }

    /// The contiguous global-id range of owned vertices.
    pub fn owned_range(&self) -> std::ops::Range<usize> {
        self.vertex_base..self.vertex_base + self.spaces.len()
    }

    /// Whether this engine owns vertex `v`'s out-edges.
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        self.local(v).is_some()
    }

    /// Map a global vertex id to the local space index, if owned.
    #[inline]
    fn local(&self, v: VertexId) -> Option<usize> {
        (v as usize)
            .checked_sub(self.vertex_base)
            .filter(|&i| i < self.spaces.len())
    }

    /// Number of directed edges currently present.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The engine configuration.
    pub fn config(&self) -> &BingoConfig {
        &self.config
    }

    /// Aggregate activity statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Out-degree of `v` (0 for out-of-range or non-owned vertices).
    pub fn degree(&self, v: VertexId) -> usize {
        self.local(v).map(|i| self.spaces[i].degree()).unwrap_or(0)
    }

    /// The per-vertex sampling space of `v`.
    pub fn vertex_space(&self, v: VertexId) -> Result<&VertexSpace> {
        self.local(v)
            .map(|i| &self.spaces[i])
            .ok_or(BingoError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.global_vertices,
            })
    }

    fn vertex_space_mut(&mut self, v: VertexId) -> Result<&mut VertexSpace> {
        let num_vertices = self.global_vertices;
        match self.local(v) {
            Some(i) => Ok(&mut self.spaces[i]),
            None => Err(BingoError::VertexOutOfRange {
                vertex: v,
                num_vertices,
            }),
        }
    }

    /// Whether the edge `(src, dst)` exists.
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.local(src)
            .map(|i| self.spaces[i].adjacency().find(dst).is_some())
            .unwrap_or(false)
    }

    /// Bias of the first edge `(src, dst)`, if present.
    pub fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64> {
        let space = &self.spaces[self.local(src)?];
        let idx = space.adjacency().find(dst)?;
        space.adjacency().edge(idx).map(|e| e.bias.value())
    }

    /// Sample a neighbor of `v` proportionally to the edge biases, in `O(1)`
    /// expected time. Returns `None` for out-of-range or isolated vertices.
    #[inline]
    pub fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
        self.spaces.get(self.local(v)?)?.sample_neighbor(rng)
    }

    /// Sorted, deduplicated out-neighbor ids of `v` — the compact adjacency
    /// fingerprint a sharded deployment attaches to forwarded second-order
    /// walkers (membership queries against a vertex another shard owns).
    /// Returns `None` when this engine does not own `v`.
    ///
    /// This always allocates a fresh `Vec`; the forwarded-context hot path
    /// should use [`BingoEngine::context_fingerprint`], which serves hot
    /// hubs from an epoch-versioned `Arc` cache instead.
    pub fn neighbor_fingerprint(&self, v: VertexId) -> Option<Vec<VertexId>> {
        let space = self.spaces.get(self.local(v)?)?;
        Some(Self::fingerprint_of(space))
    }

    fn fingerprint_of(space: &VertexSpace) -> Vec<VertexId> {
        let mut adj: Vec<VertexId> = space.adjacency().edges().iter().map(|e| e.dst).collect();
        adj.sort_unstable();
        adj.dedup();
        adj
    }

    fn build_hot_set(
        spaces: &[VertexSpace],
        base: usize,
        k: usize,
    ) -> std::collections::HashMap<VertexId, Arc<Vec<VertexId>>> {
        if k == 0 || spaces.is_empty() {
            return std::collections::HashMap::new();
        }
        let mut by_degree: Vec<(usize, usize)> = spaces
            .iter()
            .enumerate()
            .map(|(i, s)| (s.degree(), i))
            .collect();
        let k = k.min(by_degree.len());
        by_degree.select_nth_unstable_by(k - 1, |a, b| b.0.cmp(&a.0));
        by_degree.truncate(k);
        by_degree
            .into_iter()
            .filter(|&(degree, _)| degree > 0)
            .map(|(_, i)| {
                (
                    (base + i) as VertexId,
                    Arc::new(Self::fingerprint_of(&spaces[i])),
                )
            })
            .collect()
    }

    /// The adjacency fingerprint of `v` for the forwarded-context path:
    /// hot hubs (the top [`BingoConfig::context_hot_hubs`] owned vertices
    /// by degree, snapshotted once per engine generation and invalidated by
    /// every structural edge mutation) are served as `Arc` clones; cold
    /// vertices are
    /// encoded on demand. Returns the fingerprint and whether it came from
    /// the hot cache. `None` when this engine does not own `v`.
    pub fn context_fingerprint(&mut self, v: VertexId) -> Option<(Arc<Vec<VertexId>>, bool)> {
        self.local(v)?;
        self.warm_context();
        self.context_fingerprint_shared(v)
    }

    /// Build and install the hot-hub fingerprint set for the current engine
    /// generation, if it is not already built. Sharded deployments call
    /// this under their exclusive engine lock (at build time and after
    /// every structural update batch) so the concurrent read path —
    /// [`BingoEngine::context_fingerprint_shared`] — never needs `&mut`.
    pub fn warm_context(&mut self) {
        if !self.context.is_built() {
            let hot =
                Self::build_hot_set(&self.spaces, self.vertex_base, self.config.context_hot_hubs);
            self.context.install_hot(hot);
        }
    }

    /// [`BingoEngine::context_fingerprint`] through a shared reference:
    /// serves hot hubs installed by an earlier [`BingoEngine::warm_context`]
    /// and falls back to an on-demand cold build otherwise. Unlike the
    /// `&mut` entry point it never (re)builds the hot set — readers that
    /// race a structural invalidation degrade to cold builds until the
    /// next `warm_context`, they never observe a stale fingerprint.
    pub fn context_fingerprint_shared(&self, v: VertexId) -> Option<(Arc<Vec<VertexId>>, bool)> {
        let i = self.local(v)?;
        if let Some(fp) = self.context.get(v) {
            return Some((fp, true));
        }
        self.context.count_cold_build();
        Some((Arc::new(Self::fingerprint_of(&self.spaces[i])), false))
    }

    /// Monotonic activity counters of the hot-hub context provider.
    pub fn context_provider_stats(&self) -> ContextProviderStats {
        self.context.stats()
    }

    /// Invalidate context fingerprints after a structural mutation of the
    /// out-adjacency of `touched` (owned, deduplicated source vertices).
    /// With [`BingoConfig::scoped_context_invalidation`] the eviction is
    /// scoped: only the touched vertices' snapshots drop, and evicted hot
    /// hubs are re-encoded in place, so untouched hubs keep their shared
    /// `Arc`s across structural epochs. With the knob off (the measurable
    /// baseline) the whole hot set flushes and is rebuilt lazily.
    fn invalidate_context_for(&mut self, touched: &[VertexId]) {
        if !self.config.scoped_context_invalidation {
            self.context.invalidate();
            return;
        }
        if !self.context.is_built() {
            // Nothing cached yet — the first warm_context builds from the
            // already-updated adjacency.
            return;
        }
        for v in self.context.invalidate_vertices(touched) {
            if let Some(i) = self.local(v) {
                let fingerprint = Arc::new(Self::fingerprint_of(&self.spaces[i]));
                self.context.refresh_hot(v, fingerprint);
            }
        }
    }

    /// Streaming edge insertion (`O(K)` for the affected vertex).
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, bias: Bias) -> Result<()> {
        if (dst as usize) >= self.global_vertices {
            return Err(BingoError::VertexOutOfRange {
                vertex: dst,
                num_vertices: self.global_vertices,
            });
        }
        self.vertex_space_mut(src)?.insert(dst, bias)?;
        self.num_edges += 1;
        self.stats.insertions += 1;
        self.invalidate_context_for(&[src]);
        Ok(())
    }

    /// Streaming edge deletion (`O(K)` for the affected vertex).
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId) -> Result<()> {
        self.vertex_space_mut(src)?.delete(dst)?;
        self.num_edges -= 1;
        self.stats.deletions += 1;
        self.invalidate_context_for(&[src]);
        Ok(())
    }

    /// Streaming bias update of the edge `(src, dst)`.
    ///
    /// Context fingerprints stay valid: they are membership sets over the
    /// neighbor ids, which a bias change never alters.
    pub fn update_bias(&mut self, src: VertexId, dst: VertexId, bias: Bias) -> Result<()> {
        self.vertex_space_mut(src)?.update_bias(dst, bias)
    }

    /// Add a new isolated vertex and return its id. Vertex insertion is one
    /// of the "other graph updates" of §4.2 that reduce to trivial structure
    /// growth.
    /// # Panics
    ///
    /// Panics on a shard engine whose owned range does not end at the
    /// global vertex count: growing such a shard would claim ids owned by
    /// the next shard. Vertex insertion on sharded deployments belongs to
    /// the last shard (or a re-partitioning), not an interior one.
    pub fn add_vertex(&mut self) -> VertexId {
        assert_eq!(
            self.vertex_base + self.spaces.len(),
            self.global_vertices,
            "add_vertex on an interior shard engine would steal ids from the next shard"
        );
        self.spaces
            .push(VertexSpace::build(Default::default(), self.config));
        self.global_vertices = self.vertex_base + self.spaces.len();
        (self.vertex_base + self.spaces.len() - 1) as VertexId
    }

    /// Delete vertex `v` by removing all of its **out-edges** (the paper
    /// implements vertex deletion through edge deletions). The vertex id
    /// stays valid but isolated; edges pointing *at* `v` from other vertices
    /// are untouched, matching how the 1-D-partitioned GPU implementation
    /// handles it (each owner only touches its own adjacency).
    ///
    /// Returns the number of edges removed.
    pub fn delete_vertex_out_edges(&mut self, v: VertexId) -> Result<usize> {
        let space = self.vertex_space_mut(v)?;
        let dsts: Vec<VertexId> = space.adjacency().edges().iter().map(|e| e.dst).collect();
        let outcome = space.apply_batch(&[], &dsts);
        self.num_edges -= outcome.deleted;
        self.stats.deletions += outcome.deleted as u64;
        self.invalidate_context_for(&[v]);
        Ok(outcome.deleted)
    }

    /// Apply a single update event in streaming mode.
    pub fn apply_event(&mut self, event: &UpdateEvent) -> Result<()> {
        match *event {
            UpdateEvent::Insert { src, dst, bias } => self.insert_edge(src, dst, bias),
            UpdateEvent::Delete { src, dst } => self.delete_edge(src, dst),
            UpdateEvent::UpdateBias { src, dst, bias } => self.update_bias(src, dst, bias),
        }
    }

    /// Apply every event of a batch one at a time (streaming ingestion).
    /// Deletions of missing edges are skipped. Returns the number of events
    /// applied.
    pub fn apply_streaming(&mut self, batch: &UpdateBatch) -> usize {
        let mut applied = 0;
        for event in batch.events() {
            if self.apply_event(event).is_ok() {
                applied += 1;
            }
        }
        applied
    }

    /// Apply a batch of updates in parallel (§5.2): events are grouped by
    /// source vertex, every touched vertex ingests its insertions and
    /// deletions, and each vertex rebuilds its sampling space exactly once.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> BatchOutcome {
        // CPU-side reordering step of Figure 10(a): per-vertex work lists.
        type VertexOps = Option<(Vec<(VertexId, Bias)>, Vec<VertexId>)>;
        let mut per_vertex: Vec<VertexOps> = vec![None; self.spaces.len()];
        // The vertices whose neighbor-id membership this batch changes —
        // exactly the fingerprint-invalidation scope (bias-only touches
        // keep membership intact and stay out of it).
        let mut structural_srcs: Vec<VertexId> = Vec::new();
        let mut structural = false;
        for event in batch.events() {
            let Some(src) = self.local(event.src()) else {
                continue;
            };
            // Destinations are validated like insert_edge does on the
            // streaming path: an insert to a vertex outside the global id
            // space would create an edge no walk could ever follow.
            let valid_dst = |dst: VertexId| (dst as usize) < self.global_vertices;
            let entry = per_vertex[src].get_or_insert_with(|| (Vec::new(), Vec::new()));
            match *event {
                UpdateEvent::Insert { dst, bias, .. } => {
                    if valid_dst(dst) {
                        entry.0.push((dst, bias));
                        structural = true;
                        structural_srcs.push(event.src());
                    }
                }
                UpdateEvent::Delete { dst, .. } => {
                    entry.1.push(dst);
                    structural = true;
                    structural_srcs.push(event.src());
                }
                UpdateEvent::UpdateBias { dst, bias, .. } => {
                    // Reweights keep the neighbor-id set intact, so they do
                    // not count as structural for fingerprint invalidation.
                    if valid_dst(dst) {
                        entry.1.push(dst);
                        entry.0.push((dst, bias));
                    }
                }
            }
        }

        // Parallel per-vertex ingestion (the GPU kernel launch). Most
        // vertices are untouched by a typical batch (`ops` is `None`), so
        // the per-item cost is near zero for the bulk of the scan —
        // `with_min_len` keeps the splitter from paying task-dispatch
        // overhead on sub-thousand slices of mostly-empty work.
        let outcomes: Vec<_> = self
            .spaces
            .par_iter_mut()
            .zip(per_vertex.par_iter())
            .with_min_len(1024)
            .filter_map(|(space, ops)| {
                ops.as_ref()
                    .map(|(inserts, deletes)| space.apply_batch(inserts, deletes))
            })
            .collect();

        let mut total = BatchOutcome {
            touched_vertices: outcomes.len(),
            ..BatchOutcome::default()
        };
        for o in outcomes {
            total.inserted += o.inserted;
            total.deleted += o.deleted;
            total.missing_deletes += o.missing_deletes;
            if o.full_rebuild {
                total.full_rebuilds += 1;
            }
        }
        self.num_edges += total.inserted;
        self.num_edges -= total.deleted;
        self.stats.insertions += total.inserted as u64;
        self.stats.deletions += total.deleted as u64;
        self.stats.batches += 1;
        if structural {
            // Inserts/deletes change neighbor-id membership, so cached
            // fingerprints of touched vertices are stale. Empty flushes and
            // bias-only batches leave the hot set intact — epoch ticks
            // without adjacency changes must not evict it. The batch knows
            // exactly which source vertices it touched, so invalidation is
            // scoped to them (`split_by_owner`-style locality) instead of
            // flushing every hub the batch never went near.
            structural_srcs.sort_unstable();
            structural_srcs.dedup();
            self.invalidate_context_for(&structural_srcs);
        }
        total
    }

    /// Aggregate memory report over all vertices (Figure 11).
    ///
    /// The parallel `reduce` requires an associative combine (see the
    /// `rayon` shim docs): [`MemoryReport::merge`] is element-wise integer
    /// addition of byte and group counters, which is associative and
    /// commutative, so the chunked tree-combine is exact.
    pub fn memory_report(&self) -> MemoryReport {
        self.spaces
            .par_iter()
            .with_min_len(256)
            .map(VertexSpace::memory_report)
            .reduce(MemoryReport::default, |mut a, b| {
                a.merge(&b);
                a
            })
    }

    /// Aggregate group-conversion statistics (Table 4).
    pub fn conversion_matrix(&self) -> ConversionMatrix {
        let mut total = ConversionMatrix::new();
        for s in &self.spaces {
            total.merge(s.conversions());
        }
        total
    }

    /// Reconstruct a [`DynamicGraph`] snapshot of the engine's current state
    /// (used by tests and by baselines that need a plain graph).
    pub fn snapshot_graph(&self) -> DynamicGraph {
        let mut g = DynamicGraph::new(self.global_vertices);
        for (i, space) in self.spaces.iter().enumerate() {
            let v = (self.vertex_base + i) as VertexId;
            for e in space.adjacency().edges() {
                g.insert_edge(v, e.dst, e.bias)
                    .expect("engine state is a valid graph");
            }
        }
        g
    }

    /// Verify the structural invariants of every vertex space. Intended for
    /// tests; returns the first violation found.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        for (i, s) in self.spaces.iter().enumerate() {
            let v = self.vertex_base + i;
            s.check_invariants()
                .map_err(|e| format!("vertex {v}: {e}"))?;
        }
        let edges: usize = self.spaces.iter().map(VertexSpace::degree).sum();
        if edges != self.num_edges {
            return Err(format!(
                "edge counter {} != sum of degrees {edges}",
                self.num_edges
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::generators::{BiasDistribution, GraphGenerator};
    use bingo_graph::updates::{UpdateKind, UpdateStreamBuilder};
    use bingo_sampling::rng::Pcg64;
    use bingo_sampling::stats::{empirical_distribution, max_abs_deviation};
    use rand::SeedableRng;

    fn engine_from_running_example(config: BingoConfig) -> BingoEngine {
        BingoEngine::build(&running_example(), config).unwrap()
    }

    fn random_graph(seed: u64, vertices: usize, edges: usize) -> DynamicGraph {
        let mut rng = Pcg64::seed_from_u64(seed);
        GraphGenerator::ErdosRenyi { vertices, edges }
            .generate(BiasDistribution::UniformInt { lo: 1, hi: 63 }, &mut rng)
    }

    #[test]
    fn build_matches_graph_shape() {
        let engine = engine_from_running_example(BingoConfig::default());
        assert_eq!(engine.num_vertices(), 6);
        assert_eq!(engine.num_edges(), 8);
        assert_eq!(engine.degree(2), 3);
        assert_eq!(engine.degree(5), 0);
        assert!(engine.has_edge(2, 4));
        assert!(!engine.has_edge(4, 2));
        assert_eq!(engine.edge_bias(2, 1), Some(5.0));
        assert_eq!(engine.edge_bias(2, 9), None);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn sampling_distribution_matches_biases() {
        let engine = engine_from_running_example(BingoConfig::default());
        let mut rng = Pcg64::seed_from_u64(1);
        // Vertex 2: neighbors 1, 4, 5 with biases 5, 4, 3.
        let freq = empirical_distribution(
            |r| match engine.sample_neighbor(2, r).unwrap() {
                1 => 0,
                4 => 1,
                5 => 2,
                other => panic!("unexpected neighbor {other}"),
            },
            3,
            300_000,
            &mut rng,
        );
        assert!(max_abs_deviation(&freq, &[5.0 / 12.0, 4.0 / 12.0, 3.0 / 12.0]) < 0.01);
    }

    #[test]
    fn sampling_isolated_or_missing_vertex_returns_none() {
        let engine = engine_from_running_example(BingoConfig::default());
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(engine.sample_neighbor(5, &mut rng), None);
        assert_eq!(engine.sample_neighbor(100, &mut rng), None);
    }

    #[test]
    fn streaming_updates_keep_engine_consistent() {
        let mut engine = engine_from_running_example(BingoConfig::default());
        engine.insert_edge(2, 3, Bias::from_int(3)).unwrap();
        assert_eq!(engine.num_edges(), 9);
        assert!(engine.has_edge(2, 3));
        engine.delete_edge(2, 1).unwrap();
        assert_eq!(engine.num_edges(), 8);
        assert!(!engine.has_edge(2, 1));
        engine.update_bias(2, 4, Bias::from_int(9)).unwrap();
        assert_eq!(engine.edge_bias(2, 4), Some(9.0));
        engine.check_invariants().unwrap();
        assert!(engine.delete_edge(2, 1).is_err());
        assert!(engine.insert_edge(2, 99, Bias::from_int(1)).is_err());
        assert!(engine.insert_edge(99, 2, Bias::from_int(1)).is_err());
    }

    #[test]
    fn streaming_and_batched_ingestion_agree() {
        let graph = random_graph(3, 100, 1200);
        let mut setup = graph.clone();
        let mut rng = Pcg64::seed_from_u64(4);
        let batch =
            UpdateStreamBuilder::new(UpdateKind::Mixed, 300).build(&mut setup, 400, &mut rng);

        let mut streaming = BingoEngine::build(&setup, BingoConfig::default()).unwrap();
        let mut batched = BingoEngine::build(&setup, BingoConfig::default()).unwrap();
        let applied = streaming.apply_streaming(&batch);
        let outcome = batched.apply_batch(&batch);
        assert_eq!(applied, outcome.inserted + outcome.deleted);
        assert_eq!(streaming.num_edges(), batched.num_edges());
        streaming.check_invariants().unwrap();
        batched.check_invariants().unwrap();

        // Per-vertex degrees and destination multisets must agree. (Exact
        // biases can differ when duplicate (src, dst) edges with different
        // biases exist: the paper's batched mode deletes "the earlier
        // version first", which is not always the copy streaming picks.)
        for v in 0..streaming.num_vertices() as VertexId {
            assert_eq!(streaming.degree(v), batched.degree(v), "degree of {v}");
            let dsts = |e: &BingoEngine| {
                let mut d: Vec<VertexId> = e
                    .vertex_space(v)
                    .unwrap()
                    .adjacency()
                    .edges()
                    .iter()
                    .map(|edge| edge.dst)
                    .collect();
                d.sort_unstable();
                d
            };
            assert_eq!(dsts(&streaming), dsts(&batched), "neighbors of {v}");
        }
    }

    #[test]
    fn batched_outcome_counts_are_consistent() {
        let graph = random_graph(5, 60, 600);
        let mut setup = graph.clone();
        let mut rng = Pcg64::seed_from_u64(6);
        let batch =
            UpdateStreamBuilder::new(UpdateKind::Mixed, 200).build(&mut setup, 300, &mut rng);
        let mut engine = BingoEngine::build(&setup, BingoConfig::default()).unwrap();
        let before = engine.num_edges();
        let outcome = engine.apply_batch(&batch);
        assert_eq!(outcome.inserted, batch.num_insertions());
        assert_eq!(
            outcome.deleted + outcome.missing_deletes,
            batch.num_deletions()
        );
        assert_eq!(
            engine.num_edges(),
            before + outcome.inserted - outcome.deleted
        );
        assert!(outcome.touched_vertices > 0);
        assert_eq!(engine.stats().batches, 1);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn sampling_after_updates_matches_new_biases() {
        let mut engine = engine_from_running_example(BingoConfig::default());
        engine.delete_edge(2, 5).unwrap();
        engine.insert_edge(2, 3, Bias::from_int(11)).unwrap();
        // Vertex 2 now has neighbors 1 (5), 4 (4), 3 (11) → total 20.
        let mut rng = Pcg64::seed_from_u64(8);
        let freq = empirical_distribution(
            |r| match engine.sample_neighbor(2, r).unwrap() {
                1 => 0,
                4 => 1,
                3 => 2,
                other => panic!("unexpected neighbor {other}"),
            },
            3,
            300_000,
            &mut rng,
        );
        assert!(max_abs_deviation(&freq, &[0.25, 0.2, 0.55]) < 0.01);
    }

    #[test]
    fn empty_engine_supports_growth() {
        let mut engine = BingoEngine::empty(4, BingoConfig::default());
        assert_eq!(engine.num_edges(), 0);
        engine.insert_edge(0, 1, Bias::from_int(2)).unwrap();
        engine.insert_edge(0, 2, Bias::from_int(2)).unwrap();
        let mut rng = Pcg64::seed_from_u64(10);
        let n = engine.sample_neighbor(0, &mut rng).unwrap();
        assert!(n == 1 || n == 2);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_graph_round_trips() {
        let mut engine = engine_from_running_example(BingoConfig::default());
        engine.insert_edge(4, 0, Bias::from_int(2)).unwrap();
        let snapshot = engine.snapshot_graph();
        assert_eq!(snapshot.num_edges(), engine.num_edges());
        assert!(snapshot.has_edge(4, 0));
        let rebuilt = BingoEngine::build(&snapshot, BingoConfig::default()).unwrap();
        assert_eq!(rebuilt.num_edges(), engine.num_edges());
    }

    #[test]
    fn memory_report_adaptive_smaller_than_baseline() {
        let graph = random_graph(12, 200, 4000);
        let adaptive = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let baseline = BingoEngine::build(&graph, BingoConfig::baseline()).unwrap();
        let a = adaptive.memory_report();
        let b = baseline.memory_report();
        assert!(a.sampling_bytes() < b.sampling_bytes());
        assert!(a.group_counts.iter().sum::<usize>() > 0);
    }

    #[test]
    fn update_bias_events_in_batches() {
        let mut engine = engine_from_running_example(BingoConfig::default());
        let batch = UpdateBatch::new(vec![UpdateEvent::UpdateBias {
            src: 2,
            dst: 4,
            bias: Bias::from_int(40),
        }]);
        let outcome = engine.apply_batch(&batch);
        assert_eq!(outcome.inserted, 1);
        assert_eq!(outcome.deleted, 1);
        assert_eq!(engine.edge_bias(2, 4), Some(40.0));
        assert_eq!(engine.degree(2), 3);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn add_vertex_and_delete_vertex_out_edges() {
        let mut engine = engine_from_running_example(BingoConfig::default());
        let v = engine.add_vertex();
        assert_eq!(v, 6);
        assert_eq!(engine.num_vertices(), 7);
        engine.insert_edge(v, 2, Bias::from_int(3)).unwrap();
        assert_eq!(engine.degree(v), 1);

        // Deleting vertex 2's out-edges empties its space but keeps the id.
        let removed = engine.delete_vertex_out_edges(2).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(engine.degree(2), 0);
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(engine.sample_neighbor(2, &mut rng), None);
        // Edges pointing at vertex 2 are untouched.
        assert!(engine.has_edge(0, 2));
        engine.check_invariants().unwrap();
        // Deleting an already-isolated vertex's edges removes nothing.
        assert_eq!(engine.delete_vertex_out_edges(2).unwrap(), 0);
        assert!(engine.delete_vertex_out_edges(99).is_err());
    }

    #[test]
    fn range_engine_owns_only_its_slice() {
        let graph = random_graph(21, 90, 900);
        let whole = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let mid = BingoEngine::build_range(&graph, 30..60, BingoConfig::default()).unwrap();

        assert_eq!(mid.num_vertices(), 90);
        assert_eq!(mid.num_owned(), 30);
        assert_eq!(mid.vertex_base(), 30);
        assert_eq!(mid.owned_range(), 30..60);
        mid.check_invariants().unwrap();

        let mut owned_edges = 0;
        for v in 0..90u32 {
            if (30..60).contains(&(v as usize)) {
                assert!(mid.owns(v));
                assert_eq!(mid.degree(v), whole.degree(v), "degree of {v}");
                owned_edges += mid.degree(v);
            } else {
                assert!(!mid.owns(v));
                assert_eq!(mid.degree(v), 0);
                let mut rng = Pcg64::seed_from_u64(1);
                assert_eq!(mid.sample_neighbor(v, &mut rng), None);
            }
        }
        assert_eq!(mid.num_edges(), owned_edges);

        // Sampling an owned vertex returns one of its true neighbors.
        let v = (30..60u32).max_by_key(|&v| whole.degree(v)).unwrap();
        if whole.degree(v) > 0 {
            let mut rng = Pcg64::seed_from_u64(2);
            let next = mid.sample_neighbor(v, &mut rng).unwrap();
            assert!(whole.has_edge(v, next));
        }

        // Mutations are accepted for owned sources (global dst ids are fine)
        // and rejected for non-owned sources.
        let mut mid = mid;
        mid.insert_edge(35, 89, Bias::from_int(7)).unwrap();
        assert!(mid.has_edge(35, 89));
        assert!(mid.insert_edge(5, 35, Bias::from_int(1)).is_err());
        mid.check_invariants().unwrap();

        // A snapshot round-trips through the global id space.
        let snap = mid.snapshot_graph();
        assert_eq!(snap.num_vertices(), 90);
        assert!(snap.has_edge(35, 89));
    }

    #[test]
    fn range_engines_partition_all_edges() {
        let graph = random_graph(22, 100, 1500);
        let shards: Vec<BingoEngine> = [0..25, 25..50, 50..75, 75..100]
            .into_iter()
            .map(|r| BingoEngine::build_range(&graph, r, BingoConfig::default()).unwrap())
            .collect();
        let total: usize = shards.iter().map(BingoEngine::num_edges).sum();
        assert_eq!(total, graph.num_edges());
        // Batched updates only touch the owning shard.
        let mut shards = shards;
        let batch = UpdateBatch::new(vec![
            UpdateEvent::Insert {
                src: 10,
                dst: 90,
                bias: Bias::from_int(4),
            },
            UpdateEvent::Insert {
                src: 80,
                dst: 3,
                bias: Bias::from_int(2),
            },
        ]);
        let outcomes: Vec<_> = shards.iter_mut().map(|s| s.apply_batch(&batch)).collect();
        assert_eq!(outcomes[0].inserted, 1);
        assert_eq!(outcomes[1].inserted, 0);
        assert_eq!(outcomes[2].inserted, 0);
        assert_eq!(outcomes[3].inserted, 1);
        assert!(shards[0].has_edge(10, 90));
        assert!(shards[3].has_edge(80, 3));
    }

    #[test]
    fn context_fingerprints_cache_hot_hubs_per_generation() {
        let graph = random_graph(31, 120, 2400);
        let mut engine = BingoEngine::build(
            &graph,
            BingoConfig {
                context_hot_hubs: 8,
                ..BingoConfig::default()
            },
        )
        .unwrap();
        let hub = (0..120u32).max_by_key(|&v| engine.degree(v)).unwrap();
        let cold = (0..120u32).min_by_key(|&v| engine.degree(v)).unwrap();
        assert_ne!(hub, cold);

        // The hub is served from the hot set, as the same Arc each time.
        let (fp1, hot1) = engine.context_fingerprint(hub).unwrap();
        let (fp2, hot2) = engine.context_fingerprint(hub).unwrap();
        assert!(hot1 && hot2, "top-degree vertex is in the hot set");
        assert!(
            Arc::ptr_eq(&fp1, &fp2),
            "hot snapshots are shared, not rebuilt"
        );
        assert_eq!(Some(fp1.as_ref().clone()), engine.neighbor_fingerprint(hub));

        // A min-degree vertex is encoded on demand.
        let (_, hot_cold) = engine.context_fingerprint(cold).unwrap();
        assert!(!hot_cold, "min-degree vertex is not in an 8-entry hot set");

        let stats = engine.context_provider_stats();
        assert_eq!(stats.hot_rebuilds, 1);
        assert_eq!(stats.hot_hits, 2);
        assert_eq!(stats.cold_builds, 1);

        // A mutation invalidates the touched vertex's snapshot; scoped
        // invalidation refreshes it in place — no whole-set rebuild.
        let dst = (0..120u32).find(|&d| !engine.has_edge(hub, d)).unwrap();
        engine.insert_edge(hub, dst, Bias::from_int(3)).unwrap();
        let (fp3, hot3) = engine.context_fingerprint(hub).unwrap();
        assert!(hot3);
        assert!(!Arc::ptr_eq(&fp1, &fp3), "stale snapshot dropped");
        assert!(fp3.binary_search(&dst).is_ok(), "new edge visible");
        let stats = engine.context_provider_stats();
        assert_eq!(stats.hot_rebuilds, 1, "scoped eviction, not a flush");
        assert_eq!(stats.scoped_evictions, 1);
        assert_eq!(stats.hot_refreshes, 1);

        // Batched updates invalidate too.
        let batch = UpdateBatch::new(vec![UpdateEvent::Delete { src: hub, dst }]);
        engine.apply_batch(&batch);
        let (fp4, _) = engine.context_fingerprint(hub).unwrap();
        assert!(fp4.binary_search(&dst).is_err(), "deleted edge gone");
        let rebuilds = engine.context_provider_stats().hot_rebuilds;

        // Bias-only changes keep the cache: membership is unchanged, so
        // both the streaming reweight and a bias-only batch must serve the
        // same Arc without a rebuild.
        let neighbor = fp4[0];
        engine
            .update_bias(hub, neighbor, Bias::from_int(7))
            .unwrap();
        let (fp5, _) = engine.context_fingerprint(hub).unwrap();
        assert!(
            Arc::ptr_eq(&fp4, &fp5),
            "streaming reweight keeps snapshots"
        );
        engine.apply_batch(&UpdateBatch::new(vec![UpdateEvent::UpdateBias {
            src: hub,
            dst: neighbor,
            bias: Bias::from_int(9),
        }]));
        let (fp6, _) = engine.context_fingerprint(hub).unwrap();
        assert!(Arc::ptr_eq(&fp4, &fp6), "bias-only batch keeps snapshots");
        assert_eq!(engine.context_provider_stats().hot_rebuilds, rebuilds);

        // Non-owned vertices have no fingerprint.
        let mut shard = BingoEngine::build_range(&graph, 0..10, BingoConfig::default()).unwrap();
        assert!(shard.context_fingerprint(50).is_none());
    }

    #[test]
    fn scoped_invalidation_keeps_untouched_hub_snapshots() {
        let graph = random_graph(77, 200, 4000);
        let config = BingoConfig {
            context_hot_hubs: 16,
            ..BingoConfig::default()
        };
        let mut scoped = BingoEngine::build(&graph, config).unwrap();
        let mut wholesale = BingoEngine::build(
            &graph,
            BingoConfig {
                scoped_context_invalidation: false,
                ..config
            },
        )
        .unwrap();

        let mut by_degree: Vec<VertexId> = (0..200u32).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(scoped.degree(v)));
        let (hub_a, hub_b) = (by_degree[0], by_degree[1]);
        let (fp_a, hot_a) = scoped.context_fingerprint(hub_a).unwrap();
        let (_, hot_b) = scoped.context_fingerprint(hub_b).unwrap();
        assert!(hot_a && hot_b, "both top hubs in a 16-entry hot set");
        wholesale.warm_context();

        // A batch touching only hub_b must leave hub_a's Arc untouched
        // under scoped invalidation — and flush it under wholesale.
        let dst = (0..200u32).find(|&d| !scoped.has_edge(hub_b, d)).unwrap();
        let batch = UpdateBatch::new(vec![UpdateEvent::Insert {
            src: hub_b,
            dst,
            bias: Bias::from_int(2),
        }]);
        scoped.apply_batch(&batch);
        wholesale.apply_batch(&batch);

        let (fp_a2, hot_a2) = scoped.context_fingerprint_shared(hub_a).unwrap();
        assert!(hot_a2, "untouched hub stays hot without a re-warm");
        assert!(Arc::ptr_eq(&fp_a, &fp_a2), "untouched snapshot survives");
        let (fp_b2, hot_b2) = scoped.context_fingerprint_shared(hub_b).unwrap();
        assert!(hot_b2, "touched hub was refreshed in place");
        assert!(fp_b2.binary_search(&dst).is_ok(), "refresh sees the insert");

        // Wholesale flush: until the next warm_context, even the untouched
        // hub degrades to a cold build — the miss cost scoping removes.
        let (_, wholesale_hot) = wholesale.context_fingerprint_shared(hub_a).unwrap();
        assert!(!wholesale_hot, "wholesale flush dropped the untouched hub");

        let s = scoped.context_provider_stats();
        assert_eq!(s.hot_rebuilds, 1);
        assert_eq!(s.scoped_evictions, 1);
        assert_eq!(s.hot_refreshes, 1);
        let w = wholesale.context_provider_stats();
        assert_eq!(w.scoped_evictions, 0, "knob off never scopes");
    }

    #[test]
    fn context_hot_hubs_zero_disables_prebuilding() {
        let graph = random_graph(32, 40, 400);
        let mut engine = BingoEngine::build(
            &graph,
            BingoConfig {
                context_hot_hubs: 0,
                ..BingoConfig::default()
            },
        )
        .unwrap();
        let hub = (0..40u32).max_by_key(|&v| engine.degree(v)).unwrap();
        let (_, hot) = engine.context_fingerprint(hub).unwrap();
        assert!(!hot, "no hot set when disabled");
        assert_eq!(engine.context_provider_stats().cold_builds, 1);
    }

    #[test]
    fn conversion_matrix_aggregates_across_vertices() {
        let graph = random_graph(15, 80, 800);
        let mut setup = graph.clone();
        let mut rng = Pcg64::seed_from_u64(16);
        let batch =
            UpdateStreamBuilder::new(UpdateKind::Mixed, 200).build(&mut setup, 400, &mut rng);
        let mut engine = BingoEngine::build(&setup, BingoConfig::default()).unwrap();
        engine.apply_streaming(&batch);
        let conversions = engine.conversion_matrix();
        assert!(conversions.checks > 0);
    }
}

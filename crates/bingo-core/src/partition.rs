//! 1-D graph partitioning and walker forwarding (§9.1).
//!
//! Multi-GPU Bingo distributes the graph by 1-D (per-vertex) partitioning
//! and moves *walkers* between devices rather than shipping sampling
//! structures. This module reproduces the same scheme at thread scale: the
//! vertex range is split into contiguous partitions, each partition owns a
//! [`BingoEngine`] over its local vertices, and a sampling query for a
//! non-local vertex is "forwarded" to the owning partition (counted, so the
//! communication volume the paper discusses is observable).

use crate::config::BingoConfig;
use crate::engine::BingoEngine;
use crate::Result;
use bingo_graph::{Bias, DynamicGraph, VertexId};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maps vertices to partitions by contiguous ranges (1-D partitioning).
///
/// Two flavors share this type: the default *uniform* split (equal vertex
/// counts per partition, computed arithmetically) and an *explicit* split
/// with stored boundaries, produced by [`Partitioner::balanced_by_degree`]
/// to equalize per-partition edge (and therefore walk-step) load on skewed
/// graphs. Cloning is cheap in both cases — explicit boundaries are held
/// behind an `Arc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioner {
    num_vertices: usize,
    num_partitions: usize,
    /// Explicit partition boundaries: `starts[p] .. starts[p + 1]` is the
    /// range of partition `p` (`len == num_partitions + 1`). `None` means
    /// uniform ranges computed on the fly.
    starts: Option<std::sync::Arc<[usize]>>,
}

impl Partitioner {
    /// Create a uniform partitioner for `num_vertices` vertices over
    /// `num_partitions` partitions (at least 1).
    pub fn new(num_vertices: usize, num_partitions: usize) -> Self {
        Partitioner {
            num_vertices,
            num_partitions: num_partitions.max(1),
            starts: None,
        }
    }

    /// Create a degree-balanced contiguous split: partition boundaries are
    /// chosen greedily so each partition's total out-degree approaches the
    /// fair share, instead of each partition's *vertex count*. On power-law
    /// graphs (where low ids concentrate the edges) this spreads walk-step
    /// load far more evenly across shards than the uniform split.
    pub fn balanced_by_degree(graph: &DynamicGraph, num_partitions: usize) -> Self {
        let weights: Vec<usize> = (0..graph.num_vertices())
            .map(|v| graph.degree(v as VertexId))
            .collect();
        Self::balanced_by_weight(&weights, num_partitions)
    }

    /// Create a visit-frequency-balanced contiguous split: a cheap, seeded
    /// warm-up walk pass over `graph` observes where biased walkers
    /// actually *depart from* — hub-adjacent vertices absorb
    /// disproportionately many steps even after degree balancing, because
    /// walkers funnel through them — and feeds the observed per-vertex
    /// departure counts into [`Partitioner::balanced_by_weight`].
    ///
    /// The pass runs one short biased walk per vertex directly on the
    /// dynamic graph (cumulative-bias scan, no engine build), with every
    /// walk's RNG derived from `seed` and the start vertex alone, so the
    /// split is bit-identical for a given `(graph, num_partitions, seed)`
    /// regardless of thread count. Counts are +1-smoothed so isolated
    /// vertices still carry weight and boundaries stay well-defined on
    /// sparse graphs.
    pub fn balanced_by_visits(graph: &DynamicGraph, num_partitions: usize, seed: u64) -> Self {
        /// Steps per warm-up walk: enough to diffuse a walker past its
        /// immediate neighborhood, cheap enough to run from every vertex.
        const WARMUP_WALK_LEN: usize = 8;
        let n = graph.num_vertices();
        let mut departures = vec![1usize; n];
        for start in 0..n {
            let mut expander = bingo_sampling::rng::SplitMix64::new(
                seed ^ (start as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut rng = bingo_sampling::rng::Pcg64::new(
                ((expander.next() as u128) << 64) | expander.next() as u128,
                expander.next() as u128,
            );
            let mut current = start as VertexId;
            for _ in 0..WARMUP_WALK_LEN {
                let Ok(adjacency) = graph.neighbors(current) else {
                    break;
                };
                let edges = adjacency.edges();
                let total: f64 = edges.iter().map(|e| e.bias.value()).sum();
                // A non-finite or non-positive bias mass means there is
                // nothing to sample from; the walk ends at this vertex.
                if !total.is_finite() || total <= 0.0 {
                    break;
                }
                departures[current as usize] += 1;
                // Cumulative-bias linear scan with a [0, 1) draw from the
                // walk's own stream.
                let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let mut remaining = unit * total;
                let mut next = edges[edges.len() - 1].dst;
                for edge in edges {
                    remaining -= edge.bias.value();
                    if remaining < 0.0 {
                        next = edge.dst;
                        break;
                    }
                }
                current = next;
            }
        }
        Self::balanced_by_weight(&departures, num_partitions)
    }

    /// Create a contiguous split balancing arbitrary per-vertex weights
    /// (the primitive behind [`Partitioner::balanced_by_degree`] and
    /// [`Partitioner::balanced_by_visits`]).
    pub fn balanced_by_weight(weights: &[usize], num_partitions: usize) -> Self {
        let n = weights.len();
        let p = num_partitions.max(1);
        let total: usize = weights.iter().sum();
        let mut starts = Vec::with_capacity(p + 1);
        starts.push(0usize);
        let mut assigned = 0usize;
        let mut v = 0usize;
        for part in 0..p - 1 {
            let remaining_parts = p - part;
            let target = (total - assigned).div_ceil(remaining_parts);
            let mut here = 0usize;
            // Take at least one vertex (when any remain), then stop at the
            // first vertex that would overshoot the fair share.
            while v < n && (here == 0 || here + weights[v] <= target) {
                here += weights[v];
                v += 1;
            }
            assigned += here;
            starts.push(v);
        }
        starts.push(n);
        Partitioner {
            num_vertices: n,
            num_partitions: p,
            starts: Some(starts.into()),
        }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The partition owning vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        if self.num_vertices == 0 {
            return 0;
        }
        match &self.starts {
            Some(starts) => starts
                .partition_point(|&s| s <= v as usize)
                .saturating_sub(1)
                .min(self.num_partitions - 1),
            None => {
                let per = self.num_vertices.div_ceil(self.num_partitions);
                ((v as usize) / per).min(self.num_partitions - 1)
            }
        }
    }

    /// The contiguous vertex range `[start, end)` of partition `p`.
    pub fn range(&self, p: usize) -> (usize, usize) {
        match &self.starts {
            Some(starts) => (starts[p], starts[p + 1]),
            None => {
                let per = self.num_vertices.div_ceil(self.num_partitions);
                let start = (p * per).min(self.num_vertices);
                let end = ((p + 1) * per).min(self.num_vertices);
                (start, end)
            }
        }
    }
}

/// A Bingo deployment partitioned across several engines, with walker
/// forwarding between partitions.
#[derive(Debug)]
pub struct PartitionedEngine {
    partitioner: Partitioner,
    engines: Vec<BingoEngine>,
    forwards: AtomicU64,
    local_hits: AtomicU64,
}

impl PartitionedEngine {
    /// Partition `graph` into `num_partitions` engines.
    ///
    /// Every engine keeps the full vertex-id space (so destination ids stay
    /// valid) but only stores the out-edges of the vertices it owns — the
    /// 1-D edge partitioning the paper adopts from KnightKing.
    pub fn build(graph: &DynamicGraph, num_partitions: usize, config: BingoConfig) -> Result<Self> {
        let partitioner = Partitioner::new(graph.num_vertices(), num_partitions);
        let mut shards: Vec<DynamicGraph> = (0..partitioner.num_partitions())
            .map(|_| DynamicGraph::new(graph.num_vertices()))
            .collect();
        for (src, edge) in graph.edges() {
            let owner = partitioner.owner(src);
            shards[owner].insert_edge(src, edge.dst, edge.bias)?;
        }
        let engines = shards
            .iter()
            .map(|shard| BingoEngine::build(shard, config))
            .collect::<Result<Vec<_>>>()?;
        Ok(PartitionedEngine {
            partitioner,
            engines,
            forwards: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
        })
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner.clone()
    }

    /// The per-partition engines.
    pub fn engines(&self) -> &[BingoEngine] {
        &self.engines
    }

    /// Total number of cross-partition walker forwards observed so far.
    pub fn forwards(&self) -> u64 {
        // relaxed-ok: stats counter read for reporting.
        self.forwards.load(Ordering::Relaxed)
    }

    /// Total number of partition-local sampling queries observed so far.
    pub fn local_hits(&self) -> u64 {
        // relaxed-ok: stats counter read for reporting.
        self.local_hits.load(Ordering::Relaxed)
    }

    /// Sample a neighbor of `v` from the partition that owns it, counting a
    /// forward when the query originates from a different partition.
    pub fn sample_neighbor_from<R: Rng + ?Sized>(
        &self,
        querying_partition: usize,
        v: VertexId,
        rng: &mut R,
    ) -> Option<VertexId> {
        let owner = self.partitioner.owner(v);
        if owner == querying_partition {
            self.local_hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
        } else {
            self.forwards.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
        }
        self.engines.get(owner)?.sample_neighbor(v, rng)
    }

    /// Run a biased random walk of `len` steps starting at `start`,
    /// forwarding the walker between partitions as it crosses ownership
    /// boundaries (the multi-GPU walking procedure of §9.1). Each step is
    /// sampled by the partition owning the walker's current vertex; a step
    /// whose destination lives in a different partition is counted as one
    /// walker forward.
    pub fn walk<R: Rng + ?Sized>(&self, start: VertexId, len: usize, rng: &mut R) -> Vec<VertexId> {
        let mut path = Vec::with_capacity(len + 1);
        path.push(start);
        let mut current = start;
        let mut current_partition = self.partitioner.owner(start);
        for _ in 0..len {
            let next = match self.engines[current_partition].sample_neighbor(current, rng) {
                Some(next) => next,
                None => break,
            };
            let next_partition = self.partitioner.owner(next);
            if next_partition == current_partition {
                self.local_hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
            } else {
                self.forwards.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
            }
            current = next;
            current_partition = next_partition;
            path.push(next);
        }
        path
    }

    /// Streaming insertion routed to the owning partition.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, bias: Bias) -> Result<()> {
        let owner = self.partitioner.owner(src);
        self.engines[owner].insert_edge(src, dst, bias)
    }

    /// Streaming deletion routed to the owning partition.
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId) -> Result<()> {
        let owner = self.partitioner.owner(src);
        self.engines[owner].delete_edge(src, dst)
    }

    /// Total number of edges across all partitions.
    pub fn num_edges(&self) -> usize {
        self.engines.iter().map(BingoEngine::num_edges).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::dynamic_graph::running_example;
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    #[test]
    fn partitioner_covers_all_vertices_exactly_once() {
        let p = Partitioner::new(10, 3);
        let mut counts = [0usize; 3];
        for v in 0..10u32 {
            counts[p.owner(v)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        // Ranges are consistent with owner().
        for part in 0..3 {
            let (start, end) = p.range(part);
            for v in start..end {
                assert_eq!(p.owner(v as VertexId), part);
            }
        }
    }

    #[test]
    fn degenerate_partitioners() {
        let p = Partitioner::new(5, 1);
        assert_eq!(p.owner(4), 0);
        let p = Partitioner::new(0, 4);
        assert_eq!(p.owner(0), 0);
        let p = Partitioner::new(3, 0);
        assert_eq!(p.num_partitions(), 1);
        let p = Partitioner::balanced_by_weight(&[], 3);
        assert_eq!(p.num_partitions(), 3);
        assert_eq!(p.range(2), (0, 0));
        let p = Partitioner::balanced_by_weight(&[7, 7], 1);
        assert_eq!(p.range(0), (0, 2));
    }

    #[test]
    fn balanced_by_weight_covers_all_vertices_exactly_once() {
        let weights = [100usize, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let p = Partitioner::balanced_by_weight(&weights, 3);
        let mut counts = [0usize; 3];
        for v in 0..10u32 {
            counts[p.owner(v)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        for part in 0..3 {
            let (start, end) = p.range(part);
            for v in start..end {
                assert_eq!(p.owner(v as VertexId), part);
            }
        }
        // Ranges tile [0, n) contiguously.
        assert_eq!(p.range(0).0, 0);
        assert_eq!(p.range(2).1, 10);
        assert_eq!(p.range(0).1, p.range(1).0);
        assert_eq!(p.range(1).1, p.range(2).0);
    }

    #[test]
    fn balanced_by_degree_evens_out_a_skewed_graph() {
        // Vertex 0 carries half the edges: a uniform 2-way split puts
        // vertices [0, n/2) — nearly all the weight — on partition 0, while
        // the balanced split hands partition 0 little more than vertex 0.
        let n = 16usize;
        let mut g = DynamicGraph::new(n);
        for dst in 1..n as u32 {
            g.insert_edge(0, dst, Bias::from_int(1)).unwrap();
        }
        for v in 1..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, Bias::from_int(1))
                .unwrap();
        }
        let degree_of_range = |p: &Partitioner, part: usize| -> usize {
            let (s, e) = p.range(part);
            (s..e).map(|v| g.degree(v as VertexId)).sum()
        };
        let uniform = Partitioner::new(n, 2);
        let balanced = Partitioner::balanced_by_degree(&g, 2);
        let spread = |a: usize, b: usize| a.max(b) - a.min(b);
        let uniform_spread = spread(degree_of_range(&uniform, 0), degree_of_range(&uniform, 1));
        let balanced_spread = spread(degree_of_range(&balanced, 0), degree_of_range(&balanced, 1));
        assert!(
            balanced_spread < uniform_spread,
            "balanced {balanced_spread} vs uniform {uniform_spread}"
        );
    }

    #[test]
    fn balanced_by_visits_evens_out_walker_load_and_is_deterministic() {
        // An attractor hub: every ring vertex points back at vertex 0 with
        // a heavy bias, so walkers keep funnelling through the hub and most
        // observed *departures* happen there — a skew degree balancing
        // alone cannot see. The visit-weighted split must give partition 0
        // far fewer vertices than the uniform split does.
        let n = 16usize;
        let mut g = DynamicGraph::new(n);
        for dst in 1..n as u32 {
            g.insert_edge(0, dst, Bias::from_int(1)).unwrap();
        }
        for v in 1..n as u32 {
            g.insert_edge(v, 0, Bias::from_int(3)).unwrap();
            g.insert_edge(v, (v + 1) % n as u32, Bias::from_int(1))
                .unwrap();
        }
        let weighted = Partitioner::balanced_by_visits(&g, 2, 42);
        // Deterministic: same (graph, partitions, seed) → same boundaries.
        assert_eq!(weighted, Partitioner::balanced_by_visits(&g, 2, 42));
        // Covers [0, n) contiguously.
        assert_eq!(weighted.range(0).0, 0);
        assert_eq!(weighted.range(1).1, n);
        assert_eq!(weighted.range(0).1, weighted.range(1).0);
        // The hub partition shrinks below the uniform n/2 split.
        let (s, e) = weighted.range(0);
        assert!(
            e - s < n / 2,
            "hub partition kept {} of {n} vertices",
            e - s
        );
    }

    #[test]
    fn partitioned_engine_preserves_all_edges() {
        let g = running_example();
        let pe = PartitionedEngine::build(&g, 3, BingoConfig::default()).unwrap();
        assert_eq!(pe.num_edges(), g.num_edges());
        // Edges of vertex 2 live only in its owner's engine.
        let owner = pe.partitioner().owner(2);
        assert_eq!(pe.engines()[owner].degree(2), 3);
        for (p, e) in pe.engines().iter().enumerate() {
            if p != owner {
                assert_eq!(e.degree(2), 0);
            }
        }
    }

    #[test]
    fn walks_cross_partitions_and_count_forwards() {
        let g = running_example();
        let pe = PartitionedEngine::build(&g, 3, BingoConfig::default()).unwrap();
        let mut rng = Pcg64::seed_from_u64(5);
        let mut total_steps = 0usize;
        let walks = 50;
        for _ in 0..walks {
            let path = pe.walk(0, 10, &mut rng);
            assert!(!path.is_empty());
            total_steps += path.len() - 1;
        }
        let _ = walks;
        // Every successful step is either local or forwarded.
        assert_eq!(pe.forwards() + pe.local_hits(), total_steps as u64);
        assert!(
            pe.forwards() > 0,
            "walks from vertex 0 must cross partitions"
        );
    }

    #[test]
    fn updates_are_routed_to_the_owner() {
        let g = running_example();
        let mut pe = PartitionedEngine::build(&g, 2, BingoConfig::default()).unwrap();
        pe.insert_edge(5, 0, Bias::from_int(2)).unwrap();
        assert_eq!(pe.num_edges(), g.num_edges() + 1);
        pe.delete_edge(5, 0).unwrap();
        assert_eq!(pe.num_edges(), g.num_edges());
        assert!(pe.delete_edge(5, 0).is_err());
    }
}

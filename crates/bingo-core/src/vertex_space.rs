//! Per-vertex hierarchical sampling space (§4).
//!
//! A [`VertexSpace`] owns one vertex's adjacency list together with the
//! radix groups built over it, the decimal group for fractional bias
//! remainders, and the inter-group alias table. It supports:
//!
//! * `O(1)` sampling: alias-table selection of a group followed by uniform
//!   (or bounded-rejection, for dense groups) intra-group selection.
//! * `O(K)` streaming insertion and deletion (K = number of radix groups).
//! * Batched application of many updates with a single rebuild at the end,
//!   using the two-phase delete-and-swap compaction for the deletions.

use crate::config::{BingoConfig, Lambda};
use crate::fixed::{choose_lambda, ScaledBias};
use crate::group::{DecimalGroup, GroupKind, RadixGroup};
use crate::memory::MemoryReport;
use crate::radix;
use crate::stats::ConversionMatrix;
use crate::{BingoError, Result};
use bingo_graph::adjacency::{AdjacencyList, Edge};
use bingo_graph::{Bias, VertexId};
use bingo_sampling::{AliasTable, Sampler};
use rand::Rng;

/// Outcome of applying a batch of updates to one vertex.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VertexBatchOutcome {
    /// Edges inserted.
    pub inserted: usize,
    /// Edges deleted.
    pub deleted: usize,
    /// Deletions that referenced edges not present in the graph.
    pub missing_deletes: usize,
    /// Whether the whole space had to be rebuilt from scratch (λ change).
    pub full_rebuild: bool,
}

/// The sampling space of a single vertex.
#[derive(Debug, Clone)]
pub struct VertexSpace {
    adj: AdjacencyList,
    groups: Vec<RadixGroup>,
    decimal: DecimalGroup,
    inter: Option<AliasTable>,
    lambda: f64,
    config: BingoConfig,
    conversions: ConversionMatrix,
    inter_rebuilds: u64,
    full_rebuilds: u64,
}

impl VertexSpace {
    /// Build the sampling space for an adjacency list.
    pub fn build(adj: AdjacencyList, config: BingoConfig) -> Self {
        let mut space = VertexSpace {
            adj,
            groups: Vec::new(),
            decimal: DecimalGroup::new(),
            inter: None,
            lambda: 1.0,
            config,
            conversions: ConversionMatrix::new(),
            inter_rebuilds: 0,
            full_rebuilds: 0,
        };
        space.rebuild_from_scratch();
        space
    }

    /// The vertex degree.
    pub fn degree(&self) -> usize {
        self.adj.degree()
    }

    /// The adjacency list backing this space.
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adj
    }

    /// The λ amortization factor currently in use.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The number of radix groups (K).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The radix groups (for inspection in tests and experiments).
    pub fn groups(&self) -> &[RadixGroup] {
        &self.groups
    }

    /// The decimal group.
    pub fn decimal_group(&self) -> &DecimalGroup {
        &self.decimal
    }

    /// Group-conversion statistics accumulated by this vertex.
    pub fn conversions(&self) -> &ConversionMatrix {
        &self.conversions
    }

    /// Number of inter-group alias rebuilds performed.
    pub fn inter_rebuilds(&self) -> u64 {
        self.inter_rebuilds
    }

    /// Number of full space rebuilds performed.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    fn resolve_lambda(&self) -> f64 {
        let has_float = self.adj.edges().iter().any(|e| !e.bias.is_integral());
        match self.config.lambda {
            Lambda::Fixed(l) => l.max(1.0),
            Lambda::Auto => {
                if has_float {
                    let biases: Vec<f64> =
                        self.adj.edges().iter().map(|e| e.bias.value()).collect();
                    choose_lambda(&biases, 2.0)
                } else {
                    1.0
                }
            }
        }
    }

    fn scaled(&self, edge: &Edge) -> ScaledBias {
        ScaledBias::new(edge.bias, self.lambda)
    }

    /// Rebuild groups, decimal group, λ and the inter-group alias table from
    /// the adjacency list. `O(d · K)`.
    pub fn rebuild_from_scratch(&mut self) {
        self.full_rebuilds += 1;
        self.lambda = self.resolve_lambda();
        self.decimal = DecimalGroup::new();
        // Collect members per bit.
        let mut max_bits = 0usize;
        let scaled: Vec<ScaledBias> = self
            .adj
            .edges()
            .iter()
            .map(|e| {
                let s = ScaledBias::new(e.bias, self.lambda);
                max_bits = max_bits.max(radix::groups_for_max_bias(s.integer));
                s
            })
            .collect();
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); max_bits];
        for (idx, s) in scaled.iter().enumerate() {
            for bit in radix::decompose(s.integer) {
                members[bit as usize].push(idx as u32);
            }
            if s.has_fraction() {
                self.decimal.insert(idx as u32, s.fraction);
            }
        }
        let degree = self.adj.degree();
        self.groups = members
            .into_iter()
            .enumerate()
            .map(|(bit, m)| {
                let kind = self.classify(m.len(), degree);
                RadixGroup::from_members(bit as u8, kind, m)
            })
            .collect();
        self.rebuild_inter();
    }

    fn classify(&self, cardinality: usize, degree: usize) -> GroupKind {
        if !self.config.adaptive {
            return if cardinality == 0 {
                GroupKind::Empty
            } else {
                GroupKind::Regular
            };
        }
        GroupKind::classify(
            cardinality,
            degree,
            self.config.alpha_percent,
            self.config.beta_percent,
        )
    }

    /// Rebuild only the inter-group alias table. `O(K)`.
    pub fn rebuild_inter(&mut self) {
        self.inter_rebuilds += 1;
        let mut weights: Vec<f64> = self.groups.iter().map(RadixGroup::weight).collect();
        weights.push(self.decimal.weight());
        let total: f64 = weights.iter().sum();
        self.inter = if total > 0.0 {
            AliasTable::new(&weights).ok()
        } else {
            None
        };
    }

    /// Reclassify every group's representation against the current degree,
    /// converting representations and recording the conversions (Table 4).
    pub fn reclassify(&mut self) {
        let degree = self.adj.degree();
        let lambda = self.lambda;
        for gi in 0..self.groups.len() {
            self.conversions.record_check();
            let current = self.groups[gi].kind();
            let desired = self.classify(self.groups[gi].cardinality(), degree);
            if current == desired {
                continue;
            }
            // Converting out of a dense group requires scanning the
            // adjacency list to recover the member list.
            let members_if_dense = if current == GroupKind::Dense {
                let bit = self.groups[gi].bit();
                Some(
                    self.adj
                        .edges()
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| {
                            radix::in_group(ScaledBias::new(e.bias, lambda).integer, bit)
                        })
                        .map(|(i, _)| i as u32)
                        .collect(),
                )
            } else {
                None
            };
            self.groups[gi].convert_to(desired, members_if_dense);
            self.conversions.record(current, desired);
        }
    }

    fn ensure_groups(&mut self, bits: usize) {
        while self.groups.len() < bits {
            let bit = self.groups.len() as u8;
            self.groups.push(RadixGroup::new(bit));
        }
    }

    /// Insert the new edge into the radix groups without touching the
    /// inter-group alias table. Returns `true` when the insertion requires a
    /// full rebuild (a floating-point bias arrived while λ = 1).
    fn insert_into_groups(&mut self, idx: u32, bias: Bias) -> bool {
        if !bias.is_integral() && (self.lambda - 1.0).abs() < f64::EPSILON {
            if let Lambda::Auto = self.config.lambda {
                return true;
            }
        }
        let s = ScaledBias::new(bias, self.lambda);
        self.ensure_groups(radix::groups_for_max_bias(s.integer));
        for bit in radix::decompose(s.integer) {
            self.groups[bit as usize].insert(idx);
        }
        if s.has_fraction() {
            self.decimal.insert(idx, s.fraction);
        }
        false
    }

    /// Streaming insertion of an edge (§4.2): append to the adjacency list,
    /// update the affected groups, rebuild the inter-group alias table.
    /// `O(K)`.
    pub fn insert(&mut self, dst: VertexId, bias: Bias) -> Result<()> {
        if !bias.is_valid() {
            return Err(BingoError::InvalidBias { dst });
        }
        let idx = self.adj.push(Edge::new(dst, bias)) as u32;
        if self.insert_into_groups(idx, bias) {
            self.rebuild_from_scratch();
            return Ok(());
        }
        if self.config.reclassify_on_streaming {
            self.reclassify();
        }
        self.rebuild_inter();
        Ok(())
    }

    /// Remove the edge at neighbor index `idx` from all group structures
    /// (but not yet from the adjacency list).
    fn remove_from_groups(&mut self, idx: u32) {
        let edge = match self.adj.edge(idx as usize) {
            Some(e) => *e,
            None => return,
        };
        let s = self.scaled(&edge);
        for bit in radix::decompose(s.integer) {
            if let Some(group) = self.groups.get_mut(bit as usize) {
                group.remove(idx);
            }
        }
        if s.has_fraction() {
            self.decimal.remove(idx);
        }
    }

    /// Propagate an adjacency-list move (`old_idx → new_idx`) to all group
    /// structures. Must be called *after* the adjacency list was compacted.
    fn remap_groups(&mut self, old_idx: u32, new_idx: u32) {
        let edge = match self.adj.edge(new_idx as usize) {
            Some(e) => *e,
            None => return,
        };
        let s = self.scaled(&edge);
        for bit in radix::decompose(s.integer) {
            if let Some(group) = self.groups.get_mut(bit as usize) {
                group.remap(old_idx, new_idx);
            }
        }
        if s.has_fraction() {
            self.decimal.remap(old_idx, new_idx);
        }
    }

    /// Streaming deletion of the edge at neighbor index `idx` (§4.2):
    /// locate the edge in its groups via the inverted indices, swap it with
    /// each group's tail, swap-delete it from the adjacency list, and remap
    /// the adjacency entry that moved into the hole. `O(K)`.
    pub fn delete_at(&mut self, idx: usize) -> Result<Edge> {
        if idx >= self.adj.degree() {
            return Err(BingoError::NeighborIndexOutOfRange {
                index: idx,
                degree: self.adj.degree(),
            });
        }
        self.remove_from_groups(idx as u32);
        let out = self
            .adj
            .swap_delete(idx)
            .expect("index checked against degree");
        if let Some(old_last) = out.moved_from {
            self.remap_groups(old_last as u32, idx as u32);
        }
        if self.config.reclassify_on_streaming {
            self.reclassify();
        }
        self.rebuild_inter();
        Ok(out.removed)
    }

    /// Streaming deletion of the first edge pointing at `dst`.
    pub fn delete(&mut self, dst: VertexId) -> Result<Edge> {
        let idx = self.adj.find(dst).ok_or(BingoError::EdgeNotFound { dst })?;
        self.delete_at(idx)
    }

    /// Update the bias of the first edge pointing at `dst`.
    ///
    /// Implemented as delete + insert of the same destination, which is how
    /// the paper describes bias updates (§4.2).
    pub fn update_bias(&mut self, dst: VertexId, bias: Bias) -> Result<()> {
        if !bias.is_valid() {
            return Err(BingoError::InvalidBias { dst });
        }
        self.delete(dst)?;
        self.insert(dst, bias)
    }

    /// Apply a per-vertex batch of updates: all insertions first, then all
    /// deletions through the two-phase delete-and-swap compaction, then a
    /// single reclassify + inter-group rebuild (§5.2, Figure 10(a)).
    pub fn apply_batch(
        &mut self,
        inserts: &[(VertexId, Bias)],
        deletes: &[VertexId],
    ) -> VertexBatchOutcome {
        let mut outcome = VertexBatchOutcome::default();

        // Phase 1: insertions (append + group updates, no rebuild yet).
        let mut needs_full_rebuild = false;
        for &(dst, bias) in inserts {
            if !bias.is_valid() {
                continue;
            }
            let idx = self.adj.push(Edge::new(dst, bias)) as u32;
            needs_full_rebuild |= self.insert_into_groups(idx, bias);
            outcome.inserted += 1;
        }

        // Phase 2: deletions. Resolve destinations to distinct neighbor
        // indices (duplicate edges are deleted oldest-first, as the paper
        // specifies for re-inserted edges).
        let mut to_delete: Vec<usize> = Vec::with_capacity(deletes.len());
        let mut taken = vec![false; self.adj.degree()];
        for &dst in deletes {
            let found = self
                .adj
                .iter()
                .find(|(i, e)| e.dst == dst && !taken[*i])
                .map(|(i, _)| i);
            match found {
                Some(i) => {
                    taken[i] = true;
                    to_delete.push(i);
                }
                None => outcome.missing_deletes += 1,
            }
        }
        if !to_delete.is_empty() {
            // Remove from group structures while neighbor indices are still
            // valid, then compact the adjacency list in one two-phase pass
            // and patch the moved indices.
            for &idx in &to_delete {
                self.remove_from_groups(idx as u32);
            }
            let (_removed, moves) = self.adj.delete_many(&to_delete);
            for (from, to) in moves {
                self.remap_groups(from as u32, to as u32);
            }
            outcome.deleted = to_delete.len();
        }

        // Phase 3: one rebuild for the whole batch.
        if needs_full_rebuild {
            self.rebuild_from_scratch();
            outcome.full_rebuild = true;
        } else {
            self.reclassify();
            self.rebuild_inter();
        }
        outcome
    }

    /// Total (λ-scaled) sampling weight of the vertex.
    pub fn total_weight(&self) -> f64 {
        self.groups.iter().map(RadixGroup::weight).sum::<f64>() + self.decimal.weight()
    }

    /// Sample a neighbor index in `O(1)` expected time (Theorem 4.1
    /// guarantees the distribution equals the bias-proportional one).
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let inter = self.inter.as_ref()?;
        // Bounded retry: a sampled group can only be empty due to floating
        // point drift in the alias table; retry a few times before giving up.
        for _ in 0..64 {
            let g = inter.sample(rng);
            if g == self.groups.len() {
                if let Some(idx) = self.decimal.sample(rng) {
                    return Some(idx as usize);
                }
                continue;
            }
            let group = &self.groups[g];
            match group.kind() {
                GroupKind::Empty => continue,
                GroupKind::Dense => {
                    // Bounded rejection sampling over the raw adjacency list:
                    // the acceptance rate is > α% by construction (§5.1).
                    let bit = group.bit();
                    let degree = self.adj.degree();
                    if degree == 0 {
                        continue;
                    }
                    loop {
                        let i = rng.gen_range(0..degree);
                        let edge = self.adj.edge(i).expect("index within degree");
                        if radix::in_group(self.scaled(edge).integer, bit) {
                            return Some(i);
                        }
                    }
                }
                _ => {
                    if let Some(idx) = group.sample_uniform(rng) {
                        return Some(idx as usize);
                    }
                }
            }
        }
        None
    }

    /// Sample a neighbor vertex id.
    pub fn sample_neighbor<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<VertexId> {
        self.sample_index(rng)
            .and_then(|i| self.adj.edge(i))
            .map(|e| e.dst)
    }

    /// Memory accounting for this vertex (Figure 11 breakdown).
    pub fn memory_report(&self) -> MemoryReport {
        let mut report = MemoryReport {
            adjacency_bytes: self.adj.memory_bytes(),
            inter_group_bytes: self
                .inter
                .as_ref()
                .map(AliasTable::memory_bytes)
                .unwrap_or(0),
            decimal_bytes: self.decimal.memory_bytes(),
            ..MemoryReport::default()
        };
        for g in &self.groups {
            report.add_group(g.kind(), g.memory_bytes());
        }
        report
    }

    /// Exact per-neighbor transition probabilities implied by the current
    /// structures. Used by tests to verify Theorem 4.1.
    pub fn exact_probabilities(&self) -> Vec<f64> {
        let total: f64 = self.adj.edges().iter().map(|e| e.bias.value()).sum();
        if total <= 0.0 {
            return vec![0.0; self.adj.degree()];
        }
        self.adj
            .edges()
            .iter()
            .map(|e| e.bias.value() / total)
            .collect()
    }

    /// Check every structural invariant of the sampling space. Used by the
    /// property-based tests; returns a description of the first violation.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let degree = self.adj.degree();
        // 1. Group cardinalities and memberships match the adjacency biases.
        for g in &self.groups {
            let bit = g.bit();
            let expected: Vec<u32> = self
                .adj
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| radix::in_group(self.scaled(e).integer, bit))
                .map(|(i, _)| i as u32)
                .collect();
            if g.cardinality() != expected.len() {
                return Err(format!(
                    "group 2^{bit}: cardinality {} != expected {}",
                    g.cardinality(),
                    expected.len()
                ));
            }
            if let Some(mut members) = g.members() {
                members.sort_unstable();
                let mut exp = expected.clone();
                exp.sort_unstable();
                if members != exp {
                    return Err(format!("group 2^{bit}: members {members:?} != {exp:?}"));
                }
                for &m in &members {
                    if m as usize >= degree {
                        return Err(format!("group 2^{bit}: member {m} out of range"));
                    }
                }
            }
        }
        // 2. Decimal group total matches the fractional remainders.
        let expected_fraction: f64 = self
            .adj
            .edges()
            .iter()
            .map(|e| self.scaled(e).fraction)
            .sum();
        if (self.decimal.weight() - expected_fraction).abs() > 1e-6 {
            return Err(format!(
                "decimal weight {} != expected {expected_fraction}",
                self.decimal.weight()
            ));
        }
        // 3. The inter-group table exists exactly when there is weight.
        let has_weight = self.total_weight() > 0.0;
        if has_weight != self.inter.is_some() {
            return Err("inter-group alias table presence mismatch".to_string());
        }
        // 4. Total scaled weight equals λ × total bias.
        let total_bias: f64 = self.adj.edges().iter().map(|e| e.bias.value()).sum();
        if (self.total_weight() - total_bias * self.lambda).abs() > 1e-6 * (1.0 + total_bias) {
            return Err(format!(
                "total weight {} != lambda × bias total {}",
                self.total_weight(),
                total_bias * self.lambda
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::dynamic_graph::running_example;
    use bingo_sampling::rng::Pcg64;
    use bingo_sampling::stats::{empirical_distribution, max_abs_deviation};
    use rand::SeedableRng;

    fn vertex2_space(config: BingoConfig) -> VertexSpace {
        let g = running_example();
        VertexSpace::build(g.neighbors(2).unwrap().clone(), config)
    }

    #[test]
    fn running_example_groups_match_paper() {
        // Vertex 2, biases 5, 4, 3: group 2^0 = {edges 0, 2}, 2^1 = {2},
        // 2^2 = {0, 1}; group biases 2, 2, 8.
        let space = vertex2_space(BingoConfig::baseline());
        assert_eq!(space.num_groups(), 3);
        assert_eq!(space.groups()[0].cardinality(), 2);
        assert_eq!(space.groups()[1].cardinality(), 1);
        assert_eq!(space.groups()[2].cardinality(), 2);
        assert_eq!(space.groups()[0].weight(), 2.0);
        assert_eq!(space.groups()[1].weight(), 2.0);
        assert_eq!(space.groups()[2].weight(), 8.0);
        assert_eq!(space.total_weight(), 12.0);
        assert_eq!(space.lambda(), 1.0);
        space.check_invariants().unwrap();
    }

    #[test]
    fn theorem_4_1_sampling_distribution_is_preserved() {
        for config in [BingoConfig::default(), BingoConfig::baseline()] {
            let space = vertex2_space(config);
            let mut rng = Pcg64::seed_from_u64(42);
            let freq =
                empirical_distribution(|r| space.sample_index(r).unwrap(), 3, 300_000, &mut rng);
            let expected = space.exact_probabilities();
            assert!(
                max_abs_deviation(&freq, &expected) < 0.01,
                "distribution deviates: {freq:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn sample_neighbor_returns_destinations() {
        let space = vertex2_space(BingoConfig::default());
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..100 {
            let dst = space.sample_neighbor(&mut rng).unwrap();
            assert!([1, 4, 5].contains(&dst));
        }
    }

    #[test]
    fn empty_vertex_samples_nothing() {
        let space = VertexSpace::build(AdjacencyList::new(), BingoConfig::default());
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(space.sample_index(&mut rng), None);
        assert_eq!(space.total_weight(), 0.0);
        space.check_invariants().unwrap();
    }

    #[test]
    fn streaming_insert_matches_paper_figure_5() {
        // Insert edge (2, 3, 3): bias 3 = 2^0 + 2^1, so groups 2^0 and 2^1
        // each gain the new neighbor index 3.
        let mut space = vertex2_space(BingoConfig::baseline());
        space.insert(3, Bias::from_int(3)).unwrap();
        assert_eq!(space.degree(), 4);
        assert_eq!(space.groups()[0].cardinality(), 3);
        assert_eq!(space.groups()[1].cardinality(), 2);
        assert_eq!(space.groups()[2].cardinality(), 2);
        assert_eq!(space.total_weight(), 15.0);
        space.check_invariants().unwrap();

        // Distribution still matches the biases.
        let mut rng = Pcg64::seed_from_u64(3);
        let freq = empirical_distribution(|r| space.sample_index(r).unwrap(), 4, 200_000, &mut rng);
        assert!(max_abs_deviation(&freq, &space.exact_probabilities()) < 0.01);
    }

    #[test]
    fn streaming_delete_matches_paper_figure_6() {
        // Delete edge (2, 1, 5): groups 2^0 and 2^2 lose neighbor index 0.
        let mut space = vertex2_space(BingoConfig::baseline());
        let removed = space.delete(1).unwrap();
        assert_eq!(removed.dst, 1);
        assert_eq!(removed.bias.value(), 5.0);
        assert_eq!(space.degree(), 2);
        assert_eq!(space.groups()[0].cardinality(), 1);
        assert_eq!(space.groups()[1].cardinality(), 1);
        assert_eq!(space.groups()[2].cardinality(), 1);
        assert_eq!(space.total_weight(), 7.0);
        space.check_invariants().unwrap();
        // Deleting a missing edge fails cleanly.
        assert!(space.delete(1).is_err());
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let mut space = vertex2_space(BingoConfig::default());
        let before = space.total_weight();
        space.insert(3, Bias::from_int(6)).unwrap();
        space.delete(3).unwrap();
        assert_eq!(space.total_weight(), before);
        assert_eq!(space.degree(), 3);
        space.check_invariants().unwrap();
    }

    #[test]
    fn invalid_operations_are_rejected() {
        let mut space = vertex2_space(BingoConfig::default());
        assert!(space.insert(9, Bias::from_int(0)).is_err());
        assert!(space.delete(99).is_err());
        assert!(space.delete_at(17).is_err());
        assert!(space.update_bias(1, Bias::from_float(-1.0)).is_err());
    }

    #[test]
    fn update_bias_changes_distribution() {
        let mut space = vertex2_space(BingoConfig::default());
        space.update_bias(4, Bias::from_int(100)).unwrap();
        space.check_invariants().unwrap();
        let mut rng = Pcg64::seed_from_u64(11);
        let mut hits = 0;
        for _ in 0..10_000 {
            if space.sample_neighbor(&mut rng) == Some(4) {
                hits += 1;
            }
        }
        // Neighbor 4 now carries 100 / 108 of the weight.
        assert!(hits as f64 / 10_000.0 > 0.85);
    }

    #[test]
    fn floating_point_biases_follow_paper_example() {
        // §4.3 example with λ fixed at 10.
        let mut adj = AdjacencyList::new();
        adj.push(Edge::new(1, Bias::from_float(0.554)));
        adj.push(Edge::new(4, Bias::from_float(0.726)));
        adj.push(Edge::new(5, Bias::from_float(0.32)));
        let config = BingoConfig {
            lambda: Lambda::Fixed(10.0),
            ..BingoConfig::default()
        };
        let space = VertexSpace::build(adj, config);
        assert_eq!(space.lambda(), 10.0);
        // Integer parts 5, 7, 3 → groups 2^0 {5,7,3}, 2^1 {7,3}, 2^2 {5,7}.
        assert_eq!(space.num_groups(), 3);
        assert_eq!(space.groups()[0].cardinality(), 3);
        assert_eq!(space.groups()[1].cardinality(), 2);
        assert_eq!(space.groups()[2].cardinality(), 2);
        assert_eq!(space.decimal_group().cardinality(), 3);
        assert!((space.decimal_group().weight() - 1.0).abs() < 1e-9);
        space.check_invariants().unwrap();

        // Theorem 4.1 still holds with the decimal group in play.
        let mut rng = Pcg64::seed_from_u64(5);
        let freq = empirical_distribution(|r| space.sample_index(r).unwrap(), 3, 300_000, &mut rng);
        assert!(max_abs_deviation(&freq, &space.exact_probabilities()) < 0.01);
    }

    #[test]
    fn auto_lambda_keeps_decimal_group_small() {
        let mut adj = AdjacencyList::new();
        for i in 0..20u32 {
            adj.push(Edge::new(i, Bias::from_float(0.05 + 0.01 * i as f64)));
        }
        let space = VertexSpace::build(adj, BingoConfig::default());
        assert!(space.lambda() > 1.0);
        let share = space.decimal_group().weight() / space.total_weight();
        assert!(share < 1.0 / 20.0, "decimal share {share} too large");
        space.check_invariants().unwrap();
    }

    #[test]
    fn float_insert_into_integer_space_triggers_full_rebuild() {
        let mut space = vertex2_space(BingoConfig::default());
        assert_eq!(space.lambda(), 1.0);
        let rebuilds_before = space.full_rebuilds();
        space.insert(3, Bias::from_float(0.5)).unwrap();
        assert!(space.full_rebuilds() > rebuilds_before);
        assert!(space.lambda() > 1.0);
        space.check_invariants().unwrap();
        let mut rng = Pcg64::seed_from_u64(9);
        let freq = empirical_distribution(|r| space.sample_index(r).unwrap(), 4, 200_000, &mut rng);
        assert!(max_abs_deviation(&freq, &space.exact_probabilities()) < 0.01);
    }

    #[test]
    fn adaptive_classification_creates_dense_and_one_element_groups() {
        // 10 edges, 9 odd biases (dense 2^0 group), one huge bias for a
        // one-element group.
        let mut adj = AdjacencyList::new();
        for i in 0..9u32 {
            adj.push(Edge::new(i, Bias::from_int(2 * u64::from(i) + 1)));
        }
        adj.push(Edge::new(9, Bias::from_int(1 << 12)));
        let space = VertexSpace::build(adj, BingoConfig::default());
        assert_eq!(space.groups()[0].kind(), GroupKind::Dense);
        assert_eq!(space.groups()[12].kind(), GroupKind::OneElement);
        space.check_invariants().unwrap();

        // Distribution must still match despite the dense representation.
        let mut rng = Pcg64::seed_from_u64(13);
        let freq =
            empirical_distribution(|r| space.sample_index(r).unwrap(), 10, 400_000, &mut rng);
        assert!(max_abs_deviation(&freq, &space.exact_probabilities()) < 0.01);
    }

    #[test]
    fn baseline_config_only_uses_regular_groups() {
        let mut adj = AdjacencyList::new();
        for i in 0..16u32 {
            adj.push(Edge::new(i, Bias::from_int(u64::from(i) + 1)));
        }
        let space = VertexSpace::build(adj, BingoConfig::baseline());
        for g in space.groups() {
            assert!(matches!(g.kind(), GroupKind::Regular | GroupKind::Empty));
        }
    }

    #[test]
    fn adaptive_uses_less_memory_than_baseline() {
        let mut adj = AdjacencyList::new();
        for i in 0..256u32 {
            adj.push(Edge::new(i, Bias::from_int(u64::from(i % 63) + 1)));
        }
        let adaptive = VertexSpace::build(adj.clone(), BingoConfig::default());
        let baseline = VertexSpace::build(adj, BingoConfig::baseline());
        assert!(
            adaptive.memory_report().sampling_bytes() < baseline.memory_report().sampling_bytes()
        );
    }

    #[test]
    fn batch_apply_inserts_and_deletes_with_single_rebuild() {
        let mut space = vertex2_space(BingoConfig::default());
        let rebuilds_before = space.inter_rebuilds();
        let outcome = space.apply_batch(
            &[
                (3, Bias::from_int(3)),
                (0, Bias::from_int(7)),
                (5, Bias::from_int(2)),
            ],
            &[1, 4, 99],
        );
        assert_eq!(outcome.inserted, 3);
        assert_eq!(outcome.deleted, 2);
        assert_eq!(outcome.missing_deletes, 1);
        assert_eq!(space.degree(), 4);
        // Exactly one inter-group rebuild for the whole batch.
        assert_eq!(space.inter_rebuilds(), rebuilds_before + 1);
        space.check_invariants().unwrap();

        let mut rng = Pcg64::seed_from_u64(21);
        let freq = empirical_distribution(|r| space.sample_index(r).unwrap(), 4, 200_000, &mut rng);
        assert!(max_abs_deviation(&freq, &space.exact_probabilities()) < 0.01);
    }

    #[test]
    fn batch_deleting_duplicate_edges_removes_both_copies() {
        let mut adj = AdjacencyList::new();
        adj.push(Edge::new(1, Bias::from_int(2)));
        adj.push(Edge::new(1, Bias::from_int(4)));
        adj.push(Edge::new(2, Bias::from_int(8)));
        let mut space = VertexSpace::build(adj, BingoConfig::default());
        let outcome = space.apply_batch(&[], &[1, 1]);
        assert_eq!(outcome.deleted, 2);
        assert_eq!(space.degree(), 1);
        space.check_invariants().unwrap();
    }

    #[test]
    fn batch_with_everything_deleted_leaves_empty_space() {
        let mut space = vertex2_space(BingoConfig::default());
        let outcome = space.apply_batch(&[], &[1, 4, 5]);
        assert_eq!(outcome.deleted, 3);
        assert_eq!(space.degree(), 0);
        assert_eq!(space.total_weight(), 0.0);
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(space.sample_index(&mut rng), None);
        space.check_invariants().unwrap();
    }

    #[test]
    fn conversions_are_recorded_when_groups_change_kind() {
        // Start with a small degree (dense groups), then grow the degree so
        // the same group must become regular/sparse.
        let mut adj = AdjacencyList::new();
        adj.push(Edge::new(0, Bias::from_int(1)));
        adj.push(Edge::new(1, Bias::from_int(1)));
        let mut space = VertexSpace::build(adj, BingoConfig::default());
        assert_eq!(space.groups()[0].kind(), GroupKind::Dense);
        for i in 2..40u32 {
            space.insert(i, Bias::from_int(2)).unwrap();
        }
        // Group 2^0 now holds 2 of 40 edges (5%) → sparse.
        assert_eq!(space.groups()[0].kind(), GroupKind::Sparse);
        assert!(space.conversions().total_conversions() > 0);
        space.check_invariants().unwrap();
    }

    #[test]
    fn memory_report_counts_every_group() {
        let space = vertex2_space(BingoConfig::default());
        let report = space.memory_report();
        let counted: usize = report.group_counts.iter().sum();
        let non_empty = space
            .groups()
            .iter()
            .filter(|g| g.kind() != GroupKind::Empty)
            .count();
        assert_eq!(counted, non_empty);
        assert!(report.adjacency_bytes > 0);
        assert!(report.inter_group_bytes > 0);
    }
}

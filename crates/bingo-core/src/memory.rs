//! Byte-accurate memory accounting for the sampling structures.
//!
//! The paper's Figure 11 breaks memory consumption down by group
//! representation (dense / one-element / sparse / regular) and compares the
//! group-adaptive design against the all-regular baseline. [`MemoryReport`]
//! carries the same breakdown; the benchmark harness prints it per dataset.

use crate::group::GroupKind;

/// Memory usage of one vertex's (or a whole engine's) sampling structures,
/// in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryReport {
    /// Adjacency-list storage (the graph itself).
    pub adjacency_bytes: usize,
    /// Inter-group alias tables.
    pub inter_group_bytes: usize,
    /// Intra-group structures of dense groups.
    pub dense_bytes: usize,
    /// Intra-group structures of one-element groups.
    pub one_element_bytes: usize,
    /// Intra-group structures of sparse groups.
    pub sparse_bytes: usize,
    /// Intra-group structures of regular groups (member lists + inverted
    /// indices).
    pub regular_bytes: usize,
    /// Decimal-group structures (floating-point remainders).
    pub decimal_bytes: usize,
    /// Number of groups of each kind: `[dense, regular, sparse, one-element]`.
    pub group_counts: [usize; 4],
}

impl MemoryReport {
    /// Total bytes used by sampling structures (excluding the adjacency
    /// lists, which every system needs regardless of sampler).
    pub fn sampling_bytes(&self) -> usize {
        self.inter_group_bytes
            + self.dense_bytes
            + self.one_element_bytes
            + self.sparse_bytes
            + self.regular_bytes
            + self.decimal_bytes
    }

    /// Total bytes including the graph adjacency storage.
    pub fn total_bytes(&self) -> usize {
        self.sampling_bytes() + self.adjacency_bytes
    }

    /// Bytes attributed to a particular group kind.
    pub fn bytes_for(&self, kind: GroupKind) -> usize {
        match kind {
            GroupKind::Dense => self.dense_bytes,
            GroupKind::OneElement => self.one_element_bytes,
            GroupKind::Sparse => self.sparse_bytes,
            GroupKind::Regular => self.regular_bytes,
            GroupKind::Empty => 0,
        }
    }

    /// Number of groups of a particular kind.
    pub fn count_for(&self, kind: GroupKind) -> usize {
        match kind {
            GroupKind::Dense => self.group_counts[0],
            GroupKind::Regular => self.group_counts[1],
            GroupKind::Sparse => self.group_counts[2],
            GroupKind::OneElement => self.group_counts[3],
            GroupKind::Empty => 0,
        }
    }

    /// Record a group of the given kind and byte size.
    pub fn add_group(&mut self, kind: GroupKind, bytes: usize) {
        match kind {
            GroupKind::Dense => {
                self.dense_bytes += bytes;
                self.group_counts[0] += 1;
            }
            GroupKind::Regular => {
                self.regular_bytes += bytes;
                self.group_counts[1] += 1;
            }
            GroupKind::Sparse => {
                self.sparse_bytes += bytes;
                self.group_counts[2] += 1;
            }
            GroupKind::OneElement => {
                self.one_element_bytes += bytes;
                self.group_counts[3] += 1;
            }
            GroupKind::Empty => {}
        }
    }

    /// Fraction of groups of each kind `[dense, regular, sparse,
    /// one-element]` (Figure 11(e)).
    pub fn group_ratios(&self) -> [f64; 4] {
        let total: usize = self.group_counts.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (i, &c) in self.group_counts.iter().enumerate() {
            out[i] = c as f64 / total as f64;
        }
        out
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &MemoryReport) {
        self.adjacency_bytes += other.adjacency_bytes;
        self.inter_group_bytes += other.inter_group_bytes;
        self.dense_bytes += other.dense_bytes;
        self.one_element_bytes += other.one_element_bytes;
        self.sparse_bytes += other.sparse_bytes;
        self.regular_bytes += other.regular_bytes;
        self.decimal_bytes += other.decimal_bytes;
        for i in 0..4 {
            self.group_counts[i] += other.group_counts[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut r = MemoryReport {
            adjacency_bytes: 100,
            inter_group_bytes: 10,
            ..MemoryReport::default()
        };
        r.add_group(GroupKind::Dense, 1);
        r.add_group(GroupKind::Regular, 40);
        r.add_group(GroupKind::Sparse, 5);
        r.add_group(GroupKind::OneElement, 2);
        r.decimal_bytes = 3;
        assert_eq!(r.sampling_bytes(), 61);
        assert_eq!(r.total_bytes(), 161);
        assert_eq!(r.bytes_for(GroupKind::Regular), 40);
        assert_eq!(r.count_for(GroupKind::Dense), 1);
        assert_eq!(r.bytes_for(GroupKind::Empty), 0);
    }

    #[test]
    fn ratios_sum_to_one() {
        let mut r = MemoryReport::default();
        r.add_group(GroupKind::Dense, 0);
        r.add_group(GroupKind::Dense, 0);
        r.add_group(GroupKind::Regular, 0);
        r.add_group(GroupKind::OneElement, 0);
        let ratios = r.group_ratios();
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((ratios[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_ratios() {
        let r = MemoryReport::default();
        assert_eq!(r.group_ratios(), [0.0; 4]);
        assert_eq!(r.total_bytes(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MemoryReport::default();
        a.add_group(GroupKind::Sparse, 8);
        a.adjacency_bytes = 16;
        let mut b = MemoryReport::default();
        b.add_group(GroupKind::Sparse, 8);
        b.decimal_bytes = 4;
        a.merge(&b);
        assert_eq!(a.sparse_bytes, 16);
        assert_eq!(a.count_for(GroupKind::Sparse), 2);
        assert_eq!(a.decimal_bytes, 4);
        assert_eq!(a.adjacency_bytes, 16);
    }
}

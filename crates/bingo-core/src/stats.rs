//! Counters for group-type conversions and engine activity.
//!
//! Table 4 of the paper reports how often a group changes representation
//! (dense ↔ regular ↔ sparse ↔ one-element) while ingesting updates; the
//! [`ConversionMatrix`] collects exactly those counts.

use crate::group::GroupKind;

fn kind_index(kind: GroupKind) -> usize {
    match kind {
        GroupKind::Empty => 0,
        GroupKind::Dense => 1,
        GroupKind::OneElement => 2,
        GroupKind::Sparse => 3,
        GroupKind::Regular => 4,
    }
}

/// Matrix of group-kind conversion counts (`from` × `to`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionMatrix {
    counts: [[u64; 5]; 5],
    /// Total number of classification checks performed (the denominator of
    /// the conversion *ratio* in Table 4).
    pub checks: u64,
}

impl ConversionMatrix {
    /// Create an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one conversion from `from` to `to`.
    pub fn record(&mut self, from: GroupKind, to: GroupKind) {
        self.counts[kind_index(from)][kind_index(to)] += 1;
    }

    /// Record one classification check that did not convert.
    pub fn record_check(&mut self) {
        self.checks += 1;
    }

    /// Number of conversions from `from` to `to`.
    pub fn count(&self, from: GroupKind, to: GroupKind) -> u64 {
        self.counts[kind_index(from)][kind_index(to)]
    }

    /// Conversion ratio (conversions / checks) between two kinds, as the
    /// percentages reported in Table 4.
    pub fn ratio(&self, from: GroupKind, to: GroupKind) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.count(from, to) as f64 / self.checks as f64
        }
    }

    /// Total number of conversions between non-empty kinds.
    pub fn total_conversions(&self) -> u64 {
        let mut total = 0;
        for from in GroupKind::all() {
            for to in GroupKind::all() {
                total += self.count(from, to);
            }
        }
        total
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConversionMatrix) {
        for i in 0..5 {
            for j in 0..5 {
                self.counts[i][j] += other.counts[i][j];
            }
        }
        self.checks += other.checks;
    }
}

/// Aggregate counters describing engine activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of edges inserted (streaming + batched).
    pub insertions: u64,
    /// Number of edges deleted (streaming + batched).
    pub deletions: u64,
    /// Number of inter-group alias table rebuilds.
    pub inter_rebuilds: u64,
    /// Number of full per-vertex sampling-space rebuilds.
    pub full_rebuilds: u64,
    /// Number of batches ingested.
    pub batches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = ConversionMatrix::new();
        m.record(GroupKind::Dense, GroupKind::Regular);
        m.record(GroupKind::Dense, GroupKind::Regular);
        m.record(GroupKind::Sparse, GroupKind::OneElement);
        m.record_check();
        m.record_check();
        m.record_check();
        m.record_check();
        assert_eq!(m.count(GroupKind::Dense, GroupKind::Regular), 2);
        assert_eq!(m.count(GroupKind::Regular, GroupKind::Dense), 0);
        assert_eq!(m.total_conversions(), 3);
        assert!((m.ratio(GroupKind::Dense, GroupKind::Regular) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_with_no_checks_is_zero() {
        let m = ConversionMatrix::new();
        assert_eq!(m.ratio(GroupKind::Dense, GroupKind::Sparse), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConversionMatrix::new();
        a.record(GroupKind::Dense, GroupKind::Sparse);
        a.record_check();
        let mut b = ConversionMatrix::new();
        b.record(GroupKind::Dense, GroupKind::Sparse);
        b.record(GroupKind::Regular, GroupKind::Dense);
        b.record_check();
        b.record_check();
        a.merge(&b);
        assert_eq!(a.count(GroupKind::Dense, GroupKind::Sparse), 2);
        assert_eq!(a.count(GroupKind::Regular, GroupKind::Dense), 1);
        assert_eq!(a.checks, 3);
    }

    #[test]
    fn empty_transitions_do_not_count_as_conversions() {
        let mut m = ConversionMatrix::new();
        m.record(GroupKind::Empty, GroupKind::OneElement);
        assert_eq!(m.total_conversions(), 0);
        assert_eq!(m.count(GroupKind::Empty, GroupKind::OneElement), 1);
    }
}

//! # bingo-core
//!
//! The core contribution of the Bingo paper: a radix-based bias
//! factorization sampling engine for dynamically changing weighted graphs.
//!
//! * [`radix`] — the bias decomposition `D(w)` and group biases `W(p_k)`
//!   (§4.1, Equations 3–4).
//! * [`fixed`] — λ-amortized handling of floating-point biases (§4.3).
//! * [`group`] — radix groups with the adaptive representations of §5.1
//!   (dense / one-element / sparse / regular) and the decimal group.
//! * [`vertex_space`] — the per-vertex two-stage sampling space: inter-group
//!   alias table + intra-group uniform sampling, with `O(K)` streaming
//!   updates and batched updates that rebuild once per vertex (§4.2, §5.2).
//! * [`engine`] — the whole-graph engine: streaming and parallel batched
//!   ingestion, `O(1)` neighbor sampling, memory and conversion accounting.
//! * [`context`] — the epoch-versioned adjacency-fingerprint provider with
//!   KnightKing-style hot-hub caches, backing the sharded service's
//!   forwarded second-order context.
//! * [`radix_base`] — the arbitrary-radix-base extension of §9.2.
//! * [`partition`] — 1-D partitioning and walker forwarding (§9.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod engine;
pub mod fixed;
pub mod group;
pub mod memory;
pub mod partition;
pub mod radix;
pub mod radix_base;
pub mod stats;
pub mod vertex_space;

pub use config::{BingoConfig, Lambda};
pub use context::ContextProviderStats;
pub use engine::{BatchOutcome, BingoEngine};
pub use group::{DecimalGroup, GroupKind, RadixGroup};
pub use memory::MemoryReport;
pub use stats::{ConversionMatrix, EngineStats};
pub use vertex_space::VertexSpace;

use bingo_graph::VertexId;

/// Errors produced by the Bingo engine.
#[derive(Debug, Clone, PartialEq)]
pub enum BingoError {
    /// A vertex id is outside the engine's vertex range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of vertices the engine manages.
        num_vertices: usize,
    },
    /// The requested edge does not exist.
    EdgeNotFound {
        /// Destination vertex of the missing edge.
        dst: VertexId,
    },
    /// A neighbor index is out of range for the vertex degree.
    NeighborIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The vertex degree.
        degree: usize,
    },
    /// An edge bias was invalid (non-positive, NaN or infinite).
    InvalidBias {
        /// Destination vertex of the offending edge.
        dst: VertexId,
    },
    /// An error bubbled up from the graph substrate.
    Graph(bingo_graph::GraphError),
}

impl std::fmt::Display for BingoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BingoError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range ({num_vertices} vertices)"),
            BingoError::EdgeNotFound { dst } => write!(f, "edge to {dst} not found"),
            BingoError::NeighborIndexOutOfRange { index, degree } => {
                write!(f, "neighbor index {index} out of range (degree {degree})")
            }
            BingoError::InvalidBias { dst } => write!(f, "invalid bias for edge to {dst}"),
            BingoError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for BingoError {}

impl From<bingo_graph::GraphError> for BingoError {
    fn from(e: bingo_graph::GraphError) -> Self {
        BingoError::Graph(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, BingoError>;

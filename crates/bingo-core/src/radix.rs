//! Radix-based bias decomposition (§4.1).
//!
//! Every integer bias `w` is decomposed into its set bits:
//! `D(w) = { 2^k | w ∧ 2^k ≠ 0 }` (Equation 3). Grouping the sub-biases by
//! bit position gives the per-group bias `W(p_k) = Σ_i (w_i ∧ 2^k)`
//! (Equation 4); because every member of group `k` contributes exactly
//! `2^k`, intra-group sampling is uniform, which is what makes Bingo's
//! two-stage sampling `O(1)`.

/// Maximum number of radix groups (64-bit biases).
pub const MAX_GROUPS: usize = 64;

/// Iterator over the set-bit positions of a bias (the decomposition `D(w)`).
#[derive(Debug, Clone)]
pub struct RadixDecomposition {
    remaining: u64,
}

impl Iterator for RadixDecomposition {
    type Item = u8;

    #[inline]
    fn next(&mut self) -> Option<u8> {
        if self.remaining == 0 {
            return None;
        }
        let bit = self.remaining.trailing_zeros() as u8;
        self.remaining &= self.remaining - 1;
        Some(bit)
    }
}

/// Decompose an integer bias into its set-bit positions (Equation 3).
///
/// `decompose(5)` yields bits `[0, 2]`, i.e. `5 = 2^0 + 2^2`.
#[inline]
pub fn decompose(bias: u64) -> RadixDecomposition {
    RadixDecomposition { remaining: bias }
}

/// Number of radix groups an integer bias participates in
/// (`t = popcount(w)` in the space-complexity analysis of §4.4).
#[inline]
pub fn popcount(bias: u64) -> u32 {
    bias.count_ones()
}

/// Number of groups needed to represent biases up to `max_bias`
/// (`K = log2(max(w)) + 1`).
#[inline]
pub fn groups_for_max_bias(max_bias: u64) -> usize {
    if max_bias == 0 {
        0
    } else {
        64 - max_bias.leading_zeros() as usize
    }
}

/// Whether an integer bias contributes to the radix group of bit `k`
/// (the membership test `w ∧ 2^k ≠ 0`).
#[inline]
pub fn in_group(bias: u64, bit: u8) -> bool {
    bit < 64 && bias & (1u64 << bit) != 0
}

/// The sub-bias an integer bias contributes to group `k` (`w ∧ 2^k`).
#[inline]
pub fn sub_bias(bias: u64, bit: u8) -> u64 {
    if bit < 64 {
        bias & (1u64 << bit)
    } else {
        0
    }
}

/// Compute all group biases `W(p_k)` for a slice of integer biases
/// (Equation 4). The returned vector has `groups_for_max_bias(max)` entries.
pub fn group_biases(biases: &[u64]) -> Vec<u64> {
    let max = biases.iter().copied().max().unwrap_or(0);
    let k = groups_for_max_bias(max);
    let mut groups = vec![0u64; k];
    for &w in biases {
        for bit in decompose(w) {
            groups[bit as usize] += 1u64 << bit;
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_matches_binary_representation() {
        assert_eq!(decompose(0).collect::<Vec<_>>(), Vec::<u8>::new());
        assert_eq!(decompose(1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(decompose(5).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(decompose(4).collect::<Vec<_>>(), vec![2]);
        assert_eq!(decompose(3).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(decompose(u64::MAX).count(), 64);
    }

    #[test]
    fn decomposition_reconstructs_the_bias() {
        for w in [1u64, 5, 12, 255, 1023, 0xDEAD_BEEF] {
            let sum: u64 = decompose(w).map(|b| 1u64 << b).sum();
            assert_eq!(sum, w);
        }
    }

    #[test]
    fn popcount_and_group_count() {
        assert_eq!(popcount(5), 2);
        assert_eq!(popcount(0), 0);
        assert_eq!(groups_for_max_bias(0), 0);
        assert_eq!(groups_for_max_bias(1), 1);
        assert_eq!(groups_for_max_bias(5), 3);
        assert_eq!(groups_for_max_bias(8), 4);
        assert_eq!(groups_for_max_bias(u64::MAX), 64);
    }

    #[test]
    fn membership_and_sub_bias() {
        assert!(in_group(5, 0));
        assert!(!in_group(5, 1));
        assert!(in_group(5, 2));
        assert!(!in_group(5, 64));
        assert_eq!(sub_bias(5, 2), 4);
        assert_eq!(sub_bias(5, 1), 0);
        assert_eq!(sub_bias(5, 80), 0);
    }

    #[test]
    fn running_example_group_biases() {
        // Vertex 2: biases 5, 4, 3 → group 2^0 = {5, 3}, 2^1 = {3}, 2^2 = {5, 4}.
        // Group biases: 2, 2, 8 (as stated in §4.1 of the paper).
        let groups = group_biases(&[5, 4, 3]);
        assert_eq!(groups, vec![2, 2, 8]);
        let total: u64 = groups.iter().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn group_biases_handle_empty_and_zero() {
        assert!(group_biases(&[]).is_empty());
        assert!(group_biases(&[0, 0]).is_empty());
    }

    #[test]
    fn group_bias_totals_equal_bias_totals() {
        let biases = [7u64, 13, 1, 255, 1024, 9999];
        let groups = group_biases(&biases);
        assert_eq!(groups.iter().sum::<u64>(), biases.iter().sum::<u64>());
    }
}

//! Epoch-versioned adjacency-fingerprint provider (KnightKing-style static
//! caches for hot hubs).
//!
//! Sharded deployments attach a membership snapshot of a walker's previous
//! vertex to every forwarded second-order walker. Hubs dominate that
//! traffic — a power-law graph forwards the same few high-degree
//! fingerprints thousands of times per wave — so rebuilding the sorted
//! adjacency `Vec` per forward is the dominant allocation cost.
//! The provider removes it: the top-k owned vertices by degree get
//! their fingerprints built **once per engine generation** and held behind
//! `Arc`s (handing one out is a pointer clone), while cold vertices are
//! built on demand. Any structural mutation of the engine's edge set (insert
//! or delete — reweights keep membership intact) invalidates the provider; the hot set is rebuilt lazily on the next request, so
//! workloads that never capture context (first-order walks) never pay for
//! it.
//!
//! The provider is owned by [`BingoEngine`](crate::BingoEngine) and used
//! through [`BingoEngine::context_fingerprint`](crate::BingoEngine::context_fingerprint).

use bingo_graph::VertexId;
use std::collections::HashMap;
use std::sync::Arc;

/// Activity counters of the engine's context provider (monotonic over the
/// engine's lifetime, not reset by invalidation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextProviderStats {
    /// Fingerprint requests served from the hot-hub set (`Arc` clone).
    pub hot_hits: u64,
    /// Fingerprint requests that built a cold vertex's snapshot on demand.
    pub cold_builds: u64,
    /// Times the hot set was (re)built after an invalidation.
    pub hot_rebuilds: u64,
}

/// Per-generation cache of hot-hub adjacency fingerprints.
#[derive(Debug, Clone, Default)]
pub(crate) struct ContextProvider {
    /// Snapshots of the top-k owned vertices by degree, valid for the
    /// current engine generation.
    hot: HashMap<VertexId, Arc<Vec<VertexId>>>,
    /// Whether `hot` reflects the current generation.
    built: bool,
    stats: ContextProviderStats,
}

impl ContextProvider {
    /// Drop every snapshot; the hot set is rebuilt lazily on the next
    /// [`ContextProvider::get`] after [`ContextProvider::install_hot`].
    pub(crate) fn invalidate(&mut self) {
        self.hot.clear();
        self.built = false;
    }

    pub(crate) fn is_built(&self) -> bool {
        self.built
    }

    /// Install a freshly built hot set for the current generation.
    pub(crate) fn install_hot(&mut self, hot: HashMap<VertexId, Arc<Vec<VertexId>>>) {
        self.hot = hot;
        self.built = true;
        self.stats.hot_rebuilds += 1;
    }

    /// Look up `v` in the hot set (counts a hit on success).
    pub(crate) fn get(&mut self, v: VertexId) -> Option<Arc<Vec<VertexId>>> {
        let fp = self.hot.get(&v).cloned();
        if fp.is_some() {
            self.stats.hot_hits += 1;
        }
        fp
    }

    pub(crate) fn count_cold_build(&mut self) {
        self.stats.cold_builds += 1;
    }

    pub(crate) fn stats(&self) -> ContextProviderStats {
        self.stats
    }
}

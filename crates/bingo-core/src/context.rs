//! Epoch-versioned adjacency-fingerprint provider (KnightKing-style static
//! caches for hot hubs).
//!
//! Sharded deployments attach a membership snapshot of a walker's previous
//! vertex to every forwarded second-order walker. Hubs dominate that
//! traffic — a power-law graph forwards the same few high-degree
//! fingerprints thousands of times per wave — so rebuilding the sorted
//! adjacency `Vec` per forward is the dominant allocation cost.
//! The provider removes it: the top-k owned vertices by degree get
//! their fingerprints built **once per engine generation** and held behind
//! `Arc`s (handing one out is a pointer clone), while cold vertices are
//! built on demand. A structural mutation of the engine's edge set (insert
//! or delete — reweights keep membership intact) invalidates only the
//! snapshots of the vertices it touched: the update paths know their
//! source-vertex sets, so untouched hubs keep serving `Arc` clones across
//! epochs and touched hot hubs are re-encoded in place
//! (`ContextProvider::invalidate_vertices`). Wholesale flushes (the
//! pre-scoping behavior, kept behind
//! `BingoConfig::scoped_context_invalidation = false` as the measurable
//! baseline) rebuild the hot set lazily on the next request, so workloads
//! that never capture context (first-order walks) never pay for it.
//!
//! The provider is owned by [`BingoEngine`](crate::BingoEngine) and used
//! through [`BingoEngine::context_fingerprint`](crate::BingoEngine::context_fingerprint).

use bingo_graph::VertexId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Activity counters of the engine's context provider (monotonic over the
/// engine's lifetime, not reset by invalidation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextProviderStats {
    /// Fingerprint requests served from the hot-hub set (`Arc` clone).
    pub hot_hits: u64,
    /// Fingerprint requests that built a cold vertex's snapshot on demand.
    pub cold_builds: u64,
    /// Times the hot set was (re)built after an invalidation.
    pub hot_rebuilds: u64,
    /// Hot snapshots evicted individually by scoped invalidation (vs the
    /// whole-set flushes counted via `hot_rebuilds`).
    pub scoped_evictions: u64,
    /// Hot snapshots re-encoded in place after a scoped eviction.
    pub hot_refreshes: u64,
}

/// Per-generation cache of hot-hub adjacency fingerprints.
///
/// Lookups go through `&self` so concurrent walkers holding a shared
/// engine lock can serve fingerprints; the hit/miss tallies are atomics
/// for the same reason. Installing or invalidating the hot set still
/// requires `&mut` — sharded deployments do both under their exclusive
/// engine lock (see [`BingoEngine::warm_context`](crate::BingoEngine::warm_context)).
#[derive(Debug, Default)]
pub(crate) struct ContextProvider {
    /// Snapshots of the top-k owned vertices by degree, valid for the
    /// current engine generation.
    hot: HashMap<VertexId, Arc<Vec<VertexId>>>,
    /// Whether `hot` reflects the current generation.
    built: bool,
    /// Atomic so `&self` lookups can tally; monotonic counters only, no
    /// ordering relationship with the fingerprints themselves.
    hot_hits: AtomicU64,
    /// Atomic for the same reason as `hot_hits`.
    cold_builds: AtomicU64,
    hot_rebuilds: u64,
    scoped_evictions: u64,
    hot_refreshes: u64,
}

impl Clone for ContextProvider {
    fn clone(&self) -> Self {
        ContextProvider {
            hot: self.hot.clone(),
            built: self.built,
            // relaxed-ok: monotonic stat counters; no ordering required.
            hot_hits: AtomicU64::new(self.hot_hits.load(Ordering::Relaxed)),
            // relaxed-ok: monotonic stat counters; no ordering required.
            cold_builds: AtomicU64::new(self.cold_builds.load(Ordering::Relaxed)),
            hot_rebuilds: self.hot_rebuilds,
            scoped_evictions: self.scoped_evictions,
            hot_refreshes: self.hot_refreshes,
        }
    }
}

impl ContextProvider {
    /// Drop every snapshot; the hot set is rebuilt on the next
    /// [`ContextProvider::install_hot`].
    pub(crate) fn invalidate(&mut self) {
        self.hot.clear();
        self.built = false;
    }

    /// Scoped invalidation: drop only the snapshots of `touched` vertices,
    /// returning the ids that were actually hot. The rest of the hot set —
    /// whose adjacency the update did not change — stays valid, and `built`
    /// stays `true`, so untouched hubs keep serving `Arc` clones across
    /// structural epochs. Callers re-encode the returned ids in place
    /// ([`ContextProvider::refresh_hot`]) so touched hubs do not silently
    /// degrade to cold builds.
    pub(crate) fn invalidate_vertices(&mut self, touched: &[VertexId]) -> Vec<VertexId> {
        let mut evicted = Vec::new();
        for &v in touched {
            if self.hot.remove(&v).is_some() {
                evicted.push(v);
            }
        }
        self.scoped_evictions += evicted.len() as u64;
        evicted
    }

    /// Re-install a freshly encoded snapshot for a vertex evicted by
    /// [`ContextProvider::invalidate_vertices`].
    pub(crate) fn refresh_hot(&mut self, v: VertexId, fingerprint: Arc<Vec<VertexId>>) {
        self.hot.insert(v, fingerprint);
        self.hot_refreshes += 1;
    }

    pub(crate) fn is_built(&self) -> bool {
        self.built
    }

    /// Install a freshly built hot set for the current generation.
    pub(crate) fn install_hot(&mut self, hot: HashMap<VertexId, Arc<Vec<VertexId>>>) {
        self.hot = hot;
        self.built = true;
        self.hot_rebuilds += 1;
    }

    /// Look up `v` in the hot set (counts a hit on success).
    pub(crate) fn get(&self, v: VertexId) -> Option<Arc<Vec<VertexId>>> {
        let fp = self.hot.get(&v).cloned();
        if fp.is_some() {
            // relaxed-ok: monotonic stat counter; no ordering required.
            self.hot_hits.fetch_add(1, Ordering::Relaxed);
        }
        fp
    }

    pub(crate) fn count_cold_build(&self) {
        // relaxed-ok: monotonic stat counter; no ordering required.
        self.cold_builds.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ContextProviderStats {
        ContextProviderStats {
            // relaxed-ok: monotonic stat counter; no ordering required.
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            // relaxed-ok: monotonic stat counter; no ordering required.
            cold_builds: self.cold_builds.load(Ordering::Relaxed),
            hot_rebuilds: self.hot_rebuilds,
            scoped_evictions: self.scoped_evictions,
            hot_refreshes: self.hot_refreshes,
        }
    }
}

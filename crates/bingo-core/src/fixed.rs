//! λ-amortized handling of floating-point biases (§4.3).
//!
//! Radix decomposition needs integer biases, but real workloads carry
//! floating-point edge weights. Bingo multiplies every bias by an
//! amortization factor λ, radix-decomposes the integer part of the scaled
//! value, and parks the fractional remainder in a dedicated *decimal group*
//! that is sampled by ITS/rejection. Choosing λ so that the decimal group's
//! total weight stays below `1/d` of the vertex total keeps the expected
//! sampling cost `O(1)` (§4.4).

use bingo_graph::Bias;

/// A bias split into its λ-scaled integer part and fractional remainder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledBias {
    /// Integer part of `bias · λ`, radix-decomposed into groups.
    pub integer: u64,
    /// Fractional remainder of `bias · λ`, accumulated in the decimal group.
    pub fraction: f64,
}

impl ScaledBias {
    /// Split a bias using the amortization factor `lambda`.
    pub fn new(bias: Bias, lambda: f64) -> Self {
        if bias.is_integral() && (lambda - 1.0).abs() < f64::EPSILON {
            // Fast path: integer biases with λ = 1 need no scaling at all.
            return ScaledBias {
                integer: bias.as_int().unwrap_or(0),
                fraction: 0.0,
            };
        }
        ScaledBias {
            integer: bias.scaled_integer_part(lambda),
            fraction: bias.scaled_fraction(lambda),
        }
    }

    /// The total scaled weight (`integer + fraction = bias · λ`).
    pub fn total(&self) -> f64 {
        self.integer as f64 + self.fraction
    }

    /// Whether the scaled bias contributes anything to the decimal group.
    pub fn has_fraction(&self) -> bool {
        self.fraction > 0.0
    }
}

/// Pick a λ for a vertex such that the decimal group's share of the total
/// weight is below `1 / degree`, following the analysis of §4.4. Starts at
/// `initial` and doubles until the bound holds (or a 2^40 cap is reached).
pub fn choose_lambda(biases: &[f64], initial: f64) -> f64 {
    let degree = biases.len();
    if degree == 0 {
        return initial.max(1.0);
    }
    let mut lambda = initial.max(1.0);
    let cap = (1u64 << 40) as f64;
    loop {
        let mut integer_sum = 0.0;
        let mut fraction_sum = 0.0;
        for &b in biases {
            let scaled = b * lambda;
            integer_sum += scaled.floor();
            fraction_sum += scaled - scaled.floor();
        }
        let total = integer_sum + fraction_sum;
        if total <= 0.0 || fraction_sum / total < 1.0 / degree as f64 || lambda >= cap {
            return lambda;
        }
        lambda *= 2.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_bias_with_unit_lambda_has_no_fraction() {
        let s = ScaledBias::new(Bias::from_int(13), 1.0);
        assert_eq!(s.integer, 13);
        assert_eq!(s.fraction, 0.0);
        assert!(!s.has_fraction());
        assert_eq!(s.total(), 13.0);
    }

    #[test]
    fn paper_example_lambda_ten() {
        // §4.3: biases 0.554, 0.726, 0.32 with λ = 10.
        let a = ScaledBias::new(Bias::from_float(0.554), 10.0);
        let b = ScaledBias::new(Bias::from_float(0.726), 10.0);
        let c = ScaledBias::new(Bias::from_float(0.32), 10.0);
        assert_eq!((a.integer, b.integer, c.integer), (5, 7, 3));
        assert!((a.fraction - 0.54).abs() < 1e-9);
        assert!((b.fraction - 0.26).abs() < 1e-9);
        assert!((c.fraction - 0.20).abs() < 1e-9);
        // W_D / (W_I + W_D) = 1/16 < 1/3 as the paper computes.
        let wd = a.fraction + b.fraction + c.fraction;
        let wi = (a.integer + b.integer + c.integer) as f64;
        assert!((wd / (wi + wd) - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_preserves_relative_weights() {
        let lambda = 64.0;
        let x = ScaledBias::new(Bias::from_float(0.3), lambda);
        let y = ScaledBias::new(Bias::from_float(0.6), lambda);
        assert!((y.total() / x.total() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn choose_lambda_meets_the_bound() {
        let biases = [0.554, 0.726, 0.32, 0.149, 0.621];
        let lambda = choose_lambda(&biases, 2.0);
        let mut wi = 0.0;
        let mut wd = 0.0;
        for &b in &biases {
            let s = b * lambda;
            wi += s.floor();
            wd += s - s.floor();
        }
        assert!(wd / (wi + wd) < 1.0 / biases.len() as f64);
    }

    #[test]
    fn choose_lambda_handles_edge_cases() {
        assert_eq!(choose_lambda(&[], 4.0), 4.0);
        assert!(choose_lambda(&[], 0.0) >= 1.0);
        // Integer-valued floats are already fine at λ = 1.
        assert_eq!(choose_lambda(&[2.0, 4.0, 8.0], 1.0), 1.0);
    }
}

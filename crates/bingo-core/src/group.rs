//! Radix groups, their adaptive representations, and the decimal group.
//!
//! A *radix group* `p_k` holds the neighbor indices of all edges whose
//! (λ-scaled, integer) bias has bit `k` set. Every member contributes the
//! same sub-bias `2^k`, so intra-group sampling is uniform. Groups are
//! stored in one of the adaptive representations of §5.1:
//!
//! * **Regular** — intra-group neighbor index list plus a full inverted
//!   index (neighbor index → position), giving `O(1)` locate/delete.
//! * **Dense** (more than α% of the degree) — no structure at all; sampling
//!   rejects against the raw adjacency list and deletions only adjust a
//!   counter.
//! * **One-element** — just the single neighbor index.
//! * **Sparse** (fewer than β% of the degree) — a compact member list
//!   located by linear scan, avoiding the full-size inverted index.
//!
//! The *decimal group* (§4.3) stores the fractional remainders of λ-scaled
//! floating-point biases and is sampled by inverse-transform on demand.

use rand::Rng;

/// Sentinel for "not present" entries of an inverted index.
const INVALID: u32 = u32::MAX;

/// The adaptive representation categories of Equation 9, plus `Empty` for
/// groups that currently hold no edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupKind {
    /// The group holds no edges and is never sampled.
    Empty,
    /// More than α% of the neighbors fall into this group.
    Dense,
    /// Exactly one neighbor falls into this group.
    OneElement,
    /// Fewer than β% of the neighbors (but more than one) fall into this
    /// group.
    Sparse,
    /// Everything else: full neighbor index list + inverted index.
    Regular,
}

impl GroupKind {
    /// Classify a group by its cardinality and the vertex degree
    /// (Equation 9 with the paper's precedence: dense first).
    pub fn classify(
        cardinality: usize,
        degree: usize,
        alpha_percent: f64,
        beta_percent: f64,
    ) -> Self {
        if cardinality == 0 || degree == 0 {
            GroupKind::Empty
        } else if cardinality as f64 / degree as f64 > alpha_percent / 100.0 {
            GroupKind::Dense
        } else if cardinality == 1 {
            GroupKind::OneElement
        } else if (cardinality as f64 / degree as f64) < beta_percent / 100.0 {
            GroupKind::Sparse
        } else {
            GroupKind::Regular
        }
    }

    /// All non-empty kinds, in the order used by the figures.
    pub fn all() -> [GroupKind; 4] {
        [
            GroupKind::Dense,
            GroupKind::Regular,
            GroupKind::Sparse,
            GroupKind::OneElement,
        ]
    }
}

/// Internal storage of a radix group.
#[derive(Debug, Clone, PartialEq)]
enum GroupRepr {
    Empty,
    Dense {
        count: usize,
    },
    OneElement {
        neighbor: u32,
    },
    Sparse {
        members: Vec<u32>,
    },
    Regular {
        members: Vec<u32>,
        inverted: Vec<u32>,
    },
}

/// One radix group of a vertex's sampling space.
#[derive(Debug, Clone, PartialEq)]
pub struct RadixGroup {
    bit: u8,
    repr: GroupRepr,
}

impl RadixGroup {
    /// Create an empty group for radix bit `bit`.
    pub fn new(bit: u8) -> Self {
        RadixGroup {
            bit,
            repr: GroupRepr::Empty,
        }
    }

    /// Build a group of the requested kind from an explicit member list.
    pub fn from_members(bit: u8, kind: GroupKind, members: Vec<u32>) -> Self {
        let repr = match kind {
            GroupKind::Empty => GroupRepr::Empty,
            GroupKind::Dense => GroupRepr::Dense {
                count: members.len(),
            },
            GroupKind::OneElement => match members.first() {
                Some(&n) => GroupRepr::OneElement { neighbor: n },
                None => GroupRepr::Empty,
            },
            GroupKind::Sparse => GroupRepr::Sparse { members },
            GroupKind::Regular => {
                let mut inverted = Vec::new();
                for (pos, &m) in members.iter().enumerate() {
                    if m as usize >= inverted.len() {
                        inverted.resize(m as usize + 1, INVALID);
                    }
                    inverted[m as usize] = pos as u32;
                }
                GroupRepr::Regular { members, inverted }
            }
        };
        RadixGroup { bit, repr }
    }

    /// The radix bit this group represents.
    pub fn bit(&self) -> u8 {
        self.bit
    }

    /// Current representation kind.
    pub fn kind(&self) -> GroupKind {
        match &self.repr {
            GroupRepr::Empty => GroupKind::Empty,
            GroupRepr::Dense { .. } => GroupKind::Dense,
            GroupRepr::OneElement { .. } => GroupKind::OneElement,
            GroupRepr::Sparse { .. } => GroupKind::Sparse,
            GroupRepr::Regular { .. } => GroupKind::Regular,
        }
    }

    /// Number of edges in the group.
    pub fn cardinality(&self) -> usize {
        match &self.repr {
            GroupRepr::Empty => 0,
            GroupRepr::Dense { count } => *count,
            GroupRepr::OneElement { .. } => 1,
            GroupRepr::Sparse { members } => members.len(),
            GroupRepr::Regular { members, .. } => members.len(),
        }
    }

    /// Group bias `W(p_k) = |G_k| · 2^k` (Equation 4).
    pub fn weight(&self) -> f64 {
        self.cardinality() as f64 * (1u64 << self.bit) as f64
    }

    /// Whether the group currently tracks explicit members (everything but
    /// dense and empty groups).
    pub fn has_member_list(&self) -> bool {
        matches!(
            self.repr,
            GroupRepr::OneElement { .. } | GroupRepr::Sparse { .. } | GroupRepr::Regular { .. }
        )
    }

    /// Explicit member list, if one is kept.
    pub fn members(&self) -> Option<Vec<u32>> {
        match &self.repr {
            GroupRepr::Empty => Some(Vec::new()),
            GroupRepr::Dense { .. } => None,
            GroupRepr::OneElement { neighbor } => Some(vec![*neighbor]),
            GroupRepr::Sparse { members } => Some(members.clone()),
            GroupRepr::Regular { members, .. } => Some(members.clone()),
        }
    }

    /// Whether neighbor index `idx` is stored in this group. Dense groups
    /// answer `None` because membership is determined by the bias bit, which
    /// the group does not store.
    pub fn contains(&self, idx: u32) -> Option<bool> {
        match &self.repr {
            GroupRepr::Empty => Some(false),
            GroupRepr::Dense { .. } => None,
            GroupRepr::OneElement { neighbor } => Some(*neighbor == idx),
            GroupRepr::Sparse { members } => Some(members.contains(&idx)),
            GroupRepr::Regular { inverted, .. } => {
                Some((idx as usize) < inverted.len() && inverted[idx as usize] != INVALID)
            }
        }
    }

    /// Add the edge with neighbor index `idx` to the group.
    ///
    /// The caller is responsible for only inserting edges whose bias has
    /// this group's bit set. Representations are *not* reclassified here;
    /// that happens in the rebuild/reclassify step.
    pub fn insert(&mut self, idx: u32) {
        match &mut self.repr {
            GroupRepr::Empty => {
                self.repr = GroupRepr::OneElement { neighbor: idx };
            }
            GroupRepr::Dense { count } => {
                *count += 1;
            }
            GroupRepr::OneElement { neighbor } => {
                self.repr = GroupRepr::Sparse {
                    members: vec![*neighbor, idx],
                };
            }
            GroupRepr::Sparse { members } => {
                members.push(idx);
            }
            GroupRepr::Regular { members, inverted } => {
                let pos = members.len() as u32;
                members.push(idx);
                if idx as usize >= inverted.len() {
                    inverted.resize(idx as usize + 1, INVALID);
                }
                inverted[idx as usize] = pos;
            }
        }
    }

    /// Remove the edge with neighbor index `idx` from the group.
    ///
    /// Returns `true` if an entry was removed. Dense groups only decrement
    /// their counter (the caller has already checked membership via the bias
    /// bit).
    pub fn remove(&mut self, idx: u32) -> bool {
        match &mut self.repr {
            GroupRepr::Empty => false,
            GroupRepr::Dense { count } => {
                if *count > 0 {
                    *count -= 1;
                    if *count == 0 {
                        self.repr = GroupRepr::Empty;
                    }
                    true
                } else {
                    false
                }
            }
            GroupRepr::OneElement { neighbor } => {
                if *neighbor == idx {
                    self.repr = GroupRepr::Empty;
                    true
                } else {
                    false
                }
            }
            GroupRepr::Sparse { members } => match members.iter().position(|&m| m == idx) {
                Some(pos) => {
                    members.swap_remove(pos);
                    if members.is_empty() {
                        self.repr = GroupRepr::Empty;
                    }
                    true
                }
                None => false,
            },
            GroupRepr::Regular { members, inverted } => {
                if idx as usize >= inverted.len() || inverted[idx as usize] == INVALID {
                    return false;
                }
                let pos = inverted[idx as usize] as usize;
                members.swap_remove(pos);
                inverted[idx as usize] = INVALID;
                if pos < members.len() {
                    // The previous tail member now lives at `pos`.
                    let moved = members[pos];
                    inverted[moved as usize] = pos as u32;
                }
                if members.is_empty() {
                    self.repr = GroupRepr::Empty;
                }
                true
            }
        }
    }

    /// The neighbor index of a member changed (the adjacency list swap-moved
    /// the edge from `old_idx` to `new_idx`); update the group accordingly.
    pub fn remap(&mut self, old_idx: u32, new_idx: u32) {
        if old_idx == new_idx {
            return;
        }
        match &mut self.repr {
            GroupRepr::Empty | GroupRepr::Dense { .. } => {}
            GroupRepr::OneElement { neighbor } => {
                if *neighbor == old_idx {
                    *neighbor = new_idx;
                }
            }
            GroupRepr::Sparse { members } => {
                if let Some(pos) = members.iter().position(|&m| m == old_idx) {
                    members[pos] = new_idx;
                }
            }
            GroupRepr::Regular { members, inverted } => {
                if old_idx as usize >= inverted.len() || inverted[old_idx as usize] == INVALID {
                    return;
                }
                let pos = inverted[old_idx as usize] as usize;
                members[pos] = new_idx;
                inverted[old_idx as usize] = INVALID;
                if new_idx as usize >= inverted.len() {
                    inverted.resize(new_idx as usize + 1, INVALID);
                }
                inverted[new_idx as usize] = pos as u32;
            }
        }
    }

    /// Uniformly sample a member. Dense groups return `None`: they carry no
    /// member list, so the caller must fall back to rejection sampling over
    /// the adjacency list (§5.1).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        match &self.repr {
            GroupRepr::Empty | GroupRepr::Dense { .. } => None,
            GroupRepr::OneElement { neighbor } => Some(*neighbor),
            GroupRepr::Sparse { members } => Some(members[rng.gen_range(0..members.len())]),
            GroupRepr::Regular { members, .. } => Some(members[rng.gen_range(0..members.len())]),
        }
    }

    /// Convert the group to the requested kind.
    ///
    /// For conversions out of the dense representation the caller must
    /// provide the explicit member list (obtained by scanning the adjacency
    /// list), because dense groups do not store one.
    pub fn convert_to(&mut self, kind: GroupKind, members_if_dense: Option<Vec<u32>>) {
        if kind == self.kind() {
            return;
        }
        let members = match self.members() {
            Some(m) => m,
            None => members_if_dense.unwrap_or_default(),
        };
        *self = RadixGroup::from_members(self.bit, kind, members);
    }

    /// Heap bytes used by this group's structures.
    pub fn memory_bytes(&self) -> usize {
        match &self.repr {
            GroupRepr::Empty => 0,
            GroupRepr::Dense { .. } => std::mem::size_of::<usize>(),
            GroupRepr::OneElement { .. } => std::mem::size_of::<u32>(),
            GroupRepr::Sparse { members } => members.capacity() * std::mem::size_of::<u32>(),
            GroupRepr::Regular { members, inverted } => {
                (members.capacity() + inverted.capacity()) * std::mem::size_of::<u32>()
            }
        }
    }
}

/// The decimal group holding fractional remainders of λ-scaled biases.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecimalGroup {
    members: Vec<u32>,
    fractions: Vec<f64>,
    /// neighbor index → position in `members` (INVALID when absent).
    inverted: Vec<u32>,
    total: f64,
}

impl DecimalGroup {
    /// Create an empty decimal group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges with a fractional remainder.
    pub fn cardinality(&self) -> usize {
        self.members.len()
    }

    /// Total fractional weight `W_D`.
    pub fn weight(&self) -> f64 {
        self.total
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Add the fractional remainder of edge `idx`.
    pub fn insert(&mut self, idx: u32, fraction: f64) {
        if fraction <= 0.0 {
            return;
        }
        if idx as usize >= self.inverted.len() {
            self.inverted.resize(idx as usize + 1, INVALID);
        }
        debug_assert_eq!(self.inverted[idx as usize], INVALID);
        self.inverted[idx as usize] = self.members.len() as u32;
        self.members.push(idx);
        self.fractions.push(fraction);
        self.total += fraction;
    }

    /// Remove edge `idx` from the decimal group, returning its fraction.
    pub fn remove(&mut self, idx: u32) -> Option<f64> {
        if idx as usize >= self.inverted.len() || self.inverted[idx as usize] == INVALID {
            return None;
        }
        let pos = self.inverted[idx as usize] as usize;
        let fraction = self.fractions[pos];
        self.members.swap_remove(pos);
        self.fractions.swap_remove(pos);
        self.inverted[idx as usize] = INVALID;
        if pos < self.members.len() {
            let moved = self.members[pos];
            self.inverted[moved as usize] = pos as u32;
        }
        self.total -= fraction;
        if self.members.is_empty() {
            self.total = 0.0;
        }
        Some(fraction)
    }

    /// The neighbor index of a member changed; update the mapping.
    pub fn remap(&mut self, old_idx: u32, new_idx: u32) {
        if old_idx == new_idx
            || old_idx as usize >= self.inverted.len()
            || self.inverted[old_idx as usize] == INVALID
        {
            return;
        }
        let pos = self.inverted[old_idx as usize] as usize;
        self.members[pos] = new_idx;
        self.inverted[old_idx as usize] = INVALID;
        if new_idx as usize >= self.inverted.len() {
            self.inverted.resize(new_idx as usize + 1, INVALID);
        }
        self.inverted[new_idx as usize] = pos as u32;
    }

    /// Sample a member proportionally to its fraction (inverse transform by
    /// linear scan — the decimal group is selected with probability
    /// `W_D / W`, which λ keeps below `1/d`, so the scan does not affect the
    /// expected `O(1)` sampling cost).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.members.is_empty() || self.total <= 0.0 {
            return None;
        }
        let x = rng.gen::<f64>() * self.total;
        let mut acc = 0.0;
        for (i, &f) in self.fractions.iter().enumerate() {
            acc += f;
            if x < acc {
                return Some(self.members[i]);
            }
        }
        self.members.last().copied()
    }

    /// Heap bytes used by the decimal group.
    pub fn memory_bytes(&self) -> usize {
        self.members.capacity() * std::mem::size_of::<u32>()
            + self.fractions.capacity() * std::mem::size_of::<f64>()
            + self.inverted.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    #[test]
    fn classify_follows_equation_9() {
        // α = 40, β = 10 (paper defaults).
        assert_eq!(GroupKind::classify(0, 10, 40.0, 10.0), GroupKind::Empty);
        assert_eq!(GroupKind::classify(5, 10, 40.0, 10.0), GroupKind::Dense);
        // |G| = 1 is one-element regardless of how small the ratio is.
        assert_eq!(
            GroupKind::classify(1, 100, 40.0, 10.0),
            GroupKind::OneElement
        );
        assert_eq!(GroupKind::classify(1, 5, 40.0, 10.0), GroupKind::OneElement);
        assert_eq!(GroupKind::classify(2, 10, 40.0, 10.0), GroupKind::Regular);
        assert_eq!(GroupKind::classify(2, 100, 40.0, 10.0), GroupKind::Sparse);
        // Dense takes precedence even for a single element on tiny degrees.
        assert_eq!(GroupKind::classify(1, 2, 40.0, 10.0), GroupKind::Dense);
    }

    #[test]
    fn empty_group_behaviour() {
        let mut g = RadixGroup::new(3);
        assert_eq!(g.kind(), GroupKind::Empty);
        assert_eq!(g.cardinality(), 0);
        assert_eq!(g.weight(), 0.0);
        assert!(!g.remove(5));
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(g.sample_uniform(&mut rng), None);
    }

    #[test]
    fn insert_progression_empty_one_sparse() {
        let mut g = RadixGroup::new(0);
        g.insert(4);
        assert_eq!(g.kind(), GroupKind::OneElement);
        g.insert(7);
        assert_eq!(g.kind(), GroupKind::Sparse);
        assert_eq!(g.cardinality(), 2);
        assert_eq!(g.weight(), 2.0);
        assert_eq!(g.contains(4), Some(true));
        assert_eq!(g.contains(9), Some(false));
    }

    #[test]
    fn regular_group_inverted_index_consistency() {
        let mut g = RadixGroup::from_members(2, GroupKind::Regular, vec![0, 3, 5]);
        assert_eq!(g.kind(), GroupKind::Regular);
        assert_eq!(g.cardinality(), 3);
        assert_eq!(g.weight(), 12.0);
        assert_eq!(g.contains(3), Some(true));
        // Remove the head; the tail member (5) must take its place.
        assert!(g.remove(0));
        assert_eq!(g.contains(0), Some(false));
        assert_eq!(g.contains(5), Some(true));
        assert_eq!(g.cardinality(), 2);
        // Insert a new member and check it is findable.
        g.insert(9);
        assert_eq!(g.contains(9), Some(true));
        assert!(g.remove(9));
        assert!(!g.remove(9));
    }

    #[test]
    fn regular_group_remap_updates_indices() {
        let mut g = RadixGroup::from_members(1, GroupKind::Regular, vec![2, 6]);
        g.remap(6, 1);
        assert_eq!(g.contains(6), Some(false));
        assert_eq!(g.contains(1), Some(true));
        // Remapping an absent index is a no-op.
        g.remap(42, 3);
        assert_eq!(g.cardinality(), 2);
    }

    #[test]
    fn sparse_and_one_element_remap() {
        let mut s = RadixGroup::from_members(0, GroupKind::Sparse, vec![1, 2, 3]);
        s.remap(2, 9);
        assert_eq!(s.contains(9), Some(true));
        assert_eq!(s.contains(2), Some(false));
        let mut o = RadixGroup::from_members(0, GroupKind::OneElement, vec![4]);
        o.remap(4, 8);
        assert_eq!(o.contains(8), Some(true));
    }

    #[test]
    fn dense_group_counts_only() {
        let mut g = RadixGroup::from_members(0, GroupKind::Dense, vec![0, 1, 2, 3, 4]);
        assert_eq!(g.kind(), GroupKind::Dense);
        assert_eq!(g.cardinality(), 5);
        assert_eq!(g.contains(0), None);
        assert!(g.members().is_none());
        g.insert(9);
        assert_eq!(g.cardinality(), 6);
        assert!(g.remove(9));
        assert_eq!(g.cardinality(), 5);
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(g.sample_uniform(&mut rng), None);
        // Draining a dense group turns it empty.
        for _ in 0..5 {
            assert!(g.remove(0));
        }
        assert_eq!(g.kind(), GroupKind::Empty);
    }

    #[test]
    fn uniform_sampling_covers_all_members() {
        let g = RadixGroup::from_members(0, GroupKind::Regular, vec![10, 20, 30]);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(g.sample_uniform(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn conversion_between_kinds_preserves_members() {
        let mut g = RadixGroup::from_members(2, GroupKind::Sparse, vec![1, 4, 6]);
        g.convert_to(GroupKind::Regular, None);
        assert_eq!(g.kind(), GroupKind::Regular);
        assert_eq!(g.contains(4), Some(true));
        g.convert_to(GroupKind::Dense, None);
        assert_eq!(g.kind(), GroupKind::Dense);
        assert_eq!(g.cardinality(), 3);
        // Converting out of dense needs the member list from the caller.
        g.convert_to(GroupKind::Sparse, Some(vec![1, 4, 6]));
        assert_eq!(g.kind(), GroupKind::Sparse);
        assert_eq!(g.contains(6), Some(true));
        // Converting to the same kind is a no-op.
        g.convert_to(GroupKind::Sparse, None);
        assert_eq!(g.cardinality(), 3);
    }

    #[test]
    fn memory_ordering_regular_vs_sparse_vs_dense() {
        let members: Vec<u32> = (0..50).collect();
        let regular = RadixGroup::from_members(0, GroupKind::Regular, members.clone());
        let sparse = RadixGroup::from_members(0, GroupKind::Sparse, members.clone());
        let dense = RadixGroup::from_members(0, GroupKind::Dense, members);
        assert!(regular.memory_bytes() > sparse.memory_bytes());
        assert!(sparse.memory_bytes() > dense.memory_bytes());
    }

    #[test]
    fn decimal_group_insert_remove_sample() {
        let mut d = DecimalGroup::new();
        assert!(d.is_empty());
        d.insert(0, 0.54);
        d.insert(1, 0.26);
        d.insert(2, 0.20);
        assert_eq!(d.cardinality(), 3);
        assert!((d.weight() - 1.0).abs() < 1e-9);
        // Zero fractions are ignored.
        d.insert(3, 0.0);
        assert_eq!(d.cardinality(), 3);

        let mut rng = Pcg64::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[d.sample(&mut rng).unwrap() as usize] += 1;
        }
        assert!((counts[0] as f64 / 60_000.0 - 0.54).abs() < 0.02);

        assert_eq!(d.remove(1), Some(0.26));
        assert_eq!(d.remove(1), None);
        assert_eq!(d.cardinality(), 2);
        assert!((d.weight() - 0.74).abs() < 1e-9);
    }

    #[test]
    fn decimal_group_remap() {
        let mut d = DecimalGroup::new();
        d.insert(5, 0.3);
        d.remap(5, 2);
        assert_eq!(d.remove(5), None);
        assert_eq!(d.remove(2), Some(0.3));
        assert!(d.is_empty());
        assert_eq!(d.weight(), 0.0);
    }

    #[test]
    fn decimal_group_empty_sample_is_none() {
        let d = DecimalGroup::new();
        let mut rng = Pcg64::seed_from_u64(5);
        assert_eq!(d.sample(&mut rng), None);
    }
}

//! Service observability: per-shard throughput, occupancy and epoch
//! counters, aggregated into a [`ServiceStats`] snapshot.
//!
//! Since the telemetry refactor the counters are **views over the shared
//! [`bingo_telemetry::Registry`]**: every field of the (crate-internal)
//! `ShardCounters` is a
//! registry-backed handle registered under the stable taxonomy in
//! [`bingo_telemetry::names`] with a `shard` label, so `ServiceStats`, the
//! registry's `render()`/Prometheus/JSON expositions and any external
//! scraper all read the same atomics. Recording cost is unchanged from the
//! pre-registry raw atomics: handles are resolved once at service build,
//! and each record is a single relaxed RMW.

use bingo_telemetry::{names, Counter, Gauge, Telemetry};
use std::time::Duration;

/// Lock-free counters shared between one shard's task activations and the
/// service handle — registry-backed views (see the module docs). Writers
/// are whichever pool worker runs the shard's task (steps, updates, epoch
/// — or a thief's, for stolen visits) and the message pushers (queue
/// depth); readers take relaxed snapshots.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub steps: Counter,
    pub walkers_received: Counter,
    pub walkers_forwarded: Counter,
    pub walks_completed: Counter,
    pub updates_applied: Counter,
    pub update_batches: Counter,
    /// Number of update batches applied so far — the shard's generation
    /// counter. A walk step that reads epoch `e` observed the engine state
    /// after exactly `e` batches. Written with [`Counter::add_release`]
    /// *after* the batch is fully applied; read with
    /// [`Counter::get_acquire`].
    pub epoch: Counter,
    /// Messages currently queued (sender-incremented, worker-decremented).
    pub queue_depth: Gauge,
    /// Highest queue depth the worker has observed on dequeue.
    pub queue_high_water: Gauge,
    /// Nanoseconds the worker spent processing messages (vs. idle).
    pub busy_nanos: Counter,
    /// Bytes of forwarded-context snapshots (membership fingerprints for
    /// second-order models) this shard actually materialized on outbound
    /// walkers: the encoded payload the first time a `(vertex, epoch)`
    /// snapshot ships, a small handle for every reuse.
    pub context_bytes_forwarded: Counter,
    /// Bytes the exact-`Vec` wire format (no caching, no compact encoding)
    /// would have shipped for the same forwards — the baseline
    /// `context_bytes_forwarded` is measured against.
    pub context_bytes_raw: Counter,
    /// Forwards whose membership snapshot was reused from this shard's
    /// `(vertex, epoch)` cache.
    pub context_cache_hits: Counter,
    /// Forwards whose snapshot had to be encoded (cold vertex or first use
    /// this epoch).
    pub context_cache_misses: Counter,
    /// Second-order membership queries that fell back to this shard's
    /// engine for a vertex it does not own because the forwarded context
    /// was missing or mismatched (capture faults — should stay zero; the
    /// worker also `debug_assert!`s on it).
    pub context_misses: Counter,
    /// Forwards where this shard offered the receiver a `(vertex, epoch)`
    /// snapshot handle instead of unconditionally shipping the body
    /// (bodies no larger than a handle always ship inline and are not
    /// offered).
    pub context_handle_offers: Counter,
    /// Offered handles the receiver's snapshot cache already held at the
    /// same `(vertex, epoch)`: the forward shipped the 16-byte handle.
    pub context_handle_hits: Counter,
    /// Offered handles the receiver did not hold: the forward shipped the
    /// encoded body and seeded the receiver's cache.
    pub context_body_requests: Counter,
    /// Bytes of encoded walker frames this shard handed to the
    /// [`ShardTransport`](crate::ShardTransport) (serialized mode only;
    /// zero in-process).
    pub transport_bytes_sent: Counter,
    /// Bytes of walker frames delivered *to* this shard by the transport
    /// and successfully decoded (serialized mode only).
    pub transport_bytes_recv: Counter,
    /// Submissions rejected because this shard's inbox was at its
    /// configured `max_inbox` bound.
    pub saturated_rejections: Counter,
    /// Walker batches this shard's task drained from a hot peer's inbox
    /// (attributed to the *executing* shard, like `steps`, so the stolen
    /// work shows up where the CPU time went).
    pub stolen_batches: Counter,
    /// Walker visits this shard executed via stealing.
    pub stolen_walkers: Counter,
}

impl ShardCounters {
    /// Resolve this shard's counter set from the shared registry, keyed by
    /// a `shard` label. Counters and gauges are always live (disabled
    /// telemetry only turns off histograms and tracing), so the stats
    /// snapshots below work in every mode.
    pub(crate) fn register(telemetry: &Telemetry, shard: usize) -> Self {
        let s = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &s)];
        ShardCounters {
            steps: telemetry.counter_with(names::SERVICE_SHARD_STEPS, labels),
            walkers_received: telemetry.counter_with(names::SERVICE_SHARD_WALKERS_RECEIVED, labels),
            walkers_forwarded: telemetry
                .counter_with(names::SERVICE_SHARD_WALKERS_FORWARDED, labels),
            walks_completed: telemetry.counter_with(names::SERVICE_SHARD_WALKS_COMPLETED, labels),
            updates_applied: telemetry.counter_with(names::SERVICE_SHARD_UPDATES_APPLIED, labels),
            update_batches: telemetry.counter_with(names::SERVICE_SHARD_UPDATE_BATCHES, labels),
            epoch: telemetry.counter_with(names::SERVICE_SHARD_EPOCH, labels),
            queue_depth: telemetry.gauge_with(names::SERVICE_SHARD_QUEUE_DEPTH, labels),
            queue_high_water: telemetry.gauge_with(names::SERVICE_SHARD_QUEUE_HIGH_WATER, labels),
            busy_nanos: telemetry.counter_with(names::SERVICE_SHARD_BUSY_NS, labels),
            context_bytes_forwarded: telemetry
                .counter_with(names::SERVICE_CONTEXT_BYTES_FORWARDED, labels),
            context_bytes_raw: telemetry.counter_with(names::SERVICE_CONTEXT_BYTES_RAW, labels),
            context_cache_hits: telemetry.counter_with(names::SERVICE_CONTEXT_CACHE_HITS, labels),
            context_cache_misses: telemetry
                .counter_with(names::SERVICE_CONTEXT_CACHE_MISSES, labels),
            context_misses: telemetry
                .counter_with(names::SERVICE_CONTEXT_MEMBERSHIP_FAULTS, labels),
            context_handle_offers: telemetry
                .counter_with(names::SERVICE_CONTEXT_HANDLE_OFFER, labels),
            context_handle_hits: telemetry.counter_with(names::SERVICE_CONTEXT_HANDLE_HIT, labels),
            context_body_requests: telemetry
                .counter_with(names::SERVICE_CONTEXT_BODY_REQUEST, labels),
            transport_bytes_sent: telemetry.counter_with(names::TRANSPORT_BYTES_SENT, labels),
            transport_bytes_recv: telemetry.counter_with(names::TRANSPORT_BYTES_RECV, labels),
            saturated_rejections: telemetry
                .counter_with(names::SERVICE_SHARD_SATURATED_REJECTIONS, labels),
            stolen_batches: telemetry.counter_with(names::SERVICE_SHARD_STOLEN_BATCHES, labels),
            stolen_walkers: telemetry.counter_with(names::SERVICE_SHARD_STOLEN_WALKERS, labels),
        }
    }

    pub(crate) fn on_enqueue(&self) {
        self.queue_depth.add(1);
    }

    pub(crate) fn on_dequeue(&self) {
        let depth = self.queue_depth.add(-1);
        if depth > 0 {
            self.queue_high_water.raise(depth);
        }
    }

    /// Current inbox occupancy (momentary; can read slightly negative
    /// during a concurrent enqueue/dequeue race).
    pub(crate) fn queue_depth(&self) -> i64 {
        self.queue_depth.get()
    }

    pub(crate) fn snapshot(&self, shard: usize, owned_vertices: usize) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            shard,
            owned_vertices,
            steps: self.steps.get(),
            walkers_received: self.walkers_received.get(),
            walkers_forwarded: self.walkers_forwarded.get(),
            walks_completed: self.walks_completed.get(),
            updates_applied: self.updates_applied.get(),
            update_batches: self.update_batches.get(),
            epoch: self.epoch.get_acquire(),
            queue_depth: self.queue_depth.get().max(0),
            queue_high_water: self.queue_high_water.get().max(0) as u64,
            busy: Duration::from_nanos(self.busy_nanos.get()),
            context_bytes_forwarded: self.context_bytes_forwarded.get(),
            context_bytes_raw: self.context_bytes_raw.get(),
            context_cache_hits: self.context_cache_hits.get(),
            context_cache_misses: self.context_cache_misses.get(),
            context_misses: self.context_misses.get(),
            context_handle_offers: self.context_handle_offers.get(),
            context_handle_hits: self.context_handle_hits.get(),
            context_body_requests: self.context_body_requests.get(),
            transport_bytes_sent: self.transport_bytes_sent.get(),
            transport_bytes_recv: self.transport_bytes_recv.get(),
            saturated_rejections: self.saturated_rejections.get(),
            stolen_batches: self.stolen_batches.get(),
            stolen_walkers: self.stolen_walkers.get(),
        }
    }
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, Default)]
pub struct ShardStatsSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Number of vertices whose out-edges this shard owns.
    pub owned_vertices: usize,
    /// Walk steps sampled by this shard.
    pub steps: u64,
    /// Walker messages dequeued (submissions + forwards in).
    pub walkers_received: u64,
    /// Walkers forwarded to another shard after crossing an ownership
    /// boundary.
    pub walkers_forwarded: u64,
    /// Walks that terminated on this shard.
    pub walks_completed: u64,
    /// Update events applied (insertions + deletions; a reweight counts as
    /// one delete plus one insert, as in the batched engine).
    pub updates_applied: u64,
    /// Update batches applied.
    pub update_batches: u64,
    /// The shard's generation counter (== update batches applied).
    pub epoch: u64,
    /// Inbox occupancy (messages queued) at snapshot time.
    pub queue_depth: i64,
    /// Highest observed inbound-queue depth.
    pub queue_high_water: u64,
    /// Time spent processing messages.
    pub busy: Duration,
    /// Bytes of forwarded-context snapshots actually materialized on
    /// outbound walkers (second-order models only): encoded payload on a
    /// cache miss, a handle on a hit.
    pub context_bytes_forwarded: u64,
    /// Bytes the exact-`Vec` format would have shipped for the same
    /// forwards (the pre-cache baseline).
    pub context_bytes_raw: u64,
    /// Forwards served from the shard's `(vertex, epoch)` snapshot cache.
    pub context_cache_hits: u64,
    /// Forwards that encoded a fresh snapshot.
    pub context_cache_misses: u64,
    /// Second-order membership queries degraded by a missing/mismatched
    /// carried context (capture faults; should be zero).
    pub context_misses: u64,
    /// Forwards where this shard offered the receiver a snapshot handle.
    pub context_handle_offers: u64,
    /// Offered handles the receiver already held (16-byte forward).
    pub context_handle_hits: u64,
    /// Offered handles that shipped the body and seeded the receiver.
    pub context_body_requests: u64,
    /// Encoded walker-frame bytes handed to the transport (serialized
    /// mode only).
    pub transport_bytes_sent: u64,
    /// Walker-frame bytes delivered to this shard and decoded (serialized
    /// mode only).
    pub transport_bytes_recv: u64,
    /// Submissions rejected at this shard's inbox bound.
    pub saturated_rejections: u64,
    /// Walker batches this shard drained from a hot peer's inbox
    /// (executing-shard attribution, like `steps`).
    pub stolen_batches: u64,
    /// Walker visits this shard executed via stealing.
    pub stolen_walkers: u64,
}

impl ShardStatsSnapshot {
    /// Fraction of `uptime` this shard's worker spent processing messages
    /// (busy / uptime, clamped to `[0, 1]`; 0 when uptime is zero). The
    /// complement is idle time parked on the inbox.
    pub fn utilization(&self, uptime: Duration) -> f64 {
        let secs = uptime.as_secs_f64();
        if secs > 0.0 {
            (self.busy.as_secs_f64() / secs).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Aggregate service statistics: one snapshot per shard plus uptime.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Per-shard snapshots, indexed by shard id.
    pub per_shard: Vec<ShardStatsSnapshot>,
    /// Wall-clock time since the service was built.
    pub uptime: Duration,
}

impl ServiceStats {
    /// Total walk steps across all shards.
    pub fn total_steps(&self) -> u64 {
        self.per_shard.iter().map(|s| s.steps).sum()
    }

    /// Total cross-shard walker forwards.
    pub fn total_forwards(&self) -> u64 {
        self.per_shard.iter().map(|s| s.walkers_forwarded).sum()
    }

    /// Total update events applied across all shards.
    pub fn total_updates_applied(&self) -> u64 {
        self.per_shard.iter().map(|s| s.updates_applied).sum()
    }

    /// Total completed walks.
    pub fn total_walks_completed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.walks_completed).sum()
    }

    /// Total bytes of forwarded-context snapshots actually materialized on
    /// the wire between shards (after snapshot reuse and compact encoding).
    pub fn total_context_bytes(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.context_bytes_forwarded)
            .sum()
    }

    /// Total bytes the exact-`Vec` wire format would have shipped for the
    /// same forwards — the baseline for the shrink factor.
    pub fn total_context_bytes_raw(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_bytes_raw).sum()
    }

    /// Total forwards served from a shard's `(vertex, epoch)` snapshot
    /// cache.
    pub fn total_context_cache_hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_cache_hits).sum()
    }

    /// Total forwards that encoded a fresh snapshot.
    pub fn total_context_cache_misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_cache_misses).sum()
    }

    /// Fraction of context-carrying forwards served from the snapshot
    /// caches (0 when nothing was forwarded).
    pub fn context_cache_hit_rate(&self) -> f64 {
        let hits = self.total_context_cache_hits();
        let total = hits + self.total_context_cache_misses();
        if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// How many times smaller the materialized context bytes are than the
    /// exact-`Vec` baseline (1.0 when nothing was forwarded).
    pub fn context_shrink_factor(&self) -> f64 {
        let sent = self.total_context_bytes();
        if sent > 0 {
            self.total_context_bytes_raw() as f64 / sent as f64
        } else {
            1.0
        }
    }

    /// Total second-order membership queries degraded by a missing or
    /// mismatched carried context (capture faults; nonzero indicates a
    /// forwarding bug, not load).
    pub fn total_context_misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_misses).sum()
    }

    /// Total snapshot handles offered to receiving shards.
    pub fn total_handle_offers(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_handle_offers).sum()
    }

    /// Total offered handles the receiver's snapshot cache already held.
    pub fn total_handle_hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_handle_hits).sum()
    }

    /// Total offered handles that shipped the body instead.
    pub fn total_body_requests(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_body_requests).sum()
    }

    /// Fraction of offered handles the receiver already held (0 when no
    /// handle was ever offered). This is the negotiation's win rate: a
    /// hit ships 16 bytes where a miss ships the encoded body.
    pub fn handle_hit_rate(&self) -> f64 {
        let offers = self.total_handle_offers();
        if offers > 0 {
            self.total_handle_hits() as f64 / offers as f64
        } else {
            0.0
        }
    }

    /// Total encoded walker-frame bytes handed to the transport
    /// (serialized mode only; zero in-process).
    pub fn total_transport_bytes_sent(&self) -> u64 {
        self.per_shard.iter().map(|s| s.transport_bytes_sent).sum()
    }

    /// Total walker-frame bytes delivered and decoded (serialized mode
    /// only).
    pub fn total_transport_bytes_recv(&self) -> u64 {
        self.per_shard.iter().map(|s| s.transport_bytes_recv).sum()
    }

    /// Total submissions rejected for inbox saturation.
    pub fn total_saturated_rejections(&self) -> u64 {
        self.per_shard.iter().map(|s| s.saturated_rejections).sum()
    }

    /// Total walker batches stolen from hot shards' inboxes.
    pub fn total_stolen_batches(&self) -> u64 {
        self.per_shard.iter().map(|s| s.stolen_batches).sum()
    }

    /// Total walker visits executed via stealing.
    pub fn total_stolen_walkers(&self) -> u64 {
        self.per_shard.iter().map(|s| s.stolen_walkers).sum()
    }

    /// The hottest shard's share of total executed steps, in `[0, 1]`
    /// (0 when nothing stepped). With stealing active this measures how
    /// evenly *execution* spread across shard tasks — the load-balance
    /// number the CI gate checks — independent of which shard owned the
    /// vertices.
    pub fn hottest_step_share(&self) -> f64 {
        let total = self.total_steps();
        if total == 0 {
            return 0.0;
        }
        let peak = self.per_shard.iter().map(|s| s.steps).max().unwrap_or(0);
        peak as f64 / total as f64
    }

    /// Total messages currently queued across all shard inboxes.
    pub fn total_queue_depth(&self) -> i64 {
        self.per_shard.iter().map(|s| s.queue_depth).sum()
    }

    /// Walk steps per wall-clock second since service start.
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs > 0.0 {
            self.total_steps() as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of steps whose destination crossed a shard boundary.
    pub fn forward_ratio(&self) -> f64 {
        let steps = self.total_steps();
        if steps > 0 {
            self.total_forwards() as f64 / steps as f64
        } else {
            0.0
        }
    }

    /// Mean worker utilization (busy / uptime) across all shards.
    pub fn mean_utilization(&self) -> f64 {
        if self.per_shard.is_empty() {
            return 0.0;
        }
        self.per_shard
            .iter()
            .map(|s| s.utilization(self.uptime))
            .sum::<f64>()
            / self.per_shard.len() as f64
    }

    /// Render a small per-shard table for logs and examples.
    pub fn render(&self) -> String {
        let total_steps = self.total_steps();
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5}  {:>8}  {:>10}  {:>6}  {:>9}  {:>9}  {:>9}  {:>7}  {:>6}  {:>7}  {:>10}  {:>8}  {:>6}  {:>9}  {:>6}\n",
            "shard",
            "owned",
            "steps",
            "step%",
            "walkers",
            "forwards",
            "updates",
            "batches",
            "qmax",
            "stolen",
            "ctx_raw_kb",
            "ctx_kb",
            "hit%",
            "busy",
            "util%"
        ));
        for s in &self.per_shard {
            let ctx_total = s.context_cache_hits + s.context_cache_misses;
            let hit_pct = if ctx_total > 0 {
                100.0 * s.context_cache_hits as f64 / ctx_total as f64
            } else {
                0.0
            };
            let step_pct = if total_steps > 0 {
                100.0 * s.steps as f64 / total_steps as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:>5}  {:>8}  {:>10}  {:>6.1}  {:>9}  {:>9}  {:>9}  {:>7}  {:>6}  {:>7}  {:>10.1}  {:>8.1}  {:>6.1}  {:>8.3}s  {:>5.1}\n",
                s.shard,
                s.owned_vertices,
                s.steps,
                step_pct,
                s.walkers_received,
                s.walkers_forwarded,
                s.updates_applied,
                s.update_batches,
                s.queue_high_water,
                s.stolen_walkers,
                s.context_bytes_raw as f64 / 1024.0,
                s.context_bytes_forwarded as f64 / 1024.0,
                hit_pct,
                s.busy.as_secs_f64(),
                100.0 * s.utilization(self.uptime),
            ));
        }
        out.push_str(&format!(
            "total: {} steps ({:.0} steps/s), {} forwards ({:.1}% of steps), {} updates, \
             {} batches stolen ({} walkers), hottest shard {:.1}% of steps, \
             context {} -> {} bytes ({:.1}x shrink, {:.1}% cache hits, {} capture faults), \
             {} saturation rejections, mean utilization {:.1}%, uptime {:.3}s\n",
            total_steps,
            self.steps_per_sec(),
            self.total_forwards(),
            100.0 * self.forward_ratio(),
            self.total_updates_applied(),
            self.total_stolen_batches(),
            self.total_stolen_walkers(),
            100.0 * self.hottest_step_share(),
            self.total_context_bytes_raw(),
            self.total_context_bytes(),
            self.context_shrink_factor(),
            100.0 * self.context_cache_hit_rate(),
            self.total_context_misses(),
            self.total_saturated_rejections(),
            100.0 * self.mean_utilization(),
            self.uptime.as_secs_f64(),
        ));
        out.push_str(&format!(
            "negotiation: {} handle offers, {} hits ({:.1}% handle hit rate), \
             {} body requests; transport {} bytes sent / {} bytes recv\n",
            self.total_handle_offers(),
            self.total_handle_hits(),
            100.0 * self.handle_hit_rate(),
            self.total_body_requests(),
            self.total_transport_bytes_sent(),
            self.total_transport_bytes_recv(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = ShardCounters::default();
        c.steps.add(10);
        c.on_enqueue();
        c.on_enqueue();
        c.on_dequeue();
        let snap = c.snapshot(3, 100);
        assert_eq!(snap.shard, 3);
        assert_eq!(snap.owned_vertices, 100);
        assert_eq!(snap.steps, 10);
        assert_eq!(snap.queue_high_water, 2);
    }

    #[test]
    fn registered_counters_are_registry_views() {
        let telemetry = Telemetry::disabled();
        let c = ShardCounters::register(&telemetry, 2);
        c.steps.add(7);
        c.epoch.add_release(1);
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter(names::SERVICE_SHARD_STEPS, &[("shard", "2")]),
            7,
            "ShardCounters and the registry share one atomic"
        );
        assert_eq!(
            snap.counter(names::SERVICE_SHARD_EPOCH, &[("shard", "2")]),
            1
        );
        assert_eq!(c.snapshot(2, 10).steps, 7);
    }

    #[test]
    fn aggregate_math() {
        let stats = ServiceStats {
            per_shard: vec![
                ShardStatsSnapshot {
                    shard: 0,
                    steps: 30,
                    walkers_forwarded: 3,
                    ..Default::default()
                },
                ShardStatsSnapshot {
                    shard: 1,
                    steps: 70,
                    walkers_forwarded: 7,
                    ..Default::default()
                },
            ],
            uptime: Duration::from_secs(2),
        };
        assert_eq!(stats.total_steps(), 100);
        assert_eq!(stats.total_forwards(), 10);
        assert!((stats.steps_per_sec() - 50.0).abs() < 1e-9);
        assert!((stats.forward_ratio() - 0.1).abs() < 1e-12);
        assert!(stats.render().contains("steps/s"));
    }

    #[test]
    fn utilization_is_busy_over_uptime() {
        let stats = ServiceStats {
            per_shard: vec![
                ShardStatsSnapshot {
                    shard: 0,
                    busy: Duration::from_millis(500),
                    ..Default::default()
                },
                ShardStatsSnapshot {
                    shard: 1,
                    busy: Duration::from_millis(1500),
                    ..Default::default()
                },
            ],
            uptime: Duration::from_secs(2),
        };
        assert!((stats.per_shard[0].utilization(stats.uptime) - 0.25).abs() < 1e-12);
        assert!((stats.per_shard[1].utilization(stats.uptime) - 0.75).abs() < 1e-12);
        assert!((stats.mean_utilization() - 0.5).abs() < 1e-12);
        assert!(stats.render().contains("util%"));
        assert!(stats.render().contains("mean utilization 50.0%"));

        // Degenerate uptimes stay finite and clamped.
        let s = &stats.per_shard[1];
        assert_eq!(s.utilization(Duration::ZERO), 0.0);
        assert_eq!(s.utilization(Duration::from_millis(1)), 1.0, "clamped");
    }

    #[test]
    fn context_aggregates_and_hit_rate() {
        let stats = ServiceStats {
            per_shard: vec![
                ShardStatsSnapshot {
                    shard: 0,
                    context_bytes_raw: 8000,
                    context_bytes_forwarded: 700,
                    context_cache_hits: 90,
                    context_cache_misses: 10,
                    context_misses: 0,
                    ..Default::default()
                },
                ShardStatsSnapshot {
                    shard: 1,
                    context_bytes_raw: 2000,
                    context_bytes_forwarded: 300,
                    context_cache_hits: 30,
                    context_cache_misses: 70,
                    context_misses: 2,
                    ..Default::default()
                },
            ],
            uptime: Duration::from_secs(1),
        };
        assert_eq!(stats.total_context_bytes_raw(), 10_000);
        assert_eq!(stats.total_context_bytes(), 1_000);
        assert!((stats.context_shrink_factor() - 10.0).abs() < 1e-12);
        assert_eq!(stats.total_context_cache_hits(), 120);
        assert_eq!(stats.total_context_cache_misses(), 80);
        assert!((stats.context_cache_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(stats.total_context_misses(), 2);
        assert!(stats.render().contains("capture faults"));

        // Nothing forwarded: neutral defaults, no division by zero.
        let idle = ServiceStats::default();
        assert_eq!(idle.context_cache_hit_rate(), 0.0);
        assert_eq!(idle.context_shrink_factor(), 1.0);
    }

    #[test]
    fn steal_aggregates_and_hottest_step_share() {
        let stats = ServiceStats {
            per_shard: vec![
                ShardStatsSnapshot {
                    shard: 0,
                    steps: 30,
                    stolen_batches: 2,
                    stolen_walkers: 12,
                    ..Default::default()
                },
                ShardStatsSnapshot {
                    shard: 1,
                    steps: 70,
                    ..Default::default()
                },
            ],
            uptime: Duration::from_secs(1),
        };
        assert_eq!(stats.total_stolen_batches(), 2);
        assert_eq!(stats.total_stolen_walkers(), 12);
        assert!((stats.hottest_step_share() - 0.7).abs() < 1e-12);
        let rendered = stats.render();
        assert!(rendered.contains("2 batches stolen (12 walkers)"));
        assert!(rendered.contains("hottest shard 70.0% of steps"));
        assert!(rendered.contains("stolen"), "per-shard steal column");
        assert!(rendered.contains("step%"), "per-shard step-share column");
        // No steps at all: the share is defined as zero, not NaN.
        assert_eq!(ServiceStats::default().hottest_step_share(), 0.0);
    }

    #[test]
    fn negotiation_aggregates_and_handle_hit_rate() {
        let stats = ServiceStats {
            per_shard: vec![
                ShardStatsSnapshot {
                    shard: 0,
                    context_handle_offers: 60,
                    context_handle_hits: 45,
                    context_body_requests: 15,
                    transport_bytes_sent: 4096,
                    ..Default::default()
                },
                ShardStatsSnapshot {
                    shard: 1,
                    context_handle_offers: 40,
                    context_handle_hits: 30,
                    context_body_requests: 10,
                    transport_bytes_recv: 4096,
                    ..Default::default()
                },
            ],
            uptime: Duration::from_secs(1),
        };
        assert_eq!(stats.total_handle_offers(), 100);
        assert_eq!(stats.total_handle_hits(), 75);
        assert_eq!(stats.total_body_requests(), 25);
        assert!((stats.handle_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.total_transport_bytes_sent(), 4096);
        assert_eq!(stats.total_transport_bytes_recv(), 4096);
        let rendered = stats.render();
        assert!(rendered.contains("75.0% handle hit rate"));
        assert!(rendered.contains("4096 bytes sent"));
        // No offers at all: the rate is defined as zero, not NaN.
        assert_eq!(ServiceStats::default().handle_hit_rate(), 0.0);
    }

    #[test]
    fn degenerate_no_forwarding_ratios_stay_finite() {
        // A busy single-shard service never forwards: steps accumulate
        // while every context counter stays zero. All derived ratios must
        // come back finite and neutral — no NaN, no division by zero —
        // and the rendered table must not blow up.
        let stats = ServiceStats {
            per_shard: vec![ShardStatsSnapshot {
                shard: 0,
                steps: 1_000_000,
                walks_completed: 10_000,
                ..Default::default()
            }],
            uptime: Duration::from_secs(3),
        };
        assert_eq!(stats.context_shrink_factor(), 1.0);
        assert_eq!(stats.context_cache_hit_rate(), 0.0);
        assert_eq!(stats.forward_ratio(), 0.0);
        assert!(stats.context_shrink_factor().is_finite());
        assert!(stats.context_cache_hit_rate().is_finite());
        assert!(stats.render().contains("0 forwards"));

        // Zero uptime (snapshot taken immediately): rate guards hold.
        let instant = ServiceStats {
            per_shard: vec![ShardStatsSnapshot::default()],
            uptime: Duration::ZERO,
        };
        assert_eq!(instant.steps_per_sec(), 0.0);
        assert_eq!(instant.forward_ratio(), 0.0);
        assert!(instant.steps_per_sec().is_finite());
    }
}

//! Service observability: per-shard throughput, occupancy and epoch
//! counters, aggregated into a [`ServiceStats`] snapshot.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Lock-free counters shared between one shard worker and the service
/// handle. Writers are the worker thread (steps, updates, epoch) and the
/// message senders (queue depth); readers take relaxed snapshots.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub steps: AtomicU64,
    pub walkers_received: AtomicU64,
    pub walkers_forwarded: AtomicU64,
    pub walks_completed: AtomicU64,
    pub updates_applied: AtomicU64,
    pub update_batches: AtomicU64,
    /// Number of update batches applied so far — the shard's generation
    /// counter. A walk step that reads epoch `e` observed the engine state
    /// after exactly `e` batches.
    pub epoch: AtomicU64,
    /// Messages currently queued (sender-incremented, worker-decremented).
    pub queue_depth: AtomicI64,
    /// Highest queue depth the worker has observed on dequeue.
    pub queue_high_water: AtomicU64,
    /// Nanoseconds the worker spent processing messages (vs. idle).
    pub busy_nanos: AtomicU64,
    /// Bytes of forwarded-context snapshots (membership fingerprints for
    /// second-order models) this shard actually materialized on outbound
    /// walkers: the encoded payload the first time a `(vertex, epoch)`
    /// snapshot ships, a small handle for every reuse.
    pub context_bytes_forwarded: AtomicU64,
    /// Bytes the exact-`Vec` wire format (no caching, no compact encoding)
    /// would have shipped for the same forwards — the baseline
    /// `context_bytes_forwarded` is measured against.
    pub context_bytes_raw: AtomicU64,
    /// Forwards whose membership snapshot was reused from this shard's
    /// `(vertex, epoch)` cache.
    pub context_cache_hits: AtomicU64,
    /// Forwards whose snapshot had to be encoded (cold vertex or first use
    /// this epoch).
    pub context_cache_misses: AtomicU64,
    /// Second-order membership queries that fell back to this shard's
    /// engine for a vertex it does not own because the forwarded context
    /// was missing or mismatched (capture faults — should stay zero; the
    /// worker also `debug_assert!`s on it).
    pub context_misses: AtomicU64,
    /// Submissions rejected because this shard's inbox was at its
    /// configured `max_inbox` bound.
    pub saturated_rejections: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn on_enqueue(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dequeue(&self) {
        let depth = self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if depth > 0 {
            self.queue_high_water
                .fetch_max(depth as u64, Ordering::Relaxed);
        }
    }

    /// Current inbox occupancy (momentary; can read slightly negative
    /// during a concurrent enqueue/dequeue race).
    pub(crate) fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    pub(crate) fn snapshot(&self, shard: usize, owned_vertices: usize) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            shard,
            owned_vertices,
            steps: self.steps.load(Ordering::Relaxed),
            walkers_received: self.walkers_received.load(Ordering::Relaxed),
            walkers_forwarded: self.walkers_forwarded.load(Ordering::Relaxed),
            walks_completed: self.walks_completed.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            update_batches: self.update_batches.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Acquire),
            queue_depth: self.queue_depth.load(Ordering::Relaxed).max(0),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            context_bytes_forwarded: self.context_bytes_forwarded.load(Ordering::Relaxed),
            context_bytes_raw: self.context_bytes_raw.load(Ordering::Relaxed),
            context_cache_hits: self.context_cache_hits.load(Ordering::Relaxed),
            context_cache_misses: self.context_cache_misses.load(Ordering::Relaxed),
            context_misses: self.context_misses.load(Ordering::Relaxed),
            saturated_rejections: self.saturated_rejections.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of one shard's counters.
#[derive(Debug, Clone, Default)]
pub struct ShardStatsSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Number of vertices whose out-edges this shard owns.
    pub owned_vertices: usize,
    /// Walk steps sampled by this shard.
    pub steps: u64,
    /// Walker messages dequeued (submissions + forwards in).
    pub walkers_received: u64,
    /// Walkers forwarded to another shard after crossing an ownership
    /// boundary.
    pub walkers_forwarded: u64,
    /// Walks that terminated on this shard.
    pub walks_completed: u64,
    /// Update events applied (insertions + deletions; a reweight counts as
    /// one delete plus one insert, as in the batched engine).
    pub updates_applied: u64,
    /// Update batches applied.
    pub update_batches: u64,
    /// The shard's generation counter (== update batches applied).
    pub epoch: u64,
    /// Inbox occupancy (messages queued) at snapshot time.
    pub queue_depth: i64,
    /// Highest observed inbound-queue depth.
    pub queue_high_water: u64,
    /// Time spent processing messages.
    pub busy: Duration,
    /// Bytes of forwarded-context snapshots actually materialized on
    /// outbound walkers (second-order models only): encoded payload on a
    /// cache miss, a handle on a hit.
    pub context_bytes_forwarded: u64,
    /// Bytes the exact-`Vec` format would have shipped for the same
    /// forwards (the pre-cache baseline).
    pub context_bytes_raw: u64,
    /// Forwards served from the shard's `(vertex, epoch)` snapshot cache.
    pub context_cache_hits: u64,
    /// Forwards that encoded a fresh snapshot.
    pub context_cache_misses: u64,
    /// Second-order membership queries degraded by a missing/mismatched
    /// carried context (capture faults; should be zero).
    pub context_misses: u64,
    /// Submissions rejected at this shard's inbox bound.
    pub saturated_rejections: u64,
}

/// Aggregate service statistics: one snapshot per shard plus uptime.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Per-shard snapshots, indexed by shard id.
    pub per_shard: Vec<ShardStatsSnapshot>,
    /// Wall-clock time since the service was built.
    pub uptime: Duration,
}

impl ServiceStats {
    /// Total walk steps across all shards.
    pub fn total_steps(&self) -> u64 {
        self.per_shard.iter().map(|s| s.steps).sum()
    }

    /// Total cross-shard walker forwards.
    pub fn total_forwards(&self) -> u64 {
        self.per_shard.iter().map(|s| s.walkers_forwarded).sum()
    }

    /// Total update events applied across all shards.
    pub fn total_updates_applied(&self) -> u64 {
        self.per_shard.iter().map(|s| s.updates_applied).sum()
    }

    /// Total completed walks.
    pub fn total_walks_completed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.walks_completed).sum()
    }

    /// Total bytes of forwarded-context snapshots actually materialized on
    /// the wire between shards (after snapshot reuse and compact encoding).
    pub fn total_context_bytes(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.context_bytes_forwarded)
            .sum()
    }

    /// Total bytes the exact-`Vec` wire format would have shipped for the
    /// same forwards — the baseline for the shrink factor.
    pub fn total_context_bytes_raw(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_bytes_raw).sum()
    }

    /// Total forwards served from a shard's `(vertex, epoch)` snapshot
    /// cache.
    pub fn total_context_cache_hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_cache_hits).sum()
    }

    /// Total forwards that encoded a fresh snapshot.
    pub fn total_context_cache_misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_cache_misses).sum()
    }

    /// Fraction of context-carrying forwards served from the snapshot
    /// caches (0 when nothing was forwarded).
    pub fn context_cache_hit_rate(&self) -> f64 {
        let hits = self.total_context_cache_hits();
        let total = hits + self.total_context_cache_misses();
        if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        }
    }

    /// How many times smaller the materialized context bytes are than the
    /// exact-`Vec` baseline (1.0 when nothing was forwarded).
    pub fn context_shrink_factor(&self) -> f64 {
        let sent = self.total_context_bytes();
        if sent > 0 {
            self.total_context_bytes_raw() as f64 / sent as f64
        } else {
            1.0
        }
    }

    /// Total second-order membership queries degraded by a missing or
    /// mismatched carried context (capture faults; nonzero indicates a
    /// forwarding bug, not load).
    pub fn total_context_misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.context_misses).sum()
    }

    /// Total submissions rejected for inbox saturation.
    pub fn total_saturated_rejections(&self) -> u64 {
        self.per_shard.iter().map(|s| s.saturated_rejections).sum()
    }

    /// Total messages currently queued across all shard inboxes.
    pub fn total_queue_depth(&self) -> i64 {
        self.per_shard.iter().map(|s| s.queue_depth).sum()
    }

    /// Walk steps per wall-clock second since service start.
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.uptime.as_secs_f64();
        if secs > 0.0 {
            self.total_steps() as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of steps whose destination crossed a shard boundary.
    pub fn forward_ratio(&self) -> f64 {
        let steps = self.total_steps();
        if steps > 0 {
            self.total_forwards() as f64 / steps as f64
        } else {
            0.0
        }
    }

    /// Render a small per-shard table for logs and examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5}  {:>8}  {:>10}  {:>9}  {:>9}  {:>9}  {:>7}  {:>6}  {:>10}  {:>8}  {:>6}  {:>9}\n",
            "shard",
            "owned",
            "steps",
            "walkers",
            "forwards",
            "updates",
            "batches",
            "qmax",
            "ctx_raw_kb",
            "ctx_kb",
            "hit%",
            "busy"
        ));
        for s in &self.per_shard {
            let ctx_total = s.context_cache_hits + s.context_cache_misses;
            let hit_pct = if ctx_total > 0 {
                100.0 * s.context_cache_hits as f64 / ctx_total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:>5}  {:>8}  {:>10}  {:>9}  {:>9}  {:>9}  {:>7}  {:>6}  {:>10.1}  {:>8.1}  {:>6.1}  {:>8.3}s\n",
                s.shard,
                s.owned_vertices,
                s.steps,
                s.walkers_received,
                s.walkers_forwarded,
                s.updates_applied,
                s.update_batches,
                s.queue_high_water,
                s.context_bytes_raw as f64 / 1024.0,
                s.context_bytes_forwarded as f64 / 1024.0,
                hit_pct,
                s.busy.as_secs_f64(),
            ));
        }
        out.push_str(&format!(
            "total: {} steps ({:.0} steps/s), {} forwards ({:.1}% of steps), {} updates, \
             context {} -> {} bytes ({:.1}x shrink, {:.1}% cache hits, {} capture faults), \
             {} saturation rejections, uptime {:.3}s\n",
            self.total_steps(),
            self.steps_per_sec(),
            self.total_forwards(),
            100.0 * self.forward_ratio(),
            self.total_updates_applied(),
            self.total_context_bytes_raw(),
            self.total_context_bytes(),
            self.context_shrink_factor(),
            100.0 * self.context_cache_hit_rate(),
            self.total_context_misses(),
            self.total_saturated_rejections(),
            self.uptime.as_secs_f64(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = ShardCounters::default();
        c.steps.fetch_add(10, Ordering::Relaxed);
        c.on_enqueue();
        c.on_enqueue();
        c.on_dequeue();
        let snap = c.snapshot(3, 100);
        assert_eq!(snap.shard, 3);
        assert_eq!(snap.owned_vertices, 100);
        assert_eq!(snap.steps, 10);
        assert_eq!(snap.queue_high_water, 2);
    }

    #[test]
    fn aggregate_math() {
        let stats = ServiceStats {
            per_shard: vec![
                ShardStatsSnapshot {
                    shard: 0,
                    steps: 30,
                    walkers_forwarded: 3,
                    ..Default::default()
                },
                ShardStatsSnapshot {
                    shard: 1,
                    steps: 70,
                    walkers_forwarded: 7,
                    ..Default::default()
                },
            ],
            uptime: Duration::from_secs(2),
        };
        assert_eq!(stats.total_steps(), 100);
        assert_eq!(stats.total_forwards(), 10);
        assert!((stats.steps_per_sec() - 50.0).abs() < 1e-9);
        assert!((stats.forward_ratio() - 0.1).abs() < 1e-12);
        assert!(stats.render().contains("steps/s"));
    }

    #[test]
    fn context_aggregates_and_hit_rate() {
        let stats = ServiceStats {
            per_shard: vec![
                ShardStatsSnapshot {
                    shard: 0,
                    context_bytes_raw: 8000,
                    context_bytes_forwarded: 700,
                    context_cache_hits: 90,
                    context_cache_misses: 10,
                    context_misses: 0,
                    ..Default::default()
                },
                ShardStatsSnapshot {
                    shard: 1,
                    context_bytes_raw: 2000,
                    context_bytes_forwarded: 300,
                    context_cache_hits: 30,
                    context_cache_misses: 70,
                    context_misses: 2,
                    ..Default::default()
                },
            ],
            uptime: Duration::from_secs(1),
        };
        assert_eq!(stats.total_context_bytes_raw(), 10_000);
        assert_eq!(stats.total_context_bytes(), 1_000);
        assert!((stats.context_shrink_factor() - 10.0).abs() < 1e-12);
        assert_eq!(stats.total_context_cache_hits(), 120);
        assert_eq!(stats.total_context_cache_misses(), 80);
        assert!((stats.context_cache_hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(stats.total_context_misses(), 2);
        assert!(stats.render().contains("capture faults"));

        // Nothing forwarded: neutral defaults, no division by zero.
        let idle = ServiceStats::default();
        assert_eq!(idle.context_cache_hit_rate(), 0.0);
        assert_eq!(idle.context_shrink_factor(), 1.0);
    }

    #[test]
    fn degenerate_no_forwarding_ratios_stay_finite() {
        // A busy single-shard service never forwards: steps accumulate
        // while every context counter stays zero. All derived ratios must
        // come back finite and neutral — no NaN, no division by zero —
        // and the rendered table must not blow up.
        let stats = ServiceStats {
            per_shard: vec![ShardStatsSnapshot {
                shard: 0,
                steps: 1_000_000,
                walks_completed: 10_000,
                ..Default::default()
            }],
            uptime: Duration::from_secs(3),
        };
        assert_eq!(stats.context_shrink_factor(), 1.0);
        assert_eq!(stats.context_cache_hit_rate(), 0.0);
        assert_eq!(stats.forward_ratio(), 0.0);
        assert!(stats.context_shrink_factor().is_finite());
        assert!(stats.context_cache_hit_rate().is_finite());
        assert!(stats.render().contains("0 forwards"));

        // Zero uptime (snapshot taken immediately): rate guards hold.
        let instant = ServiceStats {
            per_shard: vec![ShardStatsSnapshot::default()],
            uptime: Duration::ZERO,
        };
        assert_eq!(instant.steps_per_sec(), 0.0);
        assert_eq!(instant.forward_ratio(), 0.0);
        assert!(instant.steps_per_sec().is_finite());
    }
}

//! The unified walk front-end: one request API over both execution
//! backends.
//!
//! [`WalkClient`] dispatches a [`WalkRequest`] — a builder carrying the
//! walk model, start vertices, seed, in-flight bound, and collection mode —
//! identically to a local [`BingoEngine`] (synchronous, in-process) or a
//! sharded [`WalkService`] (concurrent shard tasks), returning a common
//! [`WalkHandle`] for `wait`/`try_collect`. Application code chooses a
//! backend once, at client construction, and never changes after that.
//!
//! ```
//! use bingo_core::{BingoConfig, BingoEngine};
//! use bingo_graph::{Bias, DynamicGraph};
//! use bingo_service::{ServiceConfig, WalkClient, WalkRequest, WalkService};
//! use bingo_walks::{DeepWalkConfig, Node2VecConfig, WalkSpec};
//!
//! let mut graph = DynamicGraph::new(32);
//! for v in 0..32u32 {
//!     graph.insert_edge(v, (v + 1) % 32, Bias::from_int(2)).unwrap();
//!     graph.insert_edge(v, (v + 5) % 32, Bias::from_int(1)).unwrap();
//! }
//!
//! // The same request, served by either backend.
//! let request = || {
//!     WalkRequest::spec(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 }))
//!         .starts(vec![0, 7, 21])
//!         .seed(42)
//! };
//!
//! let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
//! let local = WalkClient::local(&engine).submit(request()).unwrap().wait();
//!
//! let service = WalkService::build(&graph, ServiceConfig::default()).unwrap();
//! let client = WalkClient::sharded(&service);
//! let sharded = client.submit(request()).unwrap().wait();
//!
//! assert_eq!(local.num_walks, 3);
//! assert_eq!(sharded.num_walks, 3);
//! assert_eq!(local.total_steps, 3 * 8);
//! assert_eq!(sharded.total_steps, 3 * 8);
//!
//! // Second-order models are served by both backends too — the service
//! // forwards the model-declared context between shards.
//! let n2v = WalkRequest::spec(WalkSpec::Node2Vec(Node2VecConfig {
//!     walk_length: 6,
//!     p: 0.5,
//!     q: 2.0,
//! }))
//! .all_vertices();
//! let out = client.submit(n2v).unwrap().wait();
//! assert_eq!(out.num_walks, 32);
//! ```

use crate::service::{Result, ServiceError, WalkTicket};
use crate::WalkService;
use bingo_core::BingoEngine;
use bingo_graph::VertexId;
use bingo_walks::{SharedWalkModel, TenantId, TicketMeta, WalkEngine, WalkSpec};
use std::collections::VecDeque;
use std::time::Duration;

/// How many times a blocking wait re-attempts a chunk resubmission that
/// was rejected with a retryable [`ServiceError::Saturated`] before
/// surfacing the error. Combined with the exponential backoff (100µs
/// doubling to [`SATURATION_BACKOFF_CAP`]) this gives the shard workers
/// over a second of drain time before the client gives up.
const SATURATION_RETRY_LIMIT: usize = 32;

/// Upper bound of the per-attempt resubmission backoff.
const SATURATION_BACKOFF_CAP: Duration = Duration::from_millis(50);

/// What a [`WalkHandle`] accumulates and returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectionMode {
    /// Keep every visited path (the default).
    #[default]
    Paths,
    /// Fold each finished walk into per-vertex visit counts and drop the
    /// paths — what PPR/SimRank-style consumers aggregate anyway. Combined
    /// with [`WalkRequest::max_in_flight`], peak path memory is bounded by
    /// one chunk on both backends (the local backend folds chunk by chunk;
    /// the service backend absorbs each ticket as it completes).
    VisitCounts,
}

/// A builder describing one batch of walks, independent of the backend
/// that will execute it.
#[derive(Debug, Clone)]
pub struct WalkRequest {
    model: SharedWalkModel,
    starts: Option<Vec<VertexId>>,
    seed: Option<u64>,
    max_in_flight: usize,
    mode: CollectionMode,
    meta: TicketMeta,
}

impl WalkRequest {
    /// Request walks of an arbitrary [`WalkModel`](bingo_walks::WalkModel).
    pub fn model(model: SharedWalkModel) -> Self {
        WalkRequest {
            model,
            starts: None,
            seed: None,
            max_in_flight: 0,
            mode: CollectionMode::default(),
            meta: TicketMeta::default(),
        }
    }

    /// Request walks of a built-in [`WalkSpec`].
    pub fn spec(spec: WalkSpec) -> Self {
        Self::model(spec.to_model())
    }

    /// Explicit start vertices, one walk per entry (in order).
    pub fn starts(mut self, starts: Vec<VertexId>) -> Self {
        self.starts = Some(starts);
        self
    }

    /// One walk per vertex of the backing graph — the paper's default
    /// walker configuration. This is the default when no starts are given.
    pub fn all_vertices(mut self) -> Self {
        self.starts = None;
        self
    }

    /// Seed for the walker RNG streams. Defaults to the backend's seed
    /// (the service's [`ServiceConfig::seed`](crate::ServiceConfig::seed),
    /// or the walk engine default locally).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Cap the number of walkers in flight at once: starts are split into
    /// chunks of at most `n`, and the next chunk only starts once the
    /// previous one completed (service backend) or was folded into the
    /// accumulator (local backend). `0` (the default) runs everything as
    /// one chunk.
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n;
        self
    }

    /// How results are accumulated and returned.
    pub fn collect(mut self, mode: CollectionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bill this request to `tenant`. Direct backends (local engine,
    /// sharded service) execute for every tenant identically; a
    /// fair-scheduling front-end (`bingo-gateway`) queues and drains each
    /// tenant's requests separately, so one heavy tenant cannot starve the
    /// rest.
    pub fn tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.meta.tenant = tenant.into();
        self
    }

    /// The tenant's relative scheduling weight (deficit-round-robin share
    /// under saturation; `0` is read as `1`). Like
    /// [`WalkRequest::tenant`], only fairness-aware front-ends consume
    /// it. Requests that never call this inherit the tenant's configured
    /// weight instead of resetting it.
    pub fn weight(mut self, weight: u32) -> Self {
        self.meta.weight = Some(weight);
        self
    }

    /// The tenant/weight metadata attached to this request.
    pub fn meta(&self) -> &TicketMeta {
        &self.meta
    }

    /// The configured collection mode.
    pub fn collection_mode(&self) -> CollectionMode {
        self.mode
    }

    /// Decompose the builder into its fields, for execution front-ends
    /// living outside this crate (the `bingo-gateway` dispatcher consumes
    /// requests this way).
    pub fn into_parts(self) -> RequestParts {
        RequestParts {
            model: self.model,
            starts: self.starts,
            seed: self.seed,
            max_in_flight: self.max_in_flight,
            mode: self.mode,
            meta: self.meta,
        }
    }
}

/// The exploded fields of a [`WalkRequest`] — see
/// [`WalkRequest::into_parts`].
#[derive(Debug, Clone)]
pub struct RequestParts {
    /// The walk model to run.
    pub model: SharedWalkModel,
    /// Explicit start vertices (`None` = one walk per vertex).
    pub starts: Option<Vec<VertexId>>,
    /// Seed override (`None` = the backend's configured seed).
    pub seed: Option<u64>,
    /// In-flight walker bound (`0` = one chunk).
    pub max_in_flight: usize,
    /// How results are accumulated.
    pub mode: CollectionMode,
    /// Tenant/weight scheduling metadata.
    pub meta: TicketMeta,
}

/// The aggregated outcome of one [`WalkRequest`].
#[derive(Debug, Clone, Default)]
pub struct WalkOutput {
    /// Every visited path, in submission order (empty under
    /// [`CollectionMode::VisitCounts`]).
    pub paths: Vec<Vec<VertexId>>,
    /// Per-vertex visit counts (populated only under
    /// [`CollectionMode::VisitCounts`]).
    pub visit_counts: Option<Vec<u64>>,
    /// Number of walks executed.
    pub num_walks: usize,
    /// Total steps taken across all walks.
    pub total_steps: usize,
}

enum Backend<'a> {
    Local(&'a BingoEngine),
    Service(&'a WalkService),
}

/// A backend-agnostic walk submission front-end: construct it over a local
/// engine ([`WalkClient::local`]) or a sharded service
/// ([`WalkClient::sharded`]) and submit [`WalkRequest`]s. See the module
/// documentation for a tour.
pub struct WalkClient<'a> {
    backend: Backend<'a>,
}

impl<'a> WalkClient<'a> {
    /// A client executing requests synchronously on a single in-process
    /// engine.
    pub fn local(engine: &'a BingoEngine) -> Self {
        WalkClient {
            backend: Backend::Local(engine),
        }
    }

    /// A client executing requests on a sharded [`WalkService`].
    pub fn sharded(service: &'a WalkService) -> Self {
        WalkClient {
            backend: Backend::Service(service),
        }
    }

    /// Number of vertices the backend serves.
    pub fn num_vertices(&self) -> usize {
        match &self.backend {
            Backend::Local(engine) => engine.num_vertices(),
            Backend::Service(service) => service.num_vertices(),
        }
    }

    /// Submit a request and return a handle for collecting the results.
    ///
    /// On the local backend the walks run synchronously inside this call
    /// and the handle is immediately complete; on the service backend the
    /// walks run on the shard workers and the handle tracks outstanding
    /// tickets (respecting [`WalkRequest::max_in_flight`]).
    pub fn submit(&self, request: WalkRequest) -> Result<WalkHandle<'a>> {
        let num_vertices = self.num_vertices();
        let starts = request
            .starts
            .unwrap_or_else(|| (0..num_vertices as VertexId).collect());
        if starts.is_empty() {
            return Err(ServiceError::EmptySubmission);
        }
        for &s in &starts {
            if (s as usize) >= num_vertices {
                return Err(ServiceError::VertexOutOfRange {
                    vertex: s,
                    num_vertices,
                });
            }
        }
        let mut acc = Accumulator::new(request.mode, num_vertices);
        let chunk = if request.max_in_flight == 0 {
            starts.len()
        } else {
            request.max_in_flight
        };
        match &self.backend {
            Backend::Local(engine) => {
                let base_seed = request.seed.unwrap_or(WalkEngine::default().seed);
                // Walk chunk by chunk, folding each chunk's paths into the
                // accumulator before the next runs: under `VisitCounts` +
                // `max_in_flight` the peak path memory is one chunk, like
                // the service backend's in-flight bound. Each chunk salts
                // the seed so walkers in different chunks draw distinct
                // RNG streams (a single chunk reproduces `base_seed`
                // exactly).
                for (ci, chunk_starts) in starts.chunks(chunk).enumerate() {
                    let walk_engine = WalkEngine::new(
                        base_seed ^ (ci as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                    );
                    let results = walk_engine.run_model(*engine, &request.model, chunk_starts);
                    for path in results.paths {
                        acc.push(path);
                    }
                }
                Ok(WalkHandle {
                    service: None,
                    model: request.model,
                    seed: request.seed,
                    queued: VecDeque::new(),
                    in_flight: None,
                    acc: Some(acc),
                })
            }
            Backend::Service(service) => {
                let mut queued: VecDeque<Vec<VertexId>> =
                    starts.chunks(chunk).map(<[VertexId]>::to_vec).collect();
                let first = queued.pop_front().expect("starts are non-empty");
                let in_flight = Some(Self::submit_chunk(
                    service,
                    &request.model,
                    &first,
                    request.seed,
                )?);
                Ok(WalkHandle {
                    service: Some(service),
                    model: request.model,
                    seed: request.seed,
                    queued,
                    in_flight,
                    acc: Some(acc),
                })
            }
        }
    }

    fn submit_chunk(
        service: &WalkService,
        model: &SharedWalkModel,
        starts: &[VertexId],
        seed: Option<u64>,
    ) -> Result<WalkTicket> {
        match seed {
            Some(seed) => service.submit_model_seeded(model.clone(), starts, seed),
            None => service.submit_model(model.clone(), starts),
        }
    }
}

#[derive(Debug)]
enum Accumulator {
    Paths {
        paths: Vec<Vec<VertexId>>,
        total_steps: usize,
    },
    Counts {
        counts: Vec<u64>,
        num_walks: usize,
        total_steps: usize,
    },
}

impl Accumulator {
    fn new(mode: CollectionMode, num_vertices: usize) -> Self {
        match mode {
            CollectionMode::Paths => Accumulator::Paths {
                paths: Vec::new(),
                total_steps: 0,
            },
            CollectionMode::VisitCounts => Accumulator::Counts {
                counts: vec![0; num_vertices],
                num_walks: 0,
                total_steps: 0,
            },
        }
    }

    fn push(&mut self, path: Vec<VertexId>) {
        match self {
            Accumulator::Paths { paths, total_steps } => {
                *total_steps += path.len().saturating_sub(1);
                paths.push(path);
            }
            Accumulator::Counts {
                counts,
                num_walks,
                total_steps,
            } => {
                *total_steps += path.len().saturating_sub(1);
                *num_walks += 1;
                for v in path {
                    if let Some(slot) = counts.get_mut(v as usize) {
                        *slot += 1;
                    }
                }
            }
        }
    }

    fn into_output(self) -> WalkOutput {
        match self {
            Accumulator::Paths { paths, total_steps } => WalkOutput {
                num_walks: paths.len(),
                total_steps,
                paths,
                visit_counts: None,
            },
            Accumulator::Counts {
                counts,
                num_walks,
                total_steps,
            } => WalkOutput {
                paths: Vec::new(),
                visit_counts: Some(counts),
                num_walks,
                total_steps,
            },
        }
    }
}

/// Handle to an in-progress [`WalkRequest`]: block with
/// [`WalkHandle::wait`] or poll with [`WalkHandle::try_collect`].
pub struct WalkHandle<'a> {
    service: Option<&'a WalkService>,
    model: SharedWalkModel,
    seed: Option<u64>,
    queued: VecDeque<Vec<VertexId>>,
    in_flight: Option<WalkTicket>,
    /// `None` once the output has been handed out by `try_collect`.
    acc: Option<Accumulator>,
}

impl WalkHandle<'_> {
    /// Whether every walk of the request has finished and been absorbed.
    pub fn is_complete(&self) -> bool {
        self.in_flight.is_none() && self.queued.is_empty()
    }

    /// Walks absorbed into the handle so far (all of them on the local
    /// backend; completed chunks on the service backend). Zero after the
    /// output has been taken by a successful `try_collect`.
    pub fn walks_collected(&self) -> usize {
        match &self.acc {
            Some(Accumulator::Paths { paths, .. }) => paths.len(),
            Some(Accumulator::Counts { num_walks, .. }) => *num_walks,
            None => 0,
        }
    }

    fn absorb(&mut self, results: crate::TicketResults) -> Result<()> {
        let acc = self.acc.as_mut().expect("output not taken while in flight");
        for path in results.paths {
            acc.push(path);
        }
        // Submit the next chunk only once accepted: on a rejection (e.g.
        // `ServiceError::Saturated`) the chunk stays queued, so a caller
        // that retries `try_collect` after backing off loses nothing.
        if let Some(service) = self.service {
            if let Some(next) = self.queued.front() {
                let ticket = WalkClient::submit_chunk(service, &self.model, next, self.seed)?;
                self.queued.pop_front();
                self.in_flight = Some(ticket);
            }
        }
        Ok(())
    }

    /// Block until the whole request has finished and return the output.
    ///
    /// With [`WalkRequest::max_in_flight`] set, remaining chunks are
    /// submitted as their predecessors complete. A chunk rejected by
    /// admission control with a *retryable* [`ServiceError::Saturated`] is
    /// resubmitted with exponential backoff while the shard inboxes drain
    /// (up to `SATURATION_RETRY_LIMIT` attempts) — transient saturation
    /// no longer panics this call. Only a non-retryable rejection (a chunk
    /// larger than any inbox admits) or an exhausted retry budget panics;
    /// use [`WalkHandle::wait_checked`] to receive those as typed errors.
    pub fn wait(self) -> WalkOutput {
        self.wait_checked()
            .expect("chunk resubmission accepted after saturation backoff")
    }

    /// Like [`WalkHandle::wait`], but chunk resubmission failures that
    /// survive the saturation backoff (or are not retryable at all) are
    /// returned as typed errors instead of panicking.
    pub fn wait_checked(mut self) -> Result<WalkOutput> {
        while let Some(ticket) = self.in_flight.take() {
            let results = self
                .service
                .expect("in-flight tickets only exist on the service backend")
                .wait(ticket);
            match self.absorb(results) {
                Ok(()) => {}
                Err(err) if err.is_retryable() => self.resubmit_with_backoff(err)?,
                Err(err) => return Err(err),
            }
        }
        Ok(self
            .acc
            .take()
            .expect("output already taken by try_collect")
            .into_output())
    }

    /// Re-attempt submitting the front queued chunk after a retryable
    /// saturation rejection, sleeping an exponentially growing backoff
    /// between attempts so the shard workers get time to drain their
    /// inboxes. Returns the original error once the budget is exhausted.
    fn resubmit_with_backoff(&mut self, first_err: ServiceError) -> Result<()> {
        let service = self
            .service
            .expect("saturation rejections only come from the service backend");
        let mut backoff = Duration::from_micros(100);
        for _ in 0..SATURATION_RETRY_LIMIT {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(SATURATION_BACKOFF_CAP);
            let next = self
                .queued
                .front()
                .expect("a rejected chunk stays at the queue front");
            match WalkClient::submit_chunk(service, &self.model, next, self.seed) {
                Ok(ticket) => {
                    self.queued.pop_front();
                    self.in_flight = Some(ticket);
                    return Ok(());
                }
                Err(err) if err.is_retryable() => continue,
                Err(err) => return Err(err),
            }
        }
        Err(first_err)
    }

    /// Non-blocking poll: absorb finished chunks, submit queued ones, and
    /// return the output once everything completed. Returns `Ok(None)`
    /// while walks are still in flight — and also after the output has
    /// already been handed out by a previous successful call.
    pub fn try_collect(&mut self) -> Result<Option<WalkOutput>> {
        while let Some(ticket) = self.in_flight {
            let service = self
                .service
                .expect("in-flight tickets only exist on the service backend");
            match service.try_wait(ticket) {
                Some(results) => {
                    self.in_flight = None;
                    self.absorb(results)?;
                }
                None => return Ok(None),
            }
        }
        Ok(self.acc.take().map(Accumulator::into_output))
    }
}

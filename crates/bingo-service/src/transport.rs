//! The pluggable distribution boundary between shard workers.
//!
//! The service forwards walkers between shards either as in-process
//! `Box<Walker>` moves (today's zero-copy path) or — in
//! [`TransportMode::Serialized`] — by round-tripping every forwarded
//! walker through the versioned wire format of
//! [`bingo_walks::wire`]: encode to bytes, hand the bytes to a
//! [`ShardTransport`], decode what comes back, and rebuild the walker
//! from the frame alone (cursor replayed from the path, RNG restored
//! from its raw parts, context resolved from the receiver's snapshot
//! cache). Accounted bytes are then *real* bytes: everything the
//! receiving shard knows crossed the boundary as `Vec<u8>`, so the
//! same forwarding path works when the peer is another process or
//! node — the two-process demo (`examples/two_process_demo.rs`) plugs
//! a length-prefixed loopback `TcpStream` carrier into
//! [`WalkService::build_with_transport`](crate::WalkService::build_with_transport)
//! and proves the socket byte counts equal the service's counters.

use std::io;

/// How forwarded walkers cross the shard boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// Forwarded walkers move as in-process allocations (zero-copy;
    /// today's path). Byte counters still account what the wire format
    /// *would* ship, but nothing is serialized.
    #[default]
    InProcess,
    /// Every forwarded walker is encoded to its wire frame, carried by
    /// the service's [`ShardTransport`], decoded, and rebuilt from the
    /// frame. Walk output is bit-identical to [`TransportMode::InProcess`]
    /// (the frame captures the cursor, RNG and context exactly);
    /// `transport.bytes_sent`/`transport.bytes_recv` count the frames.
    Serialized,
}

/// A carrier of encoded walker frames between shards.
///
/// `carry` moves one encoded frame to shard `to` and returns the bytes
/// as they arrive on the receiving side. The in-process
/// [`LoopbackTransport`] returns the frame unchanged; a real carrier
/// (see the two-process demo) writes the frame to a socket and returns
/// what the remote end sent back. The service treats any `Err` as a
/// delivery failure and falls back to forwarding the original
/// in-process walker, so a flaky carrier degrades to zero-copy
/// forwarding instead of losing walks.
///
/// Implementations must be `Send + Sync`: shard tasks on the worker
/// pool call `carry` concurrently (serialize internally if the
/// underlying channel is not concurrent-safe).
pub trait ShardTransport: Send + Sync {
    /// Short human-readable carrier name (for stats and logs).
    fn name(&self) -> &'static str;

    /// Deliver `frame` to shard `to`, returning the bytes as received.
    fn carry(&self, to: usize, frame: Vec<u8>) -> io::Result<Vec<u8>>;
}

/// The identity carrier: frames "arrive" exactly as sent, without
/// leaving the process. [`TransportMode::Serialized`] uses it by
/// default, so the serialization round-trip (encode → decode → rebuild)
/// is exercised end to end even with no real wire underneath.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoopbackTransport;

impl ShardTransport for LoopbackTransport {
    fn name(&self) -> &'static str {
        "loopback"
    }

    fn carry(&self, _to: usize, frame: Vec<u8>) -> io::Result<Vec<u8>> {
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_identity() {
        let t = LoopbackTransport;
        assert_eq!(t.name(), "loopback");
        let frame = vec![1u8, 2, 3, 254];
        assert_eq!(t.carry(7, frame.clone()).unwrap(), frame);
    }

    #[test]
    fn transport_mode_defaults_to_in_process() {
        assert_eq!(TransportMode::default(), TransportMode::InProcess);
    }
}

//! # bingo-service
//!
//! A **vertex-sharded, multi-threaded walk service** over the Bingo engine:
//! the subsystem that serves concurrent random-walk traffic while graph
//! updates stream in — the serving-layer counterpart of the paper's
//! single-engine benchmarks, in the spirit of Wharf's
//! walks-under-streaming-updates setting.
//!
//! ## Architecture
//!
//! * The vertex space is split into `S` contiguous shards
//!   (`bingo_core::partition::Partitioner` — uniform, degree-balanced, or
//!   visit-frequency-weighted via a seeded warm-up walk pass); each shard
//!   owns a [`bingo_core::BingoEngine`] built over its range with
//!   [`bingo_core::BingoEngine::build_range`]. Shards are **resumable
//!   tasks on the process-wide worker pool** (the `rayon` shim's
//!   persistent parked workers), not dedicated threads, and idle shards
//!   steal forwarded-walker batches from hot shards' inboxes — stealing
//!   happens at the queue, never at the engine, which stays shard-owned
//!   behind a read/write lock (see `service` module docs).
//! * An **update router** splits incoming
//!   [`UpdateBatch`](bingo_graph::UpdateBatch) streams by owning shard
//!   (`UpdateBatch::split_by_owner` semantics), coalesces streamed events
//!   per shard, and flushes them as **epochs**: every flush sends one batch
//!   to every shard and bumps its generation counter after the batch is
//!   fully applied. Because a worker serially interleaves whole batches
//!   with walk steps, an in-flight walk step can never observe a torn
//!   radix group — the epoch totally orders every step against every
//!   update batch on that shard.
//! * The **walk scheduler** fans submitted walks out to the shards owning
//!   their start vertices as resumable
//!   [`WalkCursor`](bingo_walks::WalkCursor)s. A step whose destination
//!   belongs to another shard re-enqueues the walker at that shard
//!   (walker forwarding, §9.1 of the paper). Walks are described either by
//!   a built-in [`WalkSpec`](bingo_walks::WalkSpec) or by any custom
//!   [`WalkModel`](bingo_walks::WalkModel) trait object
//!   ([`WalkService::submit_model`]). Second-order models (node2vec) are
//!   served too: a forwarding shard attaches the model-declared context —
//!   a membership snapshot of the walker's previous vertex — so the
//!   receiving shard answers membership queries without cross-shard edge
//!   lookups. Snapshots are compact and cheap: the engine pre-builds hot
//!   hubs once per epoch (`bingo_core::context`), each shard encodes a
//!   `(vertex, epoch)` snapshot at most once per
//!   [`ServiceConfig::context_encoding`] (exact / delta-varint / opt-in
//!   Bloom — see `bingo_walks::model` for the wire formats), and what
//!   ships is **negotiated with the receiver's snapshot cache**: a
//!   `(vertex, epoch)` the receiver already holds goes as a true 16-byte
//!   handle ([`CONTEXT_HANDLE_BYTES`]), a miss ships the body and seeds
//!   the receiver. A missing capture is **not** silently served as "no
//!   edge": the fallback is counted per shard (`context_misses`) and
//!   asserted on in debug builds. Finished walks are collected by ticket
//!   and can be deposited into a
//!   [`WalkStore`](bingo_walks::walk_store::WalkStore).
//! * The **distribution boundary is pluggable** (see the [`transport`]
//!   module and the workspace README's *Distribution readiness*
//!   section): [`TransportMode::Serialized`] round-trips every forwarded
//!   walker through the versioned wire format of `bingo_walks::wire` —
//!   encode, carry via a [`ShardTransport`], decode, rebuild from the
//!   frame alone — so the accounted bytes are real bytes and the same
//!   forwarding path works across process boundaries
//!   ([`WalkService::build_with_transport`]; proven by
//!   `examples/two_process_demo.rs` over a loopback `TcpStream`). Walk
//!   output is bit-identical to the in-process mode.
//! * The [`WalkClient`] facade serves the same [`WalkRequest`]s from
//!   either a sharded service or a plain in-process
//!   [`BingoEngine`](bingo_core::BingoEngine) — one front-end, two
//!   backends.
//! * Per-shard throughput, occupancy, epoch, and forwarded-context
//!   counters (raw vs materialized bytes, snapshot cache hits/misses,
//!   capture faults) are exposed as [`ServiceStats`]; admission control is
//!   available via [`ServiceConfig::max_inbox`], with a rejected
//!   submission carrying retryable metadata
//!   ([`ServiceError::Saturated`]) and the occupancy sampling hook
//!   [`WalkService::admission_snapshot`] feeding adaptive controllers.
//!
//! ## Serving stack: where the gateway wires in
//!
//! Under real multi-tenant traffic the service is fronted by
//! `bingo-gateway`, which turns the binary admit/reject decision of
//! `max_inbox` into queueing, per-tenant fairness and adaptive
//! backpressure:
//!
//! ```text
//!   tenant A ──┐  WalkRequest(.tenant("A").weight(3))
//!   tenant B ──┤
//!   tenant C ──┘       │
//!                ┌─────▼──────────────────────────────┐
//!                │ bingo-gateway                      │
//!                │  per-tenant FIFO queues (bounded:  │
//!                │  GatewayError::Overloaded past the │
//!                │  depth cap)                        │
//!                │  deficit-round-robin dispatcher    │
//!                │  AIMD in-flight window ◄───────────┼── admission_snapshot()
//!                └─────┬──────────────────────────────┘    (occupancy +
//!                      │ shard-aligned chunks               rejection deltas,
//!                      │ submit_model_seeded()              sampled per tick)
//!                ┌─────▼──────────────────────────────┐
//!                │ WalkService                        │
//!                │  shard inboxes (max_inbox bound)   │
//!                │  shard tasks + BingoEngines on the │
//!                │  shared persistent worker pool     │
//!                └────────────────────────────────────┘
//! ```
//!
//! Direct [`WalkService::submit`]/[`WalkClient`] use stays fully
//! supported — the gateway is an optional front-end for workloads where
//! submitters must not starve each other. Both layers record into one
//! shared telemetry handle — see [Observability](#observability) below.
//!
//! ## Observability
//!
//! The whole serving stack records into a single
//! [`Telemetry`](bingo_telemetry::Telemetry) handle
//! ([`WalkService::build_with_telemetry`]; the gateway clones the
//! service's handle via [`WalkService::telemetry`], so gateway and shard
//! spans share one registry and one trace ring).
//!
//! **Metric taxonomy.** Names are stable, dot-separated
//! `layer.scope.metric` constants in [`bingo_telemetry::names`]
//! (`service.shard.*`, `service.context.*`, `gateway.tenant.*`, `pool.*`);
//! per-instance dimensions (shard index, tenant) ride in labels. Counters
//! and gauges are **always live** — [`ServiceStats`] and the gateway's
//! stats are views over the registry's atomics, costing exactly what raw
//! atomics cost — while duration histograms (log2-bucketed, nanoseconds,
//! `*_ns`) only exist in detailed mode. The thread-pool shim's profile
//! (calls, chunks, busy/idle nanos) is mirrored into the registry by
//! [`record_pool_profile`].
//!
//! **Modes.** `Telemetry::disabled()` (what [`WalkService::build`] uses)
//! adds nothing to the hot path: no clock reads, no histogram
//! registrations, no tracer. Detailed mode (`Telemetry::enabled(seed)`,
//! or `Telemetry::from_env` keyed on `BINGO_TELEMETRY=on|off`) records
//! per-stage latency histograms: `service.submit_ns`,
//! `service.shard.step_batch_ns`, `service.shard.inbox_dwell_ns`,
//! `service.shard.update_apply_ns`, `service.forward.hop_ns`,
//! `service.collect_ns`, `service.ticket.latency_ns`, and (through the
//! gateway) `gateway.tenant.wait_ns` / `gateway.dispatch_ns`.
//!
//! **Lifecycle traces.** Detailed mode samples walkers
//! **deterministically** — a pure hash of `(seed, ticket, walker)`, so the
//! sampled set is identical across runs, thread counts and layers — and
//! records spans into a bounded ring: `submit` → (`dispatch` when fronted
//! by the gateway) → per-shard `step` batches → cross-shard `hop`s (with
//! cache hit/miss and billed context bytes) → `collect`. A dump line reads
//! like
//!
//! ```text
//! t5/w24: submit(s3 v441) -> dispatch(heavy g1 wait=883823ns)
//!   -> step(s3 x1 @e0) -> hop(s3->s1 miss 0B) -> step(s1 x1 @e0)
//!   -> collect(len=6 hops=3 3384692ns)
//! ```
//!
//! — walker 24 of service ticket 5 started on shard 3 at vertex 441, was
//! dispatched by the gateway for tenant `heavy` after an 884µs queue wait,
//! stepped on shard 3 at update epoch 0, hopped to shard 1 without a
//! context-cache hit, and was collected after 3 hops with a final path of
//! 6 vertices. Spans recorded by different shard tasks stitch on
//! `(ticket, walker)` — see `bingo_telemetry::Tracer::lifecycles`.
//!
//! **Exposition.** Everything above — the registry as Prometheus text,
//! per-shard stats as JSON, the trace ring, the flight recorder's
//! structured runtime events (steals, saturation bounces, epoch
//! advances, shard park/unpark), and a lazy stall watchdog — is served
//! over HTTP by the `bingo-obs` crate (`/metrics`, `/status`, `/trace`,
//! `/flight`, `/healthz`), opt-in via `BINGO_OBS=host:port`. See the
//! workspace README's *Observability* section for the endpoint table and
//! flight-event taxonomy.
//!
//! ## Concurrency invariants
//!
//! The service's locking is small and ordered; `bingo-lint` enforces the
//! discipline statically and `BINGO_LOCK_CHECK=on` checks it at runtime
//! (see the workspace README's *Concurrency invariants* section):
//!
//! * Named locks: `service.pending` (ticket state + the `pending_cv`
//!   condvar), `service.done_rx` (the collector's end of the completion
//!   channel), `service.router` (update coalescing), per shard
//!   `service.shard_inbox` / `service.shard_engine` (an `RwLock`) /
//!   `service.shard_ctx_cache` (sender-side encode cache) /
//!   `service.shard_rx_cache` (receiver-side handle-negotiation cache),
//!   `service.models` (ticket → walk model, for rebuilding serialized
//!   frames), and `service.termination` (shutdown rendezvous). The
//!   nested orders are **`done_rx` → `pending`**, **`pending` →
//!   `models`** (collection drops the model), **`router` →
//!   `shard_inbox`** (flush pushes while coalescing), and
//!   **`shard_engine` → `shard_ctx_cache`** / **`shard_engine` →
//!   `shard_rx_cache`** (capture and negotiation under the read guard,
//!   eviction under the write guard; the two caches are never held
//!   together) — every path agrees, so the cross-function lock-order
//!   graph stays acyclic even jointly with the pool's `rayon.*` locks.
//! * Collection uses a **single-drainer hand-off**: exactly one waiter
//!   holds `done_rx` and blocks on `recv`, depositing every completion it
//!   sees and waking peers through `pending_cv`; peers whose ticket is
//!   already complete never touch the channel. Holding `done_rx` across
//!   that blocking `recv` is the design, and carries the one
//!   `lint:allow(lock-discipline)` in the tree.
//! * Engines stay **shard-owned** behind `service.shard_engine`: walker
//!   visits (the owner's or a thief's) sample under the read guard,
//!   update batches apply under the write guard, and the epoch counter is
//!   published inside the write guard — so a stolen visit observes
//!   exactly the epoch the owner's task would have shown it. Forwards and
//!   completions act only *after* the engine guard drops: no lock edge
//!   ever leaves an engine toward an inbox, the pool injector, or the
//!   done channel.
//! * Steals drain **leading walker messages only** from a victim's inbox,
//!   and the inbox guard drops before the victim's engine is read — the
//!   queue is the unit of theft, never the engine.
//! * Atomics: ticket IDs are `Relaxed` RMW allocations (annotated
//!   `relaxed-ok`); per-shard stats counters are `Relaxed` (telemetry
//!   registry); the per-shard scheduling latch CASes `AcqRel` and the
//!   idle transition publishes with `Release` before its lost-wakeup
//!   recheck — nothing in this crate uses an atomic for inter-thread sync
//!   without `Acquire`/`Release`.
//!
//! ## Quickstart
//!
//! ```
//! use bingo_service::{ServiceConfig, WalkService};
//! use bingo_graph::{Bias, DynamicGraph, UpdateBatch, UpdateEvent};
//! use bingo_walks::{DeepWalkConfig, WalkSpec};
//!
//! // A small ring graph.
//! let mut graph = DynamicGraph::new(64);
//! for v in 0..64u32 {
//!     graph.insert_edge(v, (v + 1) % 64, Bias::from_int(2)).unwrap();
//!     graph.insert_edge(v, (v + 7) % 64, Bias::from_int(1)).unwrap();
//! }
//!
//! // Serve it from 4 shards.
//! let service = WalkService::build(
//!     &graph,
//!     ServiceConfig { num_shards: 4, ..ServiceConfig::default() },
//! )
//! .unwrap();
//!
//! // Submit a batch of walks...
//! let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 });
//! let ticket = service.submit(spec, &[0, 13, 40, 63]).unwrap();
//!
//! // ...ingest updates while the walks run...
//! let receipt = service.ingest(&UpdateBatch::new(vec![UpdateEvent::Insert {
//!     src: 3,
//!     dst: 42,
//!     bias: Bias::from_int(9),
//! }]));
//! service.sync(receipt); // wait until visible on every shard
//!
//! // ...and collect the results.
//! let results = service.wait(ticket);
//! assert_eq!(results.paths.len(), 4);
//! assert!(results.total_steps() > 0);
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.total_steps() as usize, results.total_steps());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod service;
pub mod stats;
pub mod transport;

pub use client::{CollectionMode, RequestParts, WalkClient, WalkHandle, WalkOutput, WalkRequest};
pub use service::{
    record_pool_profile, AdmissionSnapshot, ContextTrace, IngestReceipt, PartitionStrategy,
    ServiceConfig, ServiceError, StepTrace, TicketResults, WalkService, WalkTicket,
    CONTEXT_HANDLE_BYTES,
};
pub use stats::{ServiceStats, ShardStatsSnapshot};
pub use transport::{LoopbackTransport, ShardTransport, TransportMode};

// The context-encoding knob of `ServiceConfig` and the tenant metadata of
// `WalkRequest` live in `bingo-walks` (walk-model layer); re-exported so
// service users configure them without a direct `bingo-walks` dependency.
pub use bingo_walks::{ContextEncoding, ContextMembership, TenantId, TicketMeta};

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::{Bias, DynamicGraph, UpdateBatch, UpdateEvent};
    use bingo_walks::{DeepWalkConfig, Node2VecConfig, PprConfig, WalkSpec};

    fn ring_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, Bias::from_int(2))
                .unwrap();
            g.insert_edge(v, (v + 2) % n as u32, Bias::from_int(1))
                .unwrap();
        }
        g
    }

    fn spec(len: usize) -> WalkSpec {
        WalkSpec::DeepWalk(DeepWalkConfig { walk_length: len })
    }

    #[test]
    fn walks_complete_and_are_valid_paths() {
        let graph = ring_graph(40);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let ticket = service.submit_all_vertices(spec(12)).unwrap();
        let results = service.wait(ticket);
        assert_eq!(results.paths.len(), 40);
        for (v, path) in results.paths.iter().enumerate() {
            assert_eq!(path[0], v as u32, "walk {v} starts at its start vertex");
            assert_eq!(path.len(), 13, "ring has no dead ends");
            for pair in path.windows(2) {
                assert!(graph.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.total_steps(), 40 * 12);
        assert_eq!(stats.total_walks_completed(), 40);
        assert!(
            stats.total_forwards() > 0,
            "ring walks must cross shard boundaries"
        );
    }

    #[test]
    fn tickets_are_collected_independently_and_in_any_order() {
        let graph = ring_graph(24);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 3,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let t1 = service.submit(spec(5), &[0, 1, 2]).unwrap();
        let t2 = service.submit(spec(7), &[10, 11]).unwrap();
        assert_ne!(t1, t2);
        let r2 = service.wait(t2);
        let r1 = service.wait(t1);
        assert_eq!(r1.paths.len(), 3);
        assert_eq!(r2.paths.len(), 2);
        assert!(r1.paths.iter().all(|p| p.len() == 6));
        assert!(r2.paths.iter().all(|p| p.len() == 8));
        assert_eq!(r2.paths[0][0], 10);
    }

    #[test]
    fn results_are_deterministic_for_a_seed_when_quiescent() {
        let graph = ring_graph(30);
        let run = |seed: u64| {
            let service = WalkService::build(
                &graph,
                ServiceConfig {
                    num_shards: 4,
                    seed,
                    ..ServiceConfig::default()
                },
            )
            .unwrap();
            let ticket = service.submit_all_vertices(spec(9)).unwrap();
            service.wait(ticket).paths
        };
        assert_eq!(run(7), run(7), "same seed, same walks");
        assert_ne!(run(7), run(8), "different seed, different walks");
    }

    #[test]
    fn updates_become_visible_to_later_walks() {
        // Vertex 0 initially has a single out-edge 0→1; after the update it
        // has only 0→2 (delete + insert): later walks must take it.
        let mut graph = DynamicGraph::new(3);
        graph.insert_edge(0, 1, Bias::from_int(1)).unwrap();
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();

        let before = service.wait(service.submit(spec(1), &[0]).unwrap());
        assert_eq!(before.paths[0], vec![0, 1]);

        let receipt = service.ingest(&UpdateBatch::new(vec![
            UpdateEvent::Delete { src: 0, dst: 1 },
            UpdateEvent::Insert {
                src: 0,
                dst: 2,
                bias: Bias::from_int(5),
            },
        ]));
        assert_eq!(receipt.epoch, 1);
        service.sync(receipt);

        let after = service.wait(service.submit(spec(1), &[0]).unwrap());
        assert_eq!(after.paths[0], vec![0, 2]);
        let stats = service.stats();
        assert!(stats.per_shard.iter().all(|s| s.epoch == 1));
        assert_eq!(stats.total_updates_applied(), 2);
    }

    #[test]
    fn streamed_events_coalesce_until_capacity() {
        let graph = ring_graph(16);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 2,
                coalesce_capacity: 3,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // Two buffered events: no flush yet.
        assert!(service
            .ingest_event(UpdateEvent::Insert {
                src: 0,
                dst: 5,
                bias: Bias::from_int(1),
            })
            .is_none());
        assert!(service
            .ingest_event(UpdateEvent::Insert {
                src: 1,
                dst: 5,
                bias: Bias::from_int(1),
            })
            .is_none());
        assert_eq!(service.stats().per_shard[0].epoch, 0);
        // Third event on the same shard triggers the coalesced flush.
        let receipt = service
            .ingest_event(UpdateEvent::Insert {
                src: 2,
                dst: 5,
                bias: Bias::from_int(1),
            })
            .expect("capacity reached");
        service.sync(receipt);
        let stats = service.stats();
        assert!(stats.per_shard.iter().all(|s| s.epoch == 1));
        assert_eq!(stats.total_updates_applied(), 3);
        // An explicit flush with empty buffers still advances the epoch.
        let receipt = service.flush();
        assert_eq!(receipt.epoch, 2);
        service.sync(receipt);
    }

    #[test]
    fn concurrent_waiters_all_complete() {
        // Regression: a ticket completed by another waiter's drain loop
        // must still wake its owner (no lost-wakeup hang in wait()).
        let graph = ring_graph(32);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        std::thread::scope(|scope| {
            let service = &service;
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    scope.spawn(move || {
                        let mut steps = 0usize;
                        for round in 0..8 {
                            let starts: Vec<u32> = (0..32).map(|v| (v + i + round) % 32).collect();
                            let ticket = service.submit(spec(6), &starts).unwrap();
                            steps += service.wait(ticket).total_steps();
                        }
                        steps
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 8 * 32 * 6);
            }
        });
    }

    #[test]
    fn out_of_range_destinations_in_batches_are_dropped() {
        // Regression: an ingested insert with dst outside the vertex space
        // must not create an edge that livelocks walker forwarding.
        let graph = ring_graph(8);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let receipt = service.ingest(&UpdateBatch::new(vec![
            UpdateEvent::Insert {
                src: 3,
                dst: 10_000,
                bias: Bias::from_int(1_000_000),
            },
            UpdateEvent::UpdateBias {
                src: 4,
                dst: 20_000,
                bias: Bias::from_int(9),
            },
        ]));
        service.sync(receipt);
        assert_eq!(service.stats().total_updates_applied(), 0);
        // Walks from the would-be source terminate normally.
        let results = service.wait(service.submit(spec(10), &[3, 4]).unwrap());
        for path in &results.paths {
            assert_eq!(path.len(), 11);
            for &v in path {
                assert!((v as usize) < 8, "walk stayed in the vertex space");
            }
        }
    }

    #[test]
    fn walk_store_target_is_bounded_for_ppr() {
        // Regression: PPR with stop_probability 0 has an unbounded
        // *expected* length; the store's refresh target must use the
        // deterministic max_length cap instead.
        let graph = ring_graph(12);
        let service = WalkService::build(&graph, ServiceConfig::default()).unwrap();
        let ppr = WalkSpec::Ppr(bingo_walks::PprConfig {
            stop_probability: 0.0,
            max_length: 15,
        });
        let results = service.wait(service.submit_all_vertices(ppr).unwrap());
        let mut store = results.into_walk_store(12, 3);
        // Trigger a refresh; it must re-extend to max_length, not run away.
        let mut engine =
            bingo_core::BingoEngine::build(&graph, bingo_core::BingoConfig::default()).unwrap();
        engine.insert_edge(0, 6, Bias::from_int(50)).unwrap();
        store.on_edge_inserted(&engine, 0, 6);
        for walk in store.walks() {
            assert!(
                walk.len() <= 16,
                "refresh respected the cap: {}",
                walk.len()
            );
        }
    }

    #[test]
    fn ppr_walks_terminate_probabilistically() {
        let graph = ring_graph(32);
        let service = WalkService::build(&graph, ServiceConfig::default()).unwrap();
        let ticket = service
            .submit_all_vertices(WalkSpec::Ppr(PprConfig {
                stop_probability: 0.2,
                max_length: 50,
            }))
            .unwrap();
        let results = service.wait(ticket);
        let mean = results.total_steps() as f64 / results.paths.len() as f64;
        // Expected steps before termination: (1 - 0.2) / 0.2 = 4.
        assert!(mean > 1.0 && mean < 12.0, "mean PPR length {mean}");
    }

    #[test]
    fn submission_errors_are_reported() {
        let graph = ring_graph(8);
        let service = WalkService::build(&graph, ServiceConfig::default()).unwrap();
        assert_eq!(
            service.submit(spec(3), &[]),
            Err(ServiceError::EmptySubmission)
        );
        assert_eq!(
            service.submit(spec(3), &[99]),
            Err(ServiceError::VertexOutOfRange {
                vertex: 99,
                num_vertices: 8
            })
        );
    }

    #[test]
    fn node2vec_submissions_are_served() {
        // The former hard rejection of second-order specs is gone: the
        // carried adjacency-fingerprint context makes node2vec servable.
        let graph = ring_graph(24);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let ticket = service
            .submit(
                WalkSpec::Node2Vec(Node2VecConfig {
                    walk_length: 10,
                    p: 0.5,
                    q: 2.0,
                }),
                &[0, 6, 13, 23],
            )
            .expect("node2vec is servable");
        let results = service.wait(ticket);
        assert_eq!(results.paths.len(), 4);
        assert_eq!(results.model.name(), "node2vec");
        for path in &results.paths {
            assert_eq!(path.len(), 11, "ring has no dead ends");
            for pair in path.windows(2) {
                assert!(graph.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
            }
        }
        let stats = service.shutdown();
        assert!(stats.total_forwards() > 0, "ring walks cross shards");
        assert!(
            stats.total_context_bytes() > 0,
            "forwarded node2vec walkers carry context"
        );
    }

    #[test]
    fn bounded_inboxes_reject_oversized_submissions() {
        let graph = ring_graph(16);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 2,
                max_inbox: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // 5 walkers aimed at shard 0's inbox (capacity 4) must be refused
        // atomically — nothing enqueued, error carries the shard.
        let err = service
            .submit(spec(3), &[0, 1, 2, 3, 4])
            .expect_err("submission exceeds the inbox bound");
        assert!(
            matches!(
                err,
                ServiceError::Saturated {
                    shard: 0,
                    capacity: 4,
                    ..
                }
            ),
            "unexpected error {err:?}"
        );
        // A batch whose share on a *later* shard permanently exceeds the
        // bound is reported as that shard's non-retryable rejection, even
        // though its shard-0 share fits (retrying it verbatim could never
        // succeed). Shard 1 owns vertices 8..16 here.
        let err = service
            .submit(spec(3), &[0, 1, 8, 9, 10, 11, 12, 13])
            .expect_err("6 walkers exceed shard 1's bound");
        assert!(
            matches!(
                err,
                ServiceError::Saturated {
                    shard: 1,
                    retryable: false,
                    ..
                }
            ),
            "unexpected error {err:?}"
        );
        // A fitting submission still goes through.
        let ok = service.submit(spec(3), &[0, 1, 8, 9]).unwrap();
        let results = service.wait(ok);
        assert_eq!(results.paths.len(), 4);
        let stats = service.shutdown();
        assert_eq!(stats.total_saturated_rejections(), 2);
        assert_eq!(stats.total_walks_completed(), 4);
    }

    #[test]
    fn wait_and_try_wait_interleave_without_losing_completions() {
        // Regression for the drain-role race: a non-blocking `try_wait`
        // poller (the gateway dispatcher's completion loop) can absorb a
        // blocking waiter's final walk in the window between the waiter
        // claiming the drain role and parking in `recv()` — the drain
        // must re-check completeness under the channel lock before
        // blocking, or the waiter hangs forever.
        let graph = ring_graph(16);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        std::thread::scope(|scope| {
            let service = &service;
            let waiter = scope.spawn(move || {
                let mut steps = 0usize;
                for _ in 0..300 {
                    let t = service.submit(spec(3), &[1, 9]).unwrap();
                    steps += service.wait(t).total_steps();
                }
                steps
            });
            let poller = scope.spawn(move || {
                let mut steps = 0usize;
                for _ in 0..300 {
                    let t = service.submit(spec(3), &[2, 10]).unwrap();
                    loop {
                        if let Some(r) = service.try_wait(t) {
                            steps += r.total_steps();
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
                steps
            });
            assert_eq!(waiter.join().unwrap(), 300 * 2 * 3);
            assert_eq!(poller.join().unwrap(), 300 * 2 * 3);
        });
    }

    #[test]
    fn exact_capacity_submission_is_admitted() {
        // The admission boundary is strict: a submission routing exactly
        // `max_inbox` walkers to one shard fits, one more does not.
        let graph = ring_graph(16);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 2,
                max_inbox: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // Vertices 0..8 belong to shard 0: exactly 4 walkers → admitted.
        let ticket = service
            .submit(spec(3), &[0, 1, 2, 3])
            .expect("exact-capacity submission is admitted");
        let results = service.wait(ticket);
        assert_eq!(results.paths.len(), 4);
        let stats = service.shutdown();
        assert_eq!(
            stats.total_saturated_rejections(),
            0,
            "no rejection at exactly max_inbox"
        );
    }

    #[test]
    fn saturation_retryability_distinguishes_batch_size_from_backlog() {
        // One shard (walkers never forward, so a walker occupies the
        // worker for its whole walk), inbox bound 2.
        let graph = ring_graph(8);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 1,
                max_inbox: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        // A batch larger than the inbox can never be admitted, no matter
        // how empty the queue: not retryable.
        let err = service
            .submit(spec(3), &[0, 1, 2])
            .expect_err("3 walkers exceed the 2-message bound");
        assert!(
            matches!(
                err,
                ServiceError::Saturated {
                    retryable: false,
                    ..
                }
            ),
            "oversized batch is a permanent rejection: {err:?}"
        );
        assert!(!err.is_retryable());

        // A fitting batch rejected only because the queue is momentarily
        // backlogged is retryable. Two long walks keep the single worker
        // busy (the second stays queued) while we probe.
        let busy = service.submit(spec(200_000), &[0, 1]).unwrap();
        let err = service
            .submit(spec(3), &[4, 5])
            .expect_err("inbox backlogged by the long walks");
        assert!(
            matches!(
                err,
                ServiceError::Saturated {
                    retryable: true,
                    ..
                }
            ),
            "fitting batch is retryable once the queue drains: {err:?}"
        );
        assert!(err.is_retryable());
        assert!(err.to_string().contains("retryable"));
        let results = service.wait(busy);
        assert_eq!(results.paths.len(), 2);
        let stats = service.shutdown();
        assert_eq!(
            stats.total_saturated_rejections(),
            2,
            "both rejections counted"
        );
    }

    #[test]
    fn chunked_client_completes_under_admission_pressure() {
        // Regression for the `WalkHandle::wait` panic on `Saturated`
        // chunk resubmission: several chunked clients oversubscribing a
        // bounded-inbox service must all complete (rejected chunks back
        // off and retry instead of panicking the waiter).
        let graph = ring_graph(64);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 2,
                max_inbox: 8,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        std::thread::scope(|scope| {
            let service = &service;
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    scope.spawn(move || {
                        let client = WalkClient::sharded(service);
                        let starts: Vec<u32> = (0..64).map(|v| (v + 16 * i) % 64).collect();
                        let request = WalkRequest::spec(spec(50))
                            .starts(starts)
                            .max_in_flight(8)
                            .seed(40 + u64::from(i));
                        // The *first* chunk can also be rejected while the
                        // other threads keep the inboxes full; that path
                        // surfaces the typed error for the caller to back
                        // off on. Later chunks retry inside `wait`.
                        let handle = loop {
                            match client.submit(request.clone()) {
                                Ok(handle) => break handle,
                                Err(err) if err.is_retryable() => {
                                    std::thread::sleep(std::time::Duration::from_micros(200));
                                }
                                Err(err) => panic!("unexpected rejection {err:?}"),
                            }
                        };
                        handle.wait().num_walks
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), 64, "every chunked request completed");
            }
        });
    }

    #[test]
    fn custom_models_run_on_the_service() {
        use bingo_walks::model::{StepSampler, Transition, WalkModel, WalkState};
        use rand::RngCore;
        use std::sync::Arc;

        /// A fixed-length walk that stops early at even-numbered vertices
        /// after the half-way point — exercising a model the built-in enum
        /// cannot express.
        #[derive(Debug)]
        struct HalfEvenStop {
            length: usize,
        }

        impl WalkModel for HalfEvenStop {
            fn name(&self) -> &str {
                "half-even-stop"
            }
            fn expected_length(&self) -> usize {
                self.length
            }
            fn max_steps(&self) -> usize {
                self.length
            }
            fn step(
                &self,
                state: &WalkState,
                sampler: &dyn StepSampler,
                rng: &mut dyn RngCore,
            ) -> Transition {
                if state.steps_taken() >= self.length
                    || (state.steps_taken() * 2 >= self.length && state.current().is_multiple_of(2))
                {
                    return Transition::Terminate;
                }
                match sampler.sample_neighbor_dyn(state.current(), rng) {
                    Some(next) => Transition::Step(next),
                    None => Transition::Terminate,
                }
            }
        }

        let graph = ring_graph(20);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 3,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let ticket = service
            .submit_model(Arc::new(HalfEvenStop { length: 12 }), &[1, 5, 11])
            .unwrap();
        let results = service.wait(ticket);
        assert_eq!(results.model.name(), "half-even-stop");
        for path in &results.paths {
            assert!(path.len() <= 13);
            let last = *path.last().unwrap();
            // Terminated at the cap, or at an even vertex past half-way.
            assert!(path.len() == 13 || last % 2 == 0);
            for pair in path.windows(2) {
                assert!(graph.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn results_deposit_into_a_walk_store() {
        let graph = ring_graph(20);
        let service = WalkService::build(&graph, ServiceConfig::default()).unwrap();
        let ticket = service.submit_all_vertices(spec(8)).unwrap();
        let results = service.wait(ticket);
        let store = results.into_walk_store(20, 5);
        assert_eq!(store.num_walks(), 20);
        assert_eq!(store.total_steps(), 20 * 8);
        for v in 0..20u32 {
            assert!(!store.walks_visiting(v).is_empty());
        }
    }

    #[test]
    fn traces_record_epochs_when_enabled() {
        let graph = ring_graph(12);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 3,
                record_epochs: true,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let r0 = service.wait(service.submit(spec(4), &[0]).unwrap());
        assert_eq!(r0.traces[0].len(), 4);
        assert!(r0.traces[0].iter().all(|t| t.epoch == 0));

        let receipt = service.ingest(&UpdateBatch::new(vec![UpdateEvent::Insert {
            src: 0,
            dst: 6,
            bias: Bias::from_int(1),
        }]));
        service.sync(receipt);
        let r1 = service.wait(service.submit(spec(4), &[0]).unwrap());
        assert!(r1.traces[0].iter().all(|t| t.epoch == 1));
        // Traced steps match the path.
        for (trace, pair) in r1.traces[0].iter().zip(r1.paths[0].windows(2)) {
            assert_eq!(trace.src, pair[0]);
            assert_eq!(trace.dst, pair[1]);
        }
    }

    fn node2vec(len: usize) -> WalkSpec {
        WalkSpec::Node2Vec(Node2VecConfig {
            walk_length: len,
            p: 0.5,
            q: 2.0,
        })
    }

    #[test]
    fn serialized_transport_is_bit_identical_and_bills_real_bytes() {
        // The tentpole invariant: routing every forwarded walker through
        // encode → carry → decode → rebuild must not change a single step,
        // and in serialized mode the byte counters count real frames.
        let graph = ring_graph(24);
        let starts = [0u32, 6, 13, 23];
        let run = |mode: TransportMode| {
            let service = WalkService::build(
                &graph,
                ServiceConfig {
                    num_shards: 4,
                    transport: mode,
                    ..ServiceConfig::default()
                },
            )
            .unwrap();
            let results = service.wait(service.submit(node2vec(12), &starts).unwrap());
            (results.paths, service.shutdown())
        };
        let (in_paths, in_stats) = run(TransportMode::InProcess);
        let (ser_paths, ser_stats) = run(TransportMode::Serialized);
        assert_eq!(
            in_paths, ser_paths,
            "the wire round-trip must be invisible to walk output"
        );
        assert!(ser_stats.total_forwards() > 0, "ring walks cross shards");
        assert!(
            ser_stats.total_transport_bytes_sent() > 0,
            "serialized forwards ship frames"
        );
        assert_eq!(
            ser_stats.total_transport_bytes_sent(),
            ser_stats.total_transport_bytes_recv(),
            "the loopback carrier delivers every byte it is handed"
        );
        assert_eq!(
            in_stats.total_transport_bytes_sent(),
            0,
            "in-process forwards ship nothing"
        );
        assert_eq!(
            ser_stats.total_context_misses(),
            0,
            "rebuilt walkers answer every membership query from the frame"
        );
    }

    #[test]
    fn handle_negotiation_ships_handles_on_repeat_forwards() {
        // First submission seeds the receivers' snapshot caches (every
        // offer ships the body); a second identical submission in the same
        // epoch finds them warm, so offers resolve to 16-byte handles.
        let graph = ring_graph(24);
        let starts: Vec<u32> = (0..24).collect();
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: 4,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.wait(service.submit(node2vec(10), &starts).unwrap());
        service.wait(service.submit(node2vec(10), &starts).unwrap());
        let stats = service.shutdown();
        assert!(
            stats.total_handle_offers() > 0,
            "ring snapshots are larger than a handle, so offers happen"
        );
        assert!(stats.total_handle_hits() > 0, "repeat forwards hit");
        assert!(stats.total_body_requests() > 0, "first forwards seed");
        assert_eq!(
            stats.total_handle_hits() + stats.total_body_requests(),
            stats.total_handle_offers(),
            "every offer either hits or ships the body"
        );
        assert!(stats.handle_hit_rate() > 0.0);
    }

    #[test]
    fn snapshot_cache_occupancy_stays_bounded_across_epochs() {
        // Satellite regression: snapshot caches hold one slot per key, so
        // a long structural-update stream must not grow them — occupancy
        // is bounded by the forwarded-vertex set, never by epoch count.
        let graph = ring_graph(16);
        let num_shards = 4usize;
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let starts: Vec<u32> = (0..16).collect();
        for i in 0..16u32 {
            service.wait(service.submit(node2vec(8), &starts).unwrap());
            let receipt = service.ingest(&UpdateBatch::new(vec![UpdateEvent::Insert {
                src: i,
                dst: (i + 5) % 16,
                bias: Bias::from_int(1),
            }]));
            service.sync(receipt);
            let (sender, receiver) = service.snapshot_cache_occupancy();
            assert!(
                sender <= 16,
                "sender cache exceeds the vertex set: {sender}"
            );
            assert!(
                receiver <= num_shards * 16,
                "receiver caches exceed (shard, vertex) keys: {receiver}"
            );
        }
        let (sender, receiver) = service.snapshot_cache_occupancy();
        assert!(sender > 0 || receiver > 0, "walks populated the caches");
        service.shutdown();
    }

    #[test]
    fn scoped_invalidation_keeps_untouched_snapshots_warm() {
        // Scoped mode evicts only the vertices a structural batch touched;
        // the wholesale baseline flushes everything a structurally-updated
        // shard owns. The batch touches one vertex per shard (the router
        // splits it by owner), so under wholesale EVERY shard flushes and
        // both cache tiers end empty, while scoped eviction drops at most
        // the four touched vertices.
        let run = |scoped: bool| {
            let graph = ring_graph(16);
            let engine = bingo_core::BingoConfig {
                scoped_context_invalidation: scoped,
                ..Default::default()
            };
            let service = WalkService::build(
                &graph,
                ServiceConfig {
                    num_shards: 4,
                    engine,
                    ..ServiceConfig::default()
                },
            )
            .unwrap();
            let starts: Vec<u32> = (0..16).collect();
            service.wait(service.submit(node2vec(10), &starts).unwrap());
            let before = service.snapshot_cache_occupancy();
            // One touched vertex in each shard's uniform 4-vertex range.
            let events: Vec<UpdateEvent> = [0u32, 4, 8, 12]
                .iter()
                .map(|&src| UpdateEvent::Insert {
                    src,
                    dst: (src + 7) % 16,
                    bias: Bias::from_int(1),
                })
                .collect();
            let receipt = service.ingest(&UpdateBatch::new(events));
            service.sync(receipt);
            let after = service.snapshot_cache_occupancy();
            service.shutdown();
            (before, after)
        };
        let (scoped_before, scoped_after) = run(true);
        assert!(
            scoped_before.0 > 0 && scoped_before.1 > 0,
            "walks populated both cache tiers: {scoped_before:?}"
        );
        // At most the four touched vertices may leave the sender tier.
        assert!(
            scoped_after.0 + 4 >= scoped_before.0,
            "scoped eviction dropped more than the touched vertices: \
             {scoped_before:?} -> {scoped_after:?}"
        );
        assert!(
            scoped_after.0 > 0,
            "untouched snapshots survive a scoped eviction"
        );
        let (wholesale_before, wholesale_after) = run(false);
        assert_eq!(
            wholesale_before, scoped_before,
            "identical workload populates identically"
        );
        assert_eq!(
            wholesale_after,
            (0, 0),
            "wholesale invalidation empties both cache tiers"
        );
        assert!(
            scoped_after.0 > wholesale_after.0,
            "scoped keeps snapshots the wholesale baseline throws away"
        );
    }
}

//! The sharded walk service: resumable shard tasks on the shared worker
//! pool, cross-shard batch stealing, the update router, and the ticketed
//! walk-submission API.
//!
//! # Shard tasks, not shard threads
//!
//! Shards no longer own dedicated OS threads. Each shard is a small state
//! machine (`ShardState`: a locked inbox plus a schedule flag) whose
//! work runs as **resumable tasks on the process-wide worker pool** (the
//! `rayon` shim's persistent parked workers, grown to at least
//! `num_shards` at build). Pushing a message CASes the shard's flag from
//! `IDLE` to `SCHEDULED` and spawns one activation; an activation drains a
//! bounded batch from the inbox, processes it, and either re-enqueues
//! itself (inbox still hot), steals from a hot peer, or goes idle with a
//! lost-wakeup-safe recheck.
//!
//! # Stealing happens at the queue, never at the engine
//!
//! An idle shard task may drain a batch of *forwarded-walker* messages
//! from the front of a hot peer's inbox and execute them — **against the
//! owning shard's engine**, through the same epoch-checked read path the
//! owner uses. Engines stay shard-owned behind a `RwLock`: walker visits
//! hold a read guard, update batches hold the write guard, so a steal can
//! never observe a torn update and per-shard epoch ordering is preserved
//! (thieves stop at the first non-walker message). `BINGO_STEAL=off`
//! disables stealing without changing any walk output — paths depend only
//! on each walker's private RNG and the engine epoch it sampled under.

use crate::stats::{ServiceStats, ShardCounters};
use crate::transport::{LoopbackTransport, ShardTransport, TransportMode};
use bingo_core::partition::Partitioner;
use bingo_core::{BingoConfig, BingoEngine, BingoError};
use bingo_graph::{DynamicGraph, UpdateBatch, UpdateEvent, VertexId};
use bingo_sampling::rng::{Pcg64, SplitMix64};
use bingo_telemetry::{names, FlightEventKind, Gauge, Histogram, Telemetry, TraceStage};
use bingo_walks::walk_store::WalkStore;
use bingo_walks::wire::{self, ContextHandle, FrameContext, WalkerFrame};
use bingo_walks::{
    CarriedContext, ContextEncoding, ContextMembership, ContextRequirement, SharedWalkModel,
    WalkCursor, WalkSpec,
};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors produced by the walk service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A start vertex is outside the service's vertex range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of vertices the service manages.
        num_vertices: usize,
    },
    /// A submission contained no start vertices.
    EmptySubmission,
    /// A shard's inbox is at [`ServiceConfig::max_inbox`]: the submission
    /// was rejected for admission control (no walker was enqueued).
    Saturated {
        /// The shard whose inbox is full.
        shard: usize,
        /// Messages queued on that shard when the submission was rejected.
        queued: usize,
        /// The configured inbox bound.
        capacity: usize,
        /// Whether resubmitting the same batch can ever succeed: `true`
        /// when the shard's share fits an *empty* inbox (the queue just
        /// needs to drain), `false` when the batch routes more walkers to
        /// one shard than [`ServiceConfig::max_inbox`] admits — retrying
        /// such a batch verbatim loops forever; it must be split instead.
        retryable: bool,
    },
    /// An error bubbled up from the engine layer.
    Core(BingoError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range ({num_vertices} vertices)"),
            ServiceError::EmptySubmission => write!(f, "no start vertices submitted"),
            ServiceError::Saturated {
                shard,
                queued,
                capacity,
                retryable,
            } => write!(
                f,
                "shard {shard} inbox saturated ({queued} queued, capacity {capacity}, {})",
                if *retryable {
                    "retryable"
                } else {
                    "batch exceeds capacity — split it"
                }
            ),
            ServiceError::Core(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl ServiceError {
    /// Whether backing off and resubmitting the same request can succeed.
    /// Only transient inbox saturation qualifies; validation errors and a
    /// batch too large for any inbox never will.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Saturated {
                retryable: true,
                ..
            }
        )
    }
}

impl std::error::Error for ServiceError {}

impl From<BingoError> for ServiceError {
    fn from(e: BingoError) -> Self {
        ServiceError::Core(e)
    }
}

/// Result alias for service operations.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// How the vertex space is split into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Equal vertex counts per shard (contiguous uniform ranges).
    #[default]
    Uniform,
    /// Contiguous ranges balanced by out-degree
    /// ([`Partitioner::balanced_by_degree`]): on skewed graphs this
    /// equalizes per-shard sampling load instead of vertex counts.
    DegreeBalanced,
    /// Contiguous ranges balanced by *observed visit frequency*
    /// ([`Partitioner::balanced_by_visits`]): a cheap seeded warm-up walk
    /// pass over the graph counts where biased walkers actually step, so
    /// shards equalize on walk traffic rather than raw degree — attractor
    /// vertices that absorb walkers weigh more than degree alone predicts.
    /// The warm-up is seeded from [`ServiceConfig::seed`], keeping the
    /// split deterministic.
    VisitWeighted,
}

/// Configuration of a [`WalkService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of vertex shards (resumable tasks on the shared worker
    /// pool). At least 1.
    pub num_shards: usize,
    /// Seed from which every walker's RNG stream is derived.
    pub seed: u64,
    /// Configuration of the per-shard Bingo engines.
    pub engine: BingoConfig,
    /// Per-shard router buffer size: streamed events are coalesced until
    /// any shard's buffer reaches this many events, then flushed to all
    /// shards as one epoch.
    pub coalesce_capacity: usize,
    /// Record, for every walk step, the epoch of the shard that sampled it,
    /// and every forwarded-context snapshot (used by consistency tests;
    /// costs one `Vec` push per step).
    pub record_epochs: bool,
    /// Admission bound on each shard's inbox: a submission is rejected with
    /// [`ServiceError::Saturated`] when it would push a shard's queue depth
    /// past this many messages. `0` (the default) keeps inboxes unbounded.
    /// The bound applies to walk admission only — in-flight walker forwards
    /// and update batches are never dropped.
    pub max_inbox: usize,
    /// How the vertex space is split into shards.
    pub partition: PartitionStrategy,
    /// Wire encoding of the membership snapshots attached to forwarded
    /// second-order walkers. The default ([`ContextEncoding::Exact`]) keeps
    /// membership answers bit-identical to a single engine;
    /// [`ContextEncoding::Delta`] shrinks the bytes without changing
    /// answers; [`ContextEncoding::Bloom`] is smallest but approximate
    /// (see `bingo_walks::model` for the format table).
    pub context_encoding: ContextEncoding,
    /// Whether idle shard tasks steal forwarded-walker batches from hot
    /// shards' inboxes. `None` (the default) reads the `BINGO_STEAL`
    /// environment variable (`off`/`0`/`false` disables, anything else —
    /// including unset — enables); `Some(_)` overrides the environment.
    /// Stealing never changes walk output, only which shard task executes
    /// a visit, so this is purely a load-balance/latency knob.
    pub steal: Option<bool>,
    /// How forwarded walkers cross the shard boundary. The default
    /// ([`TransportMode::InProcess`]) moves them as in-process
    /// allocations; [`TransportMode::Serialized`] round-trips every
    /// forward through the versioned wire format (encode → carry →
    /// decode → rebuild), making the accounted bytes real bytes while
    /// keeping walk output bit-identical. See [`crate::transport`].
    pub transport: TransportMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            num_shards: 4,
            seed: 0x5E41_11CE,
            engine: BingoConfig::default(),
            coalesce_capacity: 4096,
            record_epochs: false,
            max_inbox: 0,
            partition: PartitionStrategy::Uniform,
            context_encoding: ContextEncoding::Exact,
            steal: None,
            transport: TransportMode::default(),
        }
    }
}

/// Resolve the effective stealing switch: an explicit
/// [`ServiceConfig::steal`] wins; otherwise `BINGO_STEAL=off|0|false`
/// disables and anything else enables.
fn resolve_steal(config: &ServiceConfig) -> bool {
    config.steal.unwrap_or_else(|| {
        !matches!(
            std::env::var("BINGO_STEAL").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    })
}

/// Messages one shard-task activation processes before re-enqueueing
/// itself, bounding how long a single shard can monopolize a pool worker.
const TASK_BATCH: usize = 32;
/// Maximum consecutive walker messages a thief drains from the front of a
/// victim's inbox in one steal.
const STEAL_BATCH: usize = 8;
/// Minimum inbox depth that makes a shard worth stealing from (and that
/// triggers help wakeups of idle peers on enqueue).
const STEAL_THRESHOLD: usize = 4;

/// [`ShardState::sched`]: no activation is scheduled; the next push must
/// CAS to `SCHED_SCHEDULED` and spawn one.
const SCHED_IDLE: u8 = 0;
/// [`ShardState::sched`]: an activation is queued or running and is
/// guaranteed to re-check the inbox before the shard goes idle.
const SCHED_SCHEDULED: u8 = 1;

/// Bytes shipped when the receiver's snapshot cache already holds the
/// offered `(vertex, epoch)` snapshot: the wire-format
/// [`ContextHandle`] instead of the payload (re-exported from
/// [`bingo_walks::wire`], whose encoder defines the layout). Snapshots
/// whose payload is no larger than the handle always ship inline — a
/// handle would not save anything — so negotiation only engages past
/// this size.
pub use bingo_walks::wire::CONTEXT_HANDLE_BYTES;

/// Derive one walker's RNG seed from the submission seed and its
/// `(ticket, index)` coordinates.
///
/// Each component is folded in through a SplitMix64 finalizer round, so the
/// map from `(base, ticket, index)` to seeds has no exploitable algebraic
/// structure. The previous scheme XORed two odd-constant products, which
/// preserves low-bit linear structure (the parity of the seed was the
/// parity of `base ^ ticket ^ index`) and admits colliding
/// `(ticket, index)` pairs — identical Pcg64 streams for distinct walkers.
fn walker_seed(base: u64, ticket: u64, index: u64) -> u64 {
    let t = SplitMix64::new(base ^ ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next();
    SplitMix64::new(t ^ index.wrapping_mul(0xA24B_AED4_963E_E407)).next()
}

/// One step of a serviced walk, annotated with the generation counter of
/// the shard that sampled it (recorded when
/// [`ServiceConfig::record_epochs`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepTrace {
    /// Vertex the step departed from.
    pub src: VertexId,
    /// Vertex the step arrived at.
    pub dst: VertexId,
    /// Shard that owned `src` and sampled the step.
    pub shard: usize,
    /// The shard's epoch (update batches applied) when the step was taken.
    pub epoch: u64,
}

/// One forwarded-context capture: the previous vertex whose adjacency was
/// snapshotted and the membership snapshot that travelled with the walker
/// (recorded when [`ServiceConfig::record_epochs`] is set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextTrace {
    /// The vertex whose out-adjacency was captured (the walker's previous
    /// vertex at forward time).
    pub vertex: VertexId,
    /// The sorted adjacency fingerprint the snapshot represents (decoded;
    /// empty for the one-way Bloom encoding).
    pub adjacency: Vec<VertexId>,
    /// Shard that owned `vertex` and captured the snapshot.
    pub shard: usize,
    /// The capturing shard's epoch at capture time.
    pub epoch: u64,
    /// Bytes billed to `context_bytes_forwarded` for this forward — equal
    /// to what the wire frame ships: the snapshot's encoded size when the
    /// receiver had to be sent the body, [`CONTEXT_HANDLE_BYTES`] when
    /// the receiver's snapshot cache already held this `(vertex, epoch)`
    /// and a handle sufficed.
    pub bytes_sent: usize,
    /// Whether the *sender's* encode cache already held the snapshot
    /// (encode reuse — independent of the receiver-side handle
    /// negotiation that decides `bytes_sent`).
    pub cache_hit: bool,
}

/// A walker in flight: a resumable cursor plus its private RNG stream.
struct Walker {
    ticket: u64,
    index: u32,
    cursor: WalkCursor,
    rng: Pcg64,
    hops: u32,
    trace: Vec<StepTrace>,
    contexts: Vec<ContextTrace>,
    /// Second-order membership queries degraded by a missing carried
    /// context (capture faults), accumulated across shards.
    context_misses: u64,
    /// Whether this walker is in the telemetry trace sample (decided once
    /// at submit via the deterministic sampling hash, carried along so
    /// every shard agrees without re-hashing).
    sampled: bool,
    /// When the last enqueue of this walker happened — `None` unless
    /// telemetry is detailed. Lets the receiving shard measure inbox
    /// dwell (and forward-hop latency for `hops > 0` arrivals) without
    /// any clock read in disabled mode.
    sent_at: Option<Instant>,
}

/// A completed walk on its way back to the service handle.
struct FinishedWalk {
    ticket: u64,
    index: u32,
    path: Vec<VertexId>,
    hops: u32,
    trace: Vec<StepTrace>,
    contexts: Vec<ContextTrace>,
    /// Capture faults this walk experienced (see `Walker::context_misses`).
    context_misses: u64,
    /// Whether the walk is in the telemetry trace sample (see
    /// `Walker::sampled`); the collector emits its `Collect` span.
    sampled: bool,
    /// Worker-side completion time, so ticket latency measures when the
    /// walk actually finished, not when it was collected.
    finished_at: Instant,
}

enum ShardMsg {
    Walker(Box<Walker>),
    /// Pre-split update batch for this shard; applying it bumps the shard's
    /// epoch by one, even when the batch is empty (epochs advance uniformly
    /// across shards, one per router flush). The stamp is the router-side
    /// flush time (`None` unless telemetry is detailed), for the
    /// inbox-dwell histogram.
    Update(UpdateBatch, Option<Instant>),
    Shutdown,
}

/// Handle for retrieving the results of one walk submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WalkTicket(u64);

impl WalkTicket {
    /// The ticket's numeric id.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// Receipt returned by update ingestion: the epoch the flushed events
/// belong to. Once every shard's epoch (see
/// [`ServiceStats`]) reaches this value, all events of
/// this ingest are visible to new walk steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Epoch assigned to the flushed events (0 = nothing flushed yet).
    pub epoch: u64,
    /// Events routed in this ingest call.
    pub events_routed: usize,
}

/// Results of one walk submission.
#[derive(Debug, Clone)]
pub struct TicketResults {
    /// The ticket these results answer.
    pub ticket: WalkTicket,
    /// The walk model that was run.
    pub model: SharedWalkModel,
    /// One path per submitted start vertex, in submission order.
    pub paths: Vec<Vec<VertexId>>,
    /// Cross-shard hops per walker.
    pub hops: Vec<u32>,
    /// Per-step epoch traces (empty unless
    /// [`ServiceConfig::record_epochs`]).
    pub traces: Vec<Vec<StepTrace>>,
    /// Forwarded-context captures per walker (empty unless
    /// [`ServiceConfig::record_epochs`]).
    pub contexts: Vec<Vec<ContextTrace>>,
    /// Wall-clock time from submission to the last walker finishing.
    pub latency: Duration,
}

impl TicketResults {
    /// Total steps across all walks of this ticket.
    pub fn total_steps(&self) -> usize {
        self.paths.iter().map(|p| p.len().saturating_sub(1)).sum()
    }

    /// Deposit the collected walks into a Wharf-style [`WalkStore`] for
    /// incremental maintenance, indexed over `num_vertices` vertices.
    ///
    /// The store's refresh target is the model's deterministic step cap,
    /// never PPR's unbounded expected length.
    pub fn into_walk_store(self, num_vertices: usize, seed: u64) -> WalkStore {
        let target = self.model.expected_length().min(self.model.max_steps());
        WalkStore::from_walks(self.paths, num_vertices, target, seed)
    }
}

struct PendingTicket {
    model: SharedWalkModel,
    walks: Vec<Option<FinishedWalk>>,
    received: usize,
    submitted_at: Instant,
    /// Latest worker-side completion time seen so far.
    last_finish: Option<Instant>,
}

/// Everything guarded by the service's `pending` mutex: the outstanding
/// tickets plus the single-drainer flag of the completion channel.
struct Collector {
    /// Outstanding (not yet fully collected) tickets.
    tickets: HashMap<u64, PendingTicket>,
    /// Whether some [`WalkService::wait`] caller currently owns the drain
    /// role (is blocked in `recv()` on the completion channel). Claiming
    /// the role and parking on the condvar both happen under this mutex,
    /// so a drainer's hand-off can never slip between a waiter's check and
    /// its park — the invariant that lets `wait` use untimed condvar waits
    /// instead of a sleep/poll loop.
    draining: bool,
}

struct RouterState {
    /// Per-shard buffered events awaiting a flush.
    buffers: Vec<Vec<UpdateEvent>>,
    /// Number of flush rounds so far == the epoch assigned to the last
    /// flush. Every flush sends one (possibly empty) batch to every shard,
    /// so shard epochs advance in lock step.
    flushes: u64,
}

/// A vertex-sharded, multi-threaded walk service over the Bingo engine.
///
/// See the crate-level documentation for a quickstart. Internally each
/// shard owns a [`BingoEngine`] built over its contiguous vertex range
/// ([`BingoEngine::build_range`]) behind a `RwLock`, and its inbox of
/// walker and update messages is processed by **resumable tasks on the
/// shared worker pool** (see the module docs) — walker visits sample under
/// the read guard, update batches apply under the write guard, so a walk
/// step can never observe a partially applied ("torn") update, and the
/// per-shard epoch counter totally orders steps against update batches.
/// Idle shard tasks steal forwarded-walker batches from hot shards'
/// inboxes (disable with `BINGO_STEAL=off` or [`ServiceConfig::steal`]);
/// a stolen visit runs against the owning shard's engine through the same
/// epoch-checked read path, so stealing moves CPU work without moving
/// ownership.
///
/// Walks are submitted either as built-in [`WalkSpec`]s
/// ([`WalkService::submit`]) or as arbitrary
/// [`WalkModel`](bingo_walks::WalkModel) trait objects
/// ([`WalkService::submit_model`]). Second-order models (node2vec) are
/// fully supported: when a walker crosses a shard boundary, the owning
/// shard captures a membership snapshot of the previous vertex's adjacency
/// (encoded per [`ServiceConfig::context_encoding`], built at most once per
/// `(vertex, epoch)` and `Arc`-shared across the wave) and forwards it with
/// the cursor, so the receiving shard can answer the model's membership
/// queries without a cross-shard edge lookup.
pub struct WalkService {
    partitioner: Partitioner,
    num_vertices: usize,
    seed: u64,
    coalesce_capacity: usize,
    max_inbox: usize,
    /// The state shard tasks run against, `Arc`-shared with every task
    /// activation in flight on the pool.
    shared: Arc<ServiceShared>,
    counters: Vec<Arc<ShardCounters>>,
    owned_counts: Vec<usize>,
    done_rx: Mutex<Receiver<FinishedWalk>>,
    pending: Mutex<Collector>,
    /// Signalled whenever finished walks are absorbed into `pending` and
    /// whenever the drain role is released, so waiters parked in
    /// [`WalkService::wait`] learn about their ticket completing (or about
    /// their turn to drain) without polling.
    pending_cv: Condvar,
    router: Mutex<RouterState>,
    next_ticket: AtomicU64,
    /// Set once [`WalkService::stop_workers`] has run, disarming the
    /// redundant stop from `Drop` after an explicit `shutdown()`.
    stopped: bool,
    started_at: Instant,
    /// The shared observability handle every layer records into; the
    /// per-shard [`ShardCounters`] are views over its registry.
    telemetry: Telemetry,
    /// `service.submit_ns`: submit call → all walkers enqueued.
    submit_ns: Histogram,
    /// `service.collect_ns`: walk finish → absorbed at the collector.
    collect_ns: Histogram,
    /// `service.ticket.latency_ns`: submit → last walk of the ticket done.
    ticket_latency_ns: Histogram,
    /// `service.update.epoch_lag`: router flushes − slowest shard's epoch,
    /// refreshed on every [`WalkService::stats`] call.
    epoch_lag: Gauge,
}

/// Mirror the thread-pool shim's cumulative profile into `telemetry`'s
/// registry as the `pool.*` counters ([`names::POOL_CALLS`],
/// [`names::POOL_CHUNKS_CLAIMED`], [`names::POOL_WORKER_BUSY_NS`],
/// [`names::POOL_WORKER_IDLE_NS`], [`names::POOL_SCOPE_NS`]) and the
/// persistent-runtime counters ([`names::RUNTIME_POOL_STEALS`],
/// [`names::RUNTIME_POOL_TASKS`], [`names::RUNTIME_POOL_PARK_NS`]).
///
/// The shim's global cells stay authoritative (they are process-wide, not
/// per-service); call this right before snapshotting or dumping the
/// registry so the exposition reflects the latest pool activity. The
/// nanosecond cells only advance while [`rayon::pool_profiling_enabled`]
/// is on — [`WalkService::build_with_telemetry`] enables it whenever the
/// handle is detailed.
pub fn record_pool_profile(telemetry: &Telemetry) {
    let p = rayon::pool_profile();
    telemetry.counter(names::POOL_CALLS).set(p.calls);
    telemetry
        .counter(names::POOL_CHUNKS_CLAIMED)
        .set(p.chunks_claimed);
    telemetry
        .counter(names::POOL_WORKER_BUSY_NS)
        .set(p.worker_busy_ns);
    telemetry
        .counter(names::POOL_WORKER_IDLE_NS)
        .set(p.worker_idle_ns);
    telemetry.counter(names::POOL_SCOPE_NS).set(p.scope_ns);
    telemetry.counter(names::RUNTIME_POOL_STEALS).set(p.steals);
    telemetry.counter(names::RUNTIME_POOL_TASKS).set(p.tasks);
    telemetry
        .counter(names::RUNTIME_POOL_PARK_NS)
        .set(p.park_ns);
}

impl WalkService {
    /// Build a service over a snapshot of `graph`, partitioning the vertex
    /// space into [`ServiceConfig::num_shards`] contiguous shards (uniform,
    /// degree-balanced or visit-weighted per [`ServiceConfig::partition`])
    /// whose work runs as resumable tasks on the shared worker pool.
    ///
    /// Telemetry runs in the zero-added-cost disabled mode (stats still
    /// work — counters are always live); use
    /// [`WalkService::build_with_telemetry`] for latency histograms and
    /// lifecycle tracing.
    pub fn build(graph: &DynamicGraph, config: ServiceConfig) -> Result<Self> {
        Self::build_with_telemetry(graph, config, Telemetry::disabled())
    }

    /// [`WalkService::build`] recording into the given [`Telemetry`]
    /// handle. All per-shard counters register in its metric registry
    /// (labeled `shard="<i>"`); when the handle is detailed, the per-stage
    /// latency histograms (`service.submit_ns`,
    /// `service.shard.step_batch_ns`, `service.shard.inbox_dwell_ns`,
    /// `service.forward.hop_ns`, `service.collect_ns`, …) and sampled
    /// walker lifecycle traces light up too. See the crate-level
    /// "Observability" docs for the full taxonomy.
    pub fn build_with_telemetry(
        graph: &DynamicGraph,
        config: ServiceConfig,
        telemetry: Telemetry,
    ) -> Result<Self> {
        Self::build_with_transport(graph, config, telemetry, Arc::new(LoopbackTransport))
    }

    /// [`WalkService::build_with_telemetry`] with a custom
    /// [`ShardTransport`] carrying the encoded walker frames. Only
    /// meaningful with [`TransportMode::Serialized`] (the in-process mode
    /// never encodes a frame): every cross-shard forward is encoded,
    /// handed to `carrier`, and rebuilt from the bytes it returns — the
    /// hook the two-process demo uses to route forwards through a real
    /// loopback `TcpStream`. A carrier error (or undecodable bytes) falls
    /// back to forwarding the original in-process walker, so no walk is
    /// ever lost to the transport.
    pub fn build_with_transport(
        graph: &DynamicGraph,
        config: ServiceConfig,
        telemetry: Telemetry,
        carrier: Arc<dyn ShardTransport>,
    ) -> Result<Self> {
        if telemetry.is_detailed() {
            // Enable-only: another service (or the user) may already rely
            // on the pool profile, so detailed telemetry never turns the
            // shim's clocks back off.
            rayon::set_pool_profiling(true);
        }
        let num_vertices = graph.num_vertices();
        let num_shards = config.num_shards.max(1);
        let partitioner = match config.partition {
            PartitionStrategy::Uniform => Partitioner::new(num_vertices, num_shards),
            PartitionStrategy::DegreeBalanced => Partitioner::balanced_by_degree(graph, num_shards),
            PartitionStrategy::VisitWeighted => {
                Partitioner::balanced_by_visits(graph, num_shards, config.seed)
            }
        };

        let counters: Vec<Arc<ShardCounters>> = (0..num_shards)
            .map(|shard| Arc::new(ShardCounters::register(&telemetry, shard)))
            .collect();
        // Shard-loop latency histograms are unlabeled (one distribution
        // across shards — per-shard load skew already shows in the busy/
        // utilization counters) and resolved once here; in disabled mode
        // they are no-op handles and never appear in the registry.
        let hists = ShardHists {
            step_batch_ns: telemetry.histogram(names::SERVICE_SHARD_STEP_BATCH_NS),
            inbox_dwell_ns: telemetry.histogram(names::SERVICE_SHARD_INBOX_DWELL_NS),
            update_apply_ns: telemetry.histogram(names::SERVICE_SHARD_UPDATE_APPLY_NS),
            forward_hop_ns: telemetry.histogram(names::SERVICE_FORWARD_HOP_NS),
        };
        let (done_tx, done_rx) = channel::<FinishedWalk>();

        // Shard tasks run on the process-wide worker pool: make sure it
        // has at least one parked worker per shard, so every shard can
        // make progress even when all of them are hot at once (and so
        // shutdown can't deadlock behind a task that never gets a slot).
        rayon::ensure_pool_workers(num_shards);

        let mut owned_counts = Vec::with_capacity(num_shards);
        let mut shards = Vec::with_capacity(num_shards);
        for shard_id in 0..num_shards {
            let (start, end) = partitioner.range(shard_id);
            owned_counts.push(end - start);
            let mut engine = BingoEngine::build_range(graph, start..end, config.engine)?;
            // Install the hot-hub fingerprint set while we still hold the
            // engine exclusively: walkers capture forwarded context through
            // the shared read path, which can serve but not build it.
            engine.warm_context();
            shards.push(ShardState {
                inbox: Mutex::new_named(VecDeque::new(), "service.shard_inbox"),
                sched: AtomicU8::new(SCHED_IDLE),
                terminated: AtomicBool::new(false),
                engine: RwLock::new_named(engine, "service.shard_engine"),
                context_cache: Mutex::new_named(HashMap::new(), "service.shard_ctx_cache"),
                rx_cache: Mutex::new_named(HashMap::new(), "service.shard_rx_cache"),
            });
        }
        let shared = Arc::new(ServiceShared {
            shards,
            partitioner: partitioner.clone(),
            counters: counters.clone(),
            done_tx,
            record_epochs: config.record_epochs,
            context_encoding: config.context_encoding,
            steal: resolve_steal(&config),
            serialized: config.transport == TransportMode::Serialized,
            carrier,
            scoped_invalidation: config.engine.scoped_context_invalidation,
            models: Mutex::new_named(HashMap::new(), "service.models"),
            telemetry: telemetry.clone(),
            hists,
            termination: Mutex::new_named(0, "service.termination"),
            termination_cv: Condvar::new(),
        });

        Ok(WalkService {
            partitioner,
            num_vertices,
            seed: config.seed,
            coalesce_capacity: config.coalesce_capacity.max(1),
            max_inbox: config.max_inbox,
            shared,
            counters,
            owned_counts,
            done_rx: Mutex::new_named(done_rx, "service.done_rx"),
            pending: Mutex::new_named(
                Collector {
                    tickets: HashMap::new(),
                    draining: false,
                },
                "service.pending",
            ),
            pending_cv: Condvar::new(),
            router: Mutex::new_named(
                RouterState {
                    buffers: vec![Vec::new(); num_shards],
                    flushes: 0,
                },
                "service.router",
            ),
            next_ticket: AtomicU64::new(1),
            stopped: false,
            // lint:allow(determinism): uptime epoch for stats/latency
            // reporting only; walk output never observes it.
            started_at: Instant::now(),
            submit_ns: telemetry.histogram(names::SERVICE_SUBMIT_NS),
            collect_ns: telemetry.histogram(names::SERVICE_COLLECT_NS),
            ticket_latency_ns: telemetry.histogram(names::SERVICE_TICKET_LATENCY_NS),
            epoch_lag: telemetry.gauge(names::SERVICE_UPDATE_EPOCH_LAG),
            telemetry,
        })
    }

    /// The observability handle this service records into. Clone it into
    /// co-located layers (the gateway does) so the whole stack shares one
    /// metric registry and one trace ring.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of shards (scheduled as tasks on the shared worker pool).
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Number of vertices in the serviced graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The vertex partitioner (shard = `partitioner().owner(v)`).
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner.clone()
    }

    /// Submit one walk per start vertex and return a ticket for collecting
    /// the results with [`WalkService::wait`].
    ///
    /// Walkers are fanned out to the shards owning their start vertices and
    /// hop between shards as the walk crosses ownership boundaries. Updates
    /// ingested concurrently become visible between steps, never within
    /// one. All built-in specs are servable, including `Node2Vec`: its
    /// second-order membership queries are answered from the carried
    /// adjacency fingerprint captured at forward time.
    pub fn submit(&self, spec: WalkSpec, starts: &[VertexId]) -> Result<WalkTicket> {
        self.submit_model(spec.to_model(), starts)
    }

    /// Submit one walk per start vertex for an arbitrary
    /// [`WalkModel`](bingo_walks::WalkModel).
    pub fn submit_model(&self, model: SharedWalkModel, starts: &[VertexId]) -> Result<WalkTicket> {
        self.submit_inner(model, starts, None)
    }

    /// [`WalkService::submit_model`] with a per-submission seed overriding
    /// [`ServiceConfig::seed`] (used by the `WalkClient` facade so local
    /// and sharded requests share one seeding knob).
    pub fn submit_model_seeded(
        &self,
        model: SharedWalkModel,
        starts: &[VertexId],
        seed: u64,
    ) -> Result<WalkTicket> {
        self.submit_inner(model, starts, Some(seed))
    }

    fn submit_inner(
        &self,
        model: SharedWalkModel,
        starts: &[VertexId],
        seed: Option<u64>,
    ) -> Result<WalkTicket> {
        if starts.is_empty() {
            return Err(ServiceError::EmptySubmission);
        }
        for &s in starts {
            if (s as usize) >= self.num_vertices {
                return Err(ServiceError::VertexOutOfRange {
                    vertex: s,
                    num_vertices: self.num_vertices,
                });
            }
        }
        if self.max_inbox > 0 {
            // Admission control: reject the whole submission up front when
            // any target shard cannot absorb its share. The check is a
            // racy snapshot — concurrent submitters can overshoot by one
            // batch — but a bound enforced at admission keeps inboxes from
            // growing without limit under sustained overload.
            let mut planned = vec![0usize; self.num_shards()];
            for &s in starts {
                planned[self.partitioner.owner(s)] += 1;
            }
            // A shard share larger than the bound can never be admitted, no
            // matter how the queues drain — report that first (and as
            // non-retryable) even when an earlier shard is merely
            // backlogged, so callers don't burn a retry budget on a batch
            // that must be split instead.
            if let Some((shard, _)) = planned
                .iter()
                .enumerate()
                .find(|&(_, &extra)| extra > self.max_inbox)
            {
                let queued = self.counters[shard].queue_depth().max(0) as usize;
                self.counters[shard].saturated_rejections.inc();
                self.telemetry
                    .flight()
                    .record(FlightEventKind::SaturatedBounce {
                        shard: shard as u64,
                        depth: queued as u64,
                    });
                return Err(ServiceError::Saturated {
                    shard,
                    queued,
                    capacity: self.max_inbox,
                    retryable: false,
                });
            }
            for (shard, &extra) in planned.iter().enumerate() {
                if extra == 0 {
                    continue;
                }
                let queued = self.counters[shard].queue_depth().max(0) as usize;
                if queued + extra > self.max_inbox {
                    self.counters[shard].saturated_rejections.inc();
                    self.telemetry
                        .flight()
                        .record(FlightEventKind::SaturatedBounce {
                            shard: shard as u64,
                            depth: queued as u64,
                        });
                    return Err(ServiceError::Saturated {
                        shard,
                        queued,
                        capacity: self.max_inbox,
                        retryable: true,
                    });
                }
            }
        }

        // relaxed-ok: ticket-id allocator; RMW atomicity alone guarantees
        // unique ids, and the ticket is published via the pending mutex.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let base_seed = seed.unwrap_or(self.seed);
        self.pending.lock().tickets.insert(
            ticket,
            PendingTicket {
                model: model.clone(),
                walks: (0..starts.len()).map(|_| None).collect(),
                received: 0,
                // lint:allow(determinism): latency stamp feeding the
                // ticket-latency histogram (telemetry only).
                submitted_at: Instant::now(),
                last_finish: None,
            },
        );
        // Register the model for the serialized forward path (wire frames
        // carry the path, not the model); dropped when the ticket is
        // collected. Same lifecycle as the pending entry.
        self.shared.models.lock().insert(ticket, model.clone());
        // One stamp for the whole fanout: every walker of this submission
        // was enqueued "now" for dwell purposes, and disabled telemetry
        // pays zero clock reads (`timer()` returns `None` without one).
        let enqueued_at = self.telemetry.timer();
        for (index, &start) in starts.iter().enumerate() {
            let rng = Pcg64::seed_from_u64(walker_seed(base_seed, ticket, index as u64));
            let owner = self.partitioner.owner(start);
            let sampled = self.telemetry.is_sampled(ticket, index as u64);
            if sampled {
                self.telemetry.trace(
                    ticket,
                    index as u32,
                    TraceStage::Submit {
                        shard: owner as u32,
                        start: u64::from(start),
                    },
                );
            }
            let walker = Box::new(Walker {
                ticket,
                index: index as u32,
                cursor: WalkCursor::with_model(model.clone(), start),
                rng,
                hops: 0,
                trace: Vec::new(),
                contexts: Vec::new(),
                context_misses: 0,
                sampled,
                sent_at: enqueued_at,
            });
            self.shared.push(owner, ShardMsg::Walker(walker));
        }
        if let Some(started) = enqueued_at {
            self.submit_ns.record_duration(started.elapsed());
        }
        Ok(WalkTicket(ticket))
    }

    /// Submit one walker per vertex (the paper's default configuration).
    ///
    /// On a zero-vertex graph "one walker per vertex" is a perfectly valid
    /// request for nothing: it returns an immediately-complete ticket whose
    /// results hold no walks, rather than an [`ServiceError::EmptySubmission`]
    /// error (which is reserved for explicitly empty start lists).
    pub fn submit_all_vertices(&self, spec: WalkSpec) -> Result<WalkTicket> {
        if self.num_vertices == 0 {
            // relaxed-ok: ticket-id allocator (see submit_inner).
            let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
            self.pending.lock().tickets.insert(
                ticket,
                PendingTicket {
                    model: spec.to_model(),
                    walks: Vec::new(),
                    received: 0,
                    // lint:allow(determinism): latency stamp (telemetry).
                    submitted_at: Instant::now(),
                    last_finish: None,
                },
            );
            return Ok(WalkTicket(ticket));
        }
        let starts: Vec<VertexId> = (0..self.num_vertices as VertexId).collect();
        self.submit(spec, &starts)
    }

    /// Extract `ticket`'s results if every one of its walks has finished.
    /// The caller must hold the `pending` lock.
    fn take_if_complete(
        &self,
        pending: &mut HashMap<u64, PendingTicket>,
        ticket: WalkTicket,
    ) -> Option<TicketResults> {
        let entry = pending
            .get(&ticket.0)
            .expect("unknown or already-collected ticket");
        if entry.received != entry.walks.len() {
            return None;
        }
        let entry = pending.remove(&ticket.0).expect("entry present");
        // The ticket is done: no more forwards can need its model. (Lock
        // order: pending → models; `models` nests innermost everywhere.)
        self.shared.models.lock().remove(&ticket.0);
        let latency = entry
            .last_finish
            .map(|t| t.duration_since(entry.submitted_at))
            .unwrap_or_default();
        self.ticket_latency_ns.record_duration(latency);
        let mut paths = Vec::with_capacity(entry.walks.len());
        let mut hops = Vec::with_capacity(entry.walks.len());
        let mut traces = Vec::with_capacity(entry.walks.len());
        let mut contexts = Vec::with_capacity(entry.walks.len());
        for finished in entry.walks.into_iter() {
            let f = finished.expect("all walks received");
            paths.push(f.path);
            hops.push(f.hops);
            traces.push(f.trace);
            contexts.push(f.contexts);
        }
        Some(TicketResults {
            ticket,
            model: entry.model,
            paths,
            hops,
            traces,
            contexts,
            latency,
        })
    }

    /// Absorb any already-finished walks without blocking, then return
    /// `ticket`'s results if it is complete. Never blocks; use
    /// [`WalkService::wait`] to park until completion.
    pub fn try_wait(&self, ticket: WalkTicket) -> Option<TicketResults> {
        {
            let mut collector = self.pending.lock();
            if let Some(results) = self.take_if_complete(&mut collector.tickets, ticket) {
                return Some(results);
            }
        }
        if let Some(rx) = self.done_rx.try_lock() {
            let mut collector = self.pending.lock();
            while let Ok(finished) = rx.try_recv() {
                self.absorb(&mut collector.tickets, finished);
            }
            let results = self.take_if_complete(&mut collector.tickets, ticket);
            drop(collector);
            self.pending_cv.notify_all();
            return results;
        }
        None
    }

    /// Block until every walk of `ticket` has finished and return the
    /// collected results (walks are deposited in submission order).
    ///
    /// Exactly one waiter at a time owns the **drain role**: it parks in a
    /// blocking `recv()` on the completion channel (woken by the shard
    /// workers themselves) and absorbs finished walks for *every* ticket.
    /// All other waiters park on a condvar that the drainer signals after
    /// each absorb and when it hands the role off — so no thread ever
    /// sleep-polls, and a blocked waiter costs zero CPU until a walk of
    /// interest actually finishes.
    pub fn wait(&self, ticket: WalkTicket) -> TicketResults {
        let mut collector = self.pending.lock();
        loop {
            if let Some(results) = self.take_if_complete(&mut collector.tickets, ticket) {
                return results;
            }
            if !collector.draining {
                collector.draining = true;
                drop(collector);
                return self.drain_until_complete(ticket);
            }
            // Another waiter is draining. Parking happens under the same
            // mutex the drainer needs for absorbs and for releasing the
            // role, so its notify can never race past us: we either see
            // the new state on re-check or we are already parked when the
            // signal fires.
            collector = self.pending_cv.wait(collector);
        }
    }

    /// The drain role of [`WalkService::wait`]: block on the completion
    /// channel, absorb every finished walk, wake parked waiters, and return
    /// once `ticket` is complete (releasing the role).
    fn drain_until_complete(&self, ticket: WalkTicket) -> TicketResults {
        // If absorbing panics (the debug capture-fault assert), this guard
        // still releases the drain role and wakes the parked waiters so a
        // failing test fails loudly instead of hanging them forever.
        struct DrainGuard<'a>(&'a WalkService);
        impl Drop for DrainGuard<'_> {
            fn drop(&mut self) {
                self.0.pending.lock().draining = false;
                self.0.pending_cv.notify_all();
            }
        }
        let guard = DrainGuard(self);
        let rx = self.done_rx.lock();
        // Re-check completeness now that the channel lock is held: between
        // claiming the drain role and acquiring `done_rx`, a non-blocking
        // `try_wait` (e.g. the gateway dispatcher's completion poll) may
        // have drained the channel and absorbed this ticket's final walk —
        // blocking in `recv()` then would hang forever, since no further
        // send may ever come. Holding the channel lock closes the window:
        // every later absorb goes through this thread.
        {
            let mut collector = self.pending.lock();
            if let Some(results) = self.take_if_complete(&mut collector.tickets, ticket) {
                drop(collector);
                drop(guard);
                return results;
            }
        }
        loop {
            // Parks the thread until a shard worker finishes a walk; only
            // a worker-side send wakes it (no timeout, no polling).
            // lint:allow(lock-discipline): the single-drainer design holds
            // the `done_rx` channel lock across this blocking recv ON
            // PURPOSE — exactly one waiter may drain at a time, and the
            // hand-off protocol (claim under `pending`, release via
            // DrainGuard) guarantees no other thread can need `done_rx`
            // while we park here; see the method docs above.
            let finished = rx.recv().expect("shard workers alive");
            let mut collector = self.pending.lock();
            self.absorb(&mut collector.tickets, finished);
            while let Ok(more) = rx.try_recv() {
                self.absorb(&mut collector.tickets, more);
            }
            let done = self.take_if_complete(&mut collector.tickets, ticket);
            drop(collector);
            self.pending_cv.notify_all();
            if let Some(results) = done {
                drop(guard); // release the drain role, wake a successor
                return results;
            }
        }
    }

    fn absorb(&self, pending: &mut HashMap<u64, PendingTicket>, finished: FinishedWalk) {
        // Loud in debug builds (and deliberately on the *collector* thread:
        // a worker-thread panic would strand the walk and hang `wait()`
        // instead of failing the test): a capture fault means a forwarding
        // shard failed to attach second-order context and the membership
        // answer silently degraded. Release builds keep serving; the fault
        // stays visible as `ServiceStats::total_context_misses`.
        debug_assert!(
            finished.context_misses == 0,
            "walk {}#{} answered {} second-order membership queries without              carried context on a non-owning shard",
            finished.ticket,
            finished.index,
            finished.context_misses,
        );
        if self.collect_ns.is_enabled() {
            // Finish-to-absorb lag: how long the completed walk sat on the
            // completion channel before a drainer picked it up.
            self.collect_ns
                .record_duration(finished.finished_at.elapsed());
        }
        if let Some(entry) = pending.get_mut(&finished.ticket) {
            if finished.sampled {
                let latency = finished
                    .finished_at
                    .saturating_duration_since(entry.submitted_at);
                self.telemetry.trace(
                    finished.ticket,
                    finished.index,
                    TraceStage::Collect {
                        path_len: finished.path.len() as u32,
                        hops: finished.hops,
                        latency_ns: u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX),
                    },
                );
            }
            let slot = finished.index as usize;
            if entry.walks[slot].is_none() {
                entry.received += 1;
            }
            entry.last_finish = Some(
                entry
                    .last_finish
                    .map_or(finished.finished_at, |t| t.max(finished.finished_at)),
            );
            entry.walks[slot] = Some(finished);
        }
    }

    /// Route a batch of update events to their owning shards and flush
    /// immediately: every shard receives its slice (empty slices included)
    /// as one new epoch. Returns the receipt carrying that epoch.
    pub fn ingest(&self, batch: &UpdateBatch) -> IngestReceipt {
        let splits = batch.split_by_owner(self.num_shards(), |v| self.partitioner.owner(v));
        let mut router = self.router.lock();
        for (buffer, split) in router.buffers.iter_mut().zip(splits) {
            buffer.extend(split.into_events());
        }
        let epoch = self.flush_locked(&mut router);
        IngestReceipt {
            epoch,
            events_routed: batch.len(),
        }
    }

    /// Stream a single event into the router's per-shard buffers. Buffers
    /// are coalesced until one of them reaches
    /// [`ServiceConfig::coalesce_capacity`], then all are flushed as one
    /// epoch. Returns a receipt only when a flush happened.
    pub fn ingest_event(&self, event: UpdateEvent) -> Option<IngestReceipt> {
        let mut router = self.router.lock();
        let owner = self.partitioner.owner(event.src());
        router.buffers[owner].push(event);
        if router.buffers[owner].len() >= self.coalesce_capacity {
            let epoch = self.flush_locked(&mut router);
            Some(IngestReceipt {
                epoch,
                events_routed: 1,
            })
        } else {
            None
        }
    }

    /// Flush all buffered streamed events to the shards as one epoch.
    pub fn flush(&self) -> IngestReceipt {
        let mut router = self.router.lock();
        let epoch = self.flush_locked(&mut router);
        IngestReceipt {
            epoch,
            events_routed: 0,
        }
    }

    fn flush_locked(&self, router: &mut RouterState) -> u64 {
        router.flushes += 1;
        let flushed_at = self.telemetry.timer();
        for (shard, buffer) in router.buffers.iter_mut().enumerate() {
            let events = std::mem::take(buffer);
            self.shared.push(
                shard,
                ShardMsg::Update(UpdateBatch::new(events), flushed_at),
            );
        }
        router.flushes
    }

    /// Block until every shard has applied all updates up to and including
    /// `receipt`'s epoch, i.e. the ingested events are visible to every new
    /// walk step.
    pub fn sync(&self, receipt: IngestReceipt) {
        let mut spins = 0u32;
        loop {
            let reached = self
                .counters
                .iter()
                .all(|c| c.epoch.get_acquire() >= receipt.epoch);
            if reached {
                return;
            }
            // Brief spin for the common fast case, then back off to sleeps
            // so large batch applies don't compete with a busy-polling
            // waiter for a core.
            spins += 1;
            if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(
                    100u64.saturating_mul(u64::from((spins - 64).min(10) + 1)),
                ));
            }
        }
    }

    /// The configured per-shard inbox bound (`0` = unbounded).
    pub fn max_inbox(&self) -> usize {
        self.max_inbox
    }

    /// A cheap point-in-time view of the admission-relevant state: current
    /// per-shard inbox occupancy, the configured bound, and the cumulative
    /// saturation-rejection count. This is the sampling hook an adaptive
    /// admission controller (see `bingo-gateway`) reads every tick — three
    /// relaxed atomic loads per shard, no allocation beyond the depth
    /// vector, unlike the full [`WalkService::stats`] snapshot.
    pub fn admission_snapshot(&self) -> AdmissionSnapshot {
        AdmissionSnapshot {
            queue_depths: self
                .counters
                .iter()
                .map(|c| c.queue_depth().max(0) as usize)
                .collect(),
            max_inbox: self.max_inbox,
            saturated_rejections: self
                .counters
                .iter()
                .map(|c| c.saturated_rejections.get())
                .sum(),
        }
    }

    /// Point-in-time occupancy of the context snapshot caches:
    /// `(sender_entries, receiver_entries)` summed across shards — the
    /// sender-side encode caches and the receiver-side handle-negotiation
    /// caches. Both are one-slot-per-key maps evicted by the structural
    /// updates that touch them, so occupancy is bounded by the set of
    /// vertices that actually forwarded context, **not** by how many
    /// epochs have passed (the regression the bounded-occupancy test
    /// pins).
    pub fn snapshot_cache_occupancy(&self) -> (usize, usize) {
        let mut sender = 0;
        let mut receiver = 0;
        for shard in &self.shared.shards {
            // Taken with no other lock held (each released before the
            // next); the engine → cache order only constrains nesting.
            sender += shard.context_cache.lock().len();
            receiver += shard.rx_cache.lock().len();
        }
        (sender, receiver)
    }

    /// Snapshot of per-shard throughput/occupancy counters.
    pub fn stats(&self) -> ServiceStats {
        // Refresh the update-epoch lag gauge: how many flushed epochs the
        // slowest shard has not yet applied (0 = fully caught up).
        let flushes = self.router.lock().flushes;
        let min_epoch = self
            .counters
            .iter()
            .map(|c| c.epoch.get_acquire())
            .min()
            .unwrap_or(0);
        self.epoch_lag.set(flushes.saturating_sub(min_epoch) as i64);
        ServiceStats {
            per_shard: self
                .counters
                .iter()
                .enumerate()
                .map(|(i, c)| c.snapshot(i, self.owned_counts[i]))
                .collect(),
            uptime: self.started_at.elapsed(),
        }
    }

    /// Stop all shard tasks and return the final statistics. Outstanding
    /// tickets should be waited on first; walkers still in flight when the
    /// shutdown message overtakes them are dropped.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop_workers();
        let stats = self.stats();
        // The `stopped` flag disarms the redundant second stop in Drop.
        stats
    }

    fn stop_workers(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        let n = self.shared.shards.len();
        for shard in 0..n {
            self.shared.push(shard, ShardMsg::Shutdown);
        }
        // Park until every shard task has processed its Shutdown. The pool
        // workers are daemon threads shared across services, so there is
        // no JoinHandle to join — termination is a counted condvar.
        let mut done = self.shared.termination.lock();
        while *done < n {
            done = self.shared.termination_cv.wait(done);
        }
    }
}

impl Drop for WalkService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// A point-in-time view of the state admission decisions depend on — see
/// [`WalkService::admission_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Messages currently queued on each shard's inbox (clamped at 0).
    pub queue_depths: Vec<usize>,
    /// The configured [`ServiceConfig::max_inbox`] bound (`0` = unbounded).
    pub max_inbox: usize,
    /// Cumulative submissions rejected with [`ServiceError::Saturated`]
    /// across all shards since the service started.
    pub saturated_rejections: u64,
}

impl AdmissionSnapshot {
    /// Occupancy of the fullest inbox as a fraction of the bound, in
    /// `[0, 1]`-ish (transient overshoot past 1.0 is possible because
    /// forwarded walkers and update batches bypass admission). Returns 0
    /// when inboxes are unbounded — there is no pressure signal to read.
    pub fn peak_occupancy(&self) -> f64 {
        if self.max_inbox == 0 {
            return 0.0;
        }
        let peak = self.queue_depths.iter().copied().max().unwrap_or(0);
        peak as f64 / self.max_inbox as f64
    }
}

/// The shard-loop latency histograms, resolved once at service build and
/// cloned into every worker. No-op handles in disabled telemetry.
#[derive(Clone)]
struct ShardHists {
    /// `service.shard.step_batch_ns`: one walker visit (arrival →
    /// finish/forward).
    step_batch_ns: Histogram,
    /// `service.shard.inbox_dwell_ns`: message enqueue → dequeue.
    inbox_dwell_ns: Histogram,
    /// `service.shard.update_apply_ns`: one update-batch application.
    update_apply_ns: Histogram,
    /// `service.forward.hop_ns`: forward send → dequeue at the peer.
    forward_hop_ns: Histogram,
}

/// One shard's task-visible state: inbox, scheduling latch, engine and
/// forwarded-context cache. Everything a peer needs for stealing lives
/// here behind its own lock — and the engine is only ever reached through
/// `engine`, never through the inbox, so a thief can drain a queue without
/// touching sampling state.
struct ShardState {
    /// FIFO message queue. Pushers append under the lock; the shard's own
    /// task drains bounded batches from the front; thieves pop leading
    /// `Walker` messages only, preserving the shard's walker/update order.
    inbox: Mutex<VecDeque<ShardMsg>>,
    /// Two-state scheduling latch ([`SCHED_IDLE`]/[`SCHED_SCHEDULED`]):
    /// makes "at most one activation in flight per shard" a CAS and makes
    /// wakeups lost-wakeup-safe (see `run_shard_task`'s idle transition).
    sched: AtomicU8,
    /// Set once this shard has processed [`ShardMsg::Shutdown`]. Pushes to
    /// a terminated shard are dropped, like sends on a closed channel.
    terminated: AtomicBool,
    /// The shard's engine. Walker visits — the owner's or a thief's —
    /// sample under the read guard; update batches apply under the write
    /// guard, so no step ever observes a torn update.
    engine: RwLock<BingoEngine>,
    /// Sender-side encode cache: snapshots captured on this shard, stamped
    /// with their capture epoch and reused by every walker forwarded in
    /// the same wave. Entry presence implies validity — structural update
    /// batches evict exactly the vertices they touched (scoped mode) or
    /// clear the map (wholesale baseline), while bias-only batches and
    /// empty epoch ticks keep it warm (fingerprints are membership sets,
    /// which reweights never alter). One slot per vertex, so occupancy is
    /// bounded by the shard's forwarded-vertex set no matter how many
    /// epochs pass. Locked only while the engine lock is already held
    /// (order: engine → ctx_cache).
    context_cache: Mutex<HashMap<VertexId, (u64, CarriedContext)>>,
    /// Receiver-side snapshot cache for handle negotiation, keyed by
    /// `(owner_shard, vertex)` and holding the snapshot's capture epoch:
    /// a forward whose `(vertex, epoch)` is already here ships a true
    /// [`CONTEXT_HANDLE_BYTES`] handle; otherwise the body ships and
    /// seeds this cache. One slot per key (newer captures overwrite), so
    /// occupancy is bounded like `context_cache`; the owning shard's
    /// structural updates evict its touched keys from every peer's cache.
    /// Locked only while an engine lock is already held (order: engine →
    /// rx_cache), and never together with `context_cache`.
    rx_cache: Mutex<HashMap<(u32, VertexId), (u64, CarriedContext)>>,
}

/// What a walker visit ended with — decided under the engine read guard,
/// acted on after it drops, so a forward or finish never holds an engine
/// lock while touching inboxes, the pool injector, or the done channel.
enum VisitOutcome {
    /// The walk completed (or dead-ended) on this shard.
    Finished,
    /// The walk crossed into shard `to`'s range and must be forwarded;
    /// `context` describes the capture/negotiation done under the engine
    /// guard (`None` when the model carries no context). Carrying it out
    /// of the guarded section lets the forward-hop trace be recorded
    /// *after* the visit's step-batch span, preserving lifecycle order,
    /// and with no engine lock held — and gives the serialized forward
    /// path the negotiated handle for the wire frame.
    Forward {
        to: usize,
        context: Option<ForwardNegotiation>,
    },
}

/// What [`ServiceShared::attach_forward_context`] decided for one
/// forwarded snapshot, carried out of the engine-guarded section.
struct ForwardNegotiation {
    /// The *sender's* encode cache already held the snapshot.
    cache_hit: bool,
    /// Bytes billed — and, in serialized mode, actually framed: the body
    /// on a receiver miss, [`CONTEXT_HANDLE_BYTES`] on a receiver hit.
    bytes_sent: usize,
    /// `Some` when the receiver held the `(vertex, epoch)` snapshot: the
    /// wire frame ships this handle instead of the body.
    handle: Option<ContextHandle>,
}

/// The state shared by the service handle and every shard-task activation
/// in flight on the worker pool.
struct ServiceShared {
    shards: Vec<ShardState>,
    partitioner: Partitioner,
    counters: Vec<Arc<ShardCounters>>,
    done_tx: Sender<FinishedWalk>,
    record_epochs: bool,
    /// Wire encoding for captured membership snapshots.
    context_encoding: ContextEncoding,
    /// Whether idle shard tasks steal walker batches (resolved once at
    /// build from [`ServiceConfig::steal`] / `BINGO_STEAL`).
    steal: bool,
    /// Whether forwarded walkers round-trip through the wire format
    /// ([`TransportMode::Serialized`]).
    serialized: bool,
    /// The frame carrier serialized forwards go through
    /// ([`LoopbackTransport`] unless
    /// [`WalkService::build_with_transport`] plugged a real one).
    carrier: Arc<dyn ShardTransport>,
    /// Whether snapshot-cache eviction is scoped to the vertices a
    /// structural batch touched (mirrors
    /// [`BingoConfig::scoped_context_invalidation`], which the engines
    /// apply to their hot-hub sets — this flag applies the same policy to
    /// the service-level encode and receiver caches).
    scoped_invalidation: bool,
    /// Walk models of outstanding tickets, so the serialized forward path
    /// can rebuild a cursor from a decoded frame (frames carry the path,
    /// not the model). Registered at submit, removed at collection.
    models: Mutex<HashMap<u64, SharedWalkModel>>,
    telemetry: Telemetry,
    hists: ShardHists,
    /// Number of shards that have processed their Shutdown message; the
    /// condvar wakes `stop_workers` when it reaches `shards.len()`.
    termination: Mutex<usize>,
    termination_cv: Condvar,
}

impl ServiceShared {
    /// Enqueue a message on `shard`'s inbox and guarantee an activation
    /// will process it. When the enqueue leaves a deep backlog, idle peers
    /// are woken too so they can steal from it.
    fn push(self: &Arc<Self>, shard: usize, msg: ShardMsg) {
        if self.shards[shard].terminated.load(Ordering::Acquire) {
            // Shutdown raced this send: drop the message, matching the old
            // closed-channel semantics (in-flight walkers are abandoned).
            return;
        }
        let depth;
        {
            let mut inbox = self.shards[shard].inbox.lock();
            inbox.push_back(msg);
            depth = inbox.len();
        }
        self.counters[shard].on_enqueue();
        self.schedule(shard);
        if self.steal && depth >= STEAL_THRESHOLD {
            self.wake_helpers(shard);
        }
    }

    /// Make sure an activation is queued for `shard`: CAS the latch from
    /// IDLE to SCHEDULED and spawn one on the pool. A failed CAS means an
    /// activation is already in flight and will re-check the inbox before
    /// the shard goes idle — no message can be stranded.
    fn schedule(self: &Arc<Self>, shard: usize) {
        if self.shards[shard].terminated.load(Ordering::Acquire) {
            return;
        }
        if self.shards[shard]
            .sched
            .compare_exchange(
                SCHED_IDLE,
                SCHED_SCHEDULED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            self.telemetry
                .flight()
                .record(FlightEventKind::ShardUnpark {
                    shard: shard as u64,
                });
            let shared = Arc::clone(self);
            rayon::spawn(move || shared.run_shard_task(shard));
        }
    }

    /// Help trigger: schedule every idle peer of a hot shard. A woken peer
    /// with an empty inbox of its own goes straight to the steal path; the
    /// CAS in `schedule` makes this free for peers already running.
    fn wake_helpers(self: &Arc<Self>, hot: usize) {
        for peer in 0..self.shards.len() {
            if peer != hot {
                self.schedule(peer);
            }
        }
    }

    /// One shard-task activation: drain a bounded batch from the inbox
    /// (under the lock), process it (outside the lock), then either
    /// re-enqueue, steal, or go idle with a lost-wakeup-safe recheck.
    fn run_shard_task(self: Arc<Self>, shard_id: usize) {
        let me = &self.shards[shard_id];
        let mut batch = Vec::with_capacity(TASK_BATCH);
        {
            let mut inbox = me.inbox.lock();
            while batch.len() < TASK_BATCH {
                match inbox.pop_front() {
                    Some(msg) => batch.push(msg),
                    None => break,
                }
            }
        }
        for msg in batch {
            self.counters[shard_id].on_dequeue();
            // This stamp predates telemetry (it feeds `busy_nanos`), so
            // detailed mode reuses it for dwell/step-batch/apply timing
            // without adding clock reads to the disabled hot path.
            // lint:allow(determinism): worker busy-time stamp; stats only,
            // never influences sampling or walk output.
            let started = Instant::now();
            match msg {
                ShardMsg::Update(update, flushed_at) => {
                    self.record_dwell(flushed_at, started, false);
                    self.apply_update(shard_id, update);
                    if self.hists.update_apply_ns.is_enabled() {
                        self.hists
                            .update_apply_ns
                            .record_duration(started.elapsed());
                    }
                }
                ShardMsg::Walker(walker) => self.drive_walker(shard_id, shard_id, walker, started),
                ShardMsg::Shutdown => {
                    // Messages still queued (or drained into this batch)
                    // are dropped, matching the old channel semantics.
                    self.mark_terminated(shard_id);
                    return;
                }
            }
            self.counters[shard_id]
                .busy_nanos
                .add(started.elapsed().as_nanos() as u64);
        }
        // Inbox still hot: keep the SCHEDULED claim, yield this worker
        // slot, and continue on a fresh activation so one shard never
        // monopolizes a pool worker.
        if !me.inbox.lock().is_empty() {
            let shared = Arc::clone(&self);
            rayon::spawn(move || shared.run_shard_task(shard_id));
            return;
        }
        if self.steal && self.try_steal(shard_id) {
            // Stolen visits may have forwarded walkers back to this shard
            // (and the victim may still be hot): look again.
            let shared = Arc::clone(&self);
            rayon::spawn(move || shared.run_shard_task(shard_id));
            return;
        }
        // Idle transition, lost-wakeup-safe: publish IDLE *first*, then
        // re-check the inbox. A concurrent push either sees IDLE (its CAS
        // schedules a fresh activation) or enqueued before our store and
        // is caught by this recheck.
        me.sched.store(SCHED_IDLE, Ordering::Release);
        self.telemetry.flight().record(FlightEventKind::ShardPark {
            shard: shard_id as u64,
        });
        if !me.inbox.lock().is_empty() {
            self.schedule(shard_id);
        }
    }

    /// Steal at the queue, never at the engine: drain up to
    /// [`STEAL_BATCH`] *leading walker messages* from the deepest
    /// backlogged peer and execute them here — against the victim's
    /// engine, through the same epoch-checked read path the owner uses.
    /// Stopping at the first non-walker message preserves the victim's
    /// walker/update order, so a stolen visit observes exactly the epoch
    /// the owner's task would have shown it. Returns whether anything was
    /// stolen.
    fn try_steal(self: &Arc<Self>, thief: usize) -> bool {
        // Pick the deepest backlog at or past the threshold — depth gauges
        // only, no peer locks taken during selection.
        let mut victim: Option<(usize, usize)> = None;
        for (peer, counters) in self.counters.iter().enumerate() {
            if peer == thief {
                continue;
            }
            let depth = counters.queue_depth().max(0) as usize;
            if depth >= STEAL_THRESHOLD && victim.is_none_or(|(_, best)| depth > best) {
                victim = Some((peer, depth));
            }
        }
        let Some((victim, _)) = victim else {
            return false;
        };
        let mut stolen = Vec::new();
        {
            let mut inbox = self.shards[victim].inbox.lock();
            while stolen.len() < STEAL_BATCH && matches!(inbox.front(), Some(ShardMsg::Walker(_))) {
                match inbox.pop_front() {
                    Some(ShardMsg::Walker(walker)) => stolen.push(walker),
                    _ => unreachable!("front was just matched as a walker"),
                }
            }
            // The inbox guard drops here, BEFORE any engine lock is taken:
            // holding it across the visit would deadlock against the
            // victim's own task (engine acquired while inbox wanted).
        }
        if stolen.is_empty() {
            return false;
        }
        let c = &self.counters[thief];
        c.stolen_batches.inc();
        c.stolen_walkers.add(stolen.len() as u64);
        self.telemetry
            .flight()
            .record(FlightEventKind::StealExecuted {
                thief: thief as u64,
                victim: victim as u64,
                walkers: stolen.len() as u64,
            });
        for walker in stolen {
            // Queue-depth accounting stays with the victim (its inbox
            // shrank); execution time is billed to the thief.
            self.counters[victim].on_dequeue();
            // lint:allow(determinism): busy-time stamp; stats only.
            let started = Instant::now();
            self.drive_walker(thief, victim, walker, started);
            self.counters[thief]
                .busy_nanos
                .add(started.elapsed().as_nanos() as u64);
        }
        true
    }

    /// Count this shard as terminated and wake `stop_workers`.
    fn mark_terminated(&self, shard_id: usize) {
        self.shards[shard_id]
            .terminated
            .store(true, Ordering::Release);
        let mut done = self.termination.lock();
        *done += 1;
        self.termination_cv.notify_all();
    }

    /// Record how long a message sat in this shard's inbox (and, for a
    /// forwarded walker, the full forward-hop latency: peer send →
    /// dequeue here). `sent_at` is `None` unless telemetry is detailed.
    fn record_dwell(&self, sent_at: Option<Instant>, dequeued_at: Instant, forwarded: bool) {
        let Some(sent) = sent_at else { return };
        let dwell = dequeued_at.saturating_duration_since(sent);
        self.hists.inbox_dwell_ns.record_duration(dwell);
        if forwarded {
            self.hists.forward_hop_ns.record_duration(dwell);
        }
    }

    /// Close out one walker visit: record the step-batch latency and, for
    /// sampled walkers that actually stepped here, the `StepBatch`
    /// lifecycle span (attributed to the *owning* shard, whose engine and
    /// epoch the steps sampled under).
    fn end_visit(
        &self,
        owner_shard: usize,
        walker: &Walker,
        visit_start: Instant,
        visit_steps: u32,
    ) {
        if self.hists.step_batch_ns.is_enabled() {
            self.hists
                .step_batch_ns
                .record_duration(visit_start.elapsed());
        }
        if walker.sampled && visit_steps > 0 {
            self.telemetry.trace(
                walker.ticket,
                walker.index,
                TraceStage::StepBatch {
                    shard: owner_shard as u32,
                    steps: visit_steps,
                    epoch: self.counters[owner_shard].epoch.get(),
                },
            );
        }
    }

    fn apply_update(&self, shard_id: usize, batch: UpdateBatch) {
        // The vertices whose adjacency membership this batch changes —
        // the exact invalidation scope. Bias-only events stay out of it:
        // fingerprints are membership sets, which reweights never alter.
        let mut touched: Vec<VertexId> = batch
            .events()
            .iter()
            .filter(|e| !matches!(e, UpdateEvent::UpdateBias { .. }))
            .map(|e| e.src())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let structural = !touched.is_empty();
        let me = &self.shards[shard_id];
        let mut engine = me.engine.write();
        if structural {
            // Snapshots captured under the previous epoch may describe
            // adjacencies this batch changes: evict them from this
            // shard's encode cache AND from every peer's receiver-side
            // handle cache (which holds copies keyed to this shard), so a
            // stale `(vertex, epoch)` can never satisfy a handle offer.
            // Scoped mode drops exactly the touched vertices — every
            // other entry stays warm across the epoch advance — while the
            // wholesale baseline flushes everything this shard owns.
            // Bias-only batches and empty epoch ticks evict nothing.
            // (Lock order: engine → ctx_cache / engine → rx_cache, same
            // as the capture path; the two caches are never held
            // together.)
            if self.scoped_invalidation {
                {
                    let mut cache = me.context_cache.lock();
                    for &v in &touched {
                        cache.remove(&v);
                    }
                }
                for peer in &self.shards {
                    let mut rx = peer.rx_cache.lock();
                    for &v in &touched {
                        rx.remove(&(shard_id as u32, v));
                    }
                }
            } else {
                me.context_cache.lock().clear();
                for peer in &self.shards {
                    peer.rx_cache
                        .lock()
                        .retain(|&(owner, _), _| owner != shard_id as u32);
                }
            }
        }
        let outcome = engine.apply_batch(&batch);
        if structural {
            // Structural mutations invalidated the engine's hot-hub
            // fingerprint set; rebuild it while we still hold the write
            // guard, because the shared read path cannot.
            engine.warm_context();
        }
        let c = &self.counters[shard_id];
        c.updates_applied
            .add((outcome.inserted + outcome.deleted) as u64);
        c.update_batches.inc();
        // Publish the new generation *after* the batch is fully applied
        // but *before* the write guard drops: a reader that acquires the
        // read lock and sees epoch e knows the engine reflects exactly the
        // first e flushed batches, never a partially applied one.
        c.epoch.add_release(1);
        self.telemetry
            .flight()
            .record(FlightEventKind::EpochAdvance {
                shard: shard_id as u64,
                epoch: c.epoch.get_acquire(),
            });
    }

    /// Capture the model-declared cross-shard context before forwarding:
    /// for second-order models, a membership snapshot of the walker's
    /// previous vertex — which this shard owns, because it just sampled the
    /// step that left it.
    ///
    /// Snapshots are encoded per [`ServiceConfig::context_encoding`], built
    /// at most once per `(vertex, epoch)` (hot hubs come pre-built from the
    /// engine's context provider) and reused by every walker forwarded in
    /// the same wave. What actually ships is then **negotiated with the
    /// receiver's snapshot cache**: a snapshot the receiver already holds
    /// at the same `(vertex, epoch)` ships as a true
    /// [`CONTEXT_HANDLE_BYTES`] [`ContextHandle`]; otherwise the encoded
    /// body ships and seeds the receiver's cache (resolved synchronously
    /// here, so the "body request" costs no separate hop in-process —
    /// counted as `service.context.body_request` either way). Bodies no
    /// larger than a handle always ship inline. Byte accounting
    /// distinguishes the exact-`Vec` baseline (`context_bytes_raw`) from
    /// the bytes the negotiated wire frame carries
    /// (`context_bytes_forwarded` — real frame bytes in serialized mode).
    ///
    /// Returns the negotiation outcome when a snapshot was attached,
    /// `None` when the model carries no context or one is already
    /// attached.
    fn attach_forward_context(
        &self,
        owner_shard: usize,
        to: usize,
        engine: &BingoEngine,
        walker: &mut Walker,
    ) -> Option<ForwardNegotiation> {
        if walker.cursor.required_context() != ContextRequirement::PreviousAdjacency {
            return None;
        }
        let state = walker.cursor.state();
        let Some(prev) = state.prev() else {
            return None; // no history yet: the model's first step needs none
        };
        if state.carried_context().is_some() || !engine.owns(prev) {
            return None;
        }
        let c = &self.counters[owner_shard];
        // The caller holds the owner's engine read guard, so the cache
        // lock nests engine → ctx_cache — the same order `apply_update`
        // uses, and the guard also pins the epoch the fingerprint
        // describes (no update can slip between capture and cache insert).
        // The stored stamp is the *capture* epoch: bias-only epoch ticks
        // advance the counter without invalidating membership, so entry
        // presence (upheld by the eviction in `apply_update`) — not stamp
        // freshness — is what implies validity.
        let (capture_epoch, ctx, cache_hit) = {
            let mut cache = self.shards[owner_shard].context_cache.lock();
            match cache.get(&prev) {
                Some(&(stamp, ref cached)) => (stamp, cached.clone(), true),
                None => {
                    let (raw, _hot) = engine.context_fingerprint_shared(prev)?;
                    let ctx = self.context_encoding.encode(prev, raw);
                    let stamp = c.epoch.get_acquire();
                    cache.insert(prev, (stamp, ctx.clone()));
                    (stamp, ctx, false)
                }
            }
        };
        let body_len = ctx.byte_len();
        // Handle negotiation with the receiving shard's snapshot cache
        // (engine → rx_cache, never while ctx_cache is held). Only worth
        // it when the handle is actually smaller than the body.
        let (bytes_sent, handle) = if body_len > CONTEXT_HANDLE_BYTES {
            c.context_handle_offers.inc();
            let mut rx = self.shards[to].rx_cache.lock();
            let key = (owner_shard as u32, prev);
            match rx.get(&key) {
                Some(&(stamp, _)) if stamp == capture_epoch => {
                    c.context_handle_hits.inc();
                    let handle = ContextHandle {
                        vertex: prev,
                        owner_shard: owner_shard as u32,
                        epoch: capture_epoch,
                    };
                    (CONTEXT_HANDLE_BYTES, Some(handle))
                }
                _ => {
                    rx.insert(key, (capture_epoch, ctx.clone()));
                    c.context_body_requests.inc();
                    (body_len, None)
                }
            }
        } else {
            (body_len, None)
        };
        c.context_bytes_raw
            .add(CarriedContext::exact_wire_len(ctx.membership.len()) as u64);
        c.context_bytes_forwarded.add(bytes_sent as u64);
        if cache_hit {
            c.context_cache_hits.inc();
        } else {
            c.context_cache_misses.inc();
        }
        if self.record_epochs {
            walker.contexts.push(ContextTrace {
                vertex: ctx.vertex,
                adjacency: ctx.membership.decoded().unwrap_or_default(),
                shard: owner_shard,
                epoch: c.epoch.get_acquire(),
                bytes_sent,
                cache_hit,
            });
        }
        walker.cursor.set_forward_context(ctx);
        Some(ForwardNegotiation {
            cache_hit,
            bytes_sent,
            handle,
        })
    }

    /// Serialized-mode forward: encode the walker into its versioned wire
    /// frame, hand the bytes to the carrier, decode what arrives, and
    /// rebuild the walker **from the frame alone** — cursor replayed from
    /// the path, RNG restored from its raw parts, context taken from the
    /// frame (inline body) or resolved from the receiver's snapshot cache
    /// (negotiated handle). The walker the receiving shard processes then
    /// contains exactly what crossed the wire, so serialized and
    /// in-process runs are bit-identical by construction, not by
    /// assumption.
    ///
    /// Debug-only baggage (step/context traces, the dwell stamp) is moved
    /// out-of-band onto the rebuilt walker: it is collector-side
    /// diagnostics, not walk state, and a real remote protocol would ship
    /// it on a side channel if at all.
    ///
    /// Any failure — carrier error, undecodable bytes, unknown ticket, a
    /// handle whose snapshot was evicted mid-flight — falls back to the
    /// original in-process walker: the forward degrades to zero-copy
    /// instead of losing the walk (the attach-time context is still on
    /// its cursor, so even the evicted-handle race keeps the membership
    /// answers intact).
    fn round_trip(
        &self,
        owner_shard: usize,
        to: usize,
        mut walker: Box<Walker>,
        handle: Option<ContextHandle>,
    ) -> Box<Walker> {
        let (rng_state, rng_inc) = walker.rng.to_raw_parts();
        let context = match handle {
            Some(h) => FrameContext::Handle(h),
            None => match walker.cursor.state().carried_context() {
                Some(ctx) => FrameContext::Inline(ctx.clone()),
                None => FrameContext::None,
            },
        };
        let frame = WalkerFrame {
            ticket: walker.ticket,
            index: walker.index,
            hops: walker.hops,
            context_misses: walker.context_misses,
            sampled: walker.sampled,
            rng_state,
            rng_inc,
            path: walker.cursor.path().to_vec(),
            context,
        };
        let mut buf = Vec::with_capacity(frame.encoded_len());
        let sent = wire::encode_walker(&frame, &mut buf);
        self.counters[owner_shard]
            .transport_bytes_sent
            .add(sent as u64);
        let Ok(delivered) = self.carrier.carry(to, buf) else {
            return walker;
        };
        let Ok((decoded, _)) = wire::decode_walker(&delivered) else {
            return walker;
        };
        let Some(model) = self.models.lock().get(&decoded.ticket).cloned() else {
            return walker;
        };
        let Some(mut cursor) = WalkCursor::resume(model, decoded.path) else {
            return walker;
        };
        match decoded.context {
            FrameContext::Inline(ctx) => {
                cursor.set_forward_context(ctx);
            }
            FrameContext::Handle(h) => {
                let resolved = {
                    let rx = self.shards[to].rx_cache.lock();
                    match rx.get(&(h.owner_shard, h.vertex)) {
                        Some(&(stamp, ref ctx)) if stamp == h.epoch => Some(ctx.clone()),
                        _ => None,
                    }
                };
                match resolved.or_else(|| walker.cursor.state().carried_context().cloned()) {
                    Some(ctx) => {
                        cursor.set_forward_context(ctx);
                    }
                    None => return walker,
                }
            }
            FrameContext::None => {}
        }
        self.counters[to]
            .transport_bytes_recv
            .add(delivered.len() as u64);
        Box::new(Walker {
            ticket: decoded.ticket,
            index: decoded.index,
            cursor,
            rng: Pcg64::from_raw_parts(decoded.rng_state, decoded.rng_inc),
            hops: decoded.hops,
            trace: std::mem::take(&mut walker.trace),
            contexts: std::mem::take(&mut walker.contexts),
            context_misses: decoded.context_misses,
            sampled: decoded.sampled,
            sent_at: walker.sent_at.take(),
        })
    }

    /// Run one walker visit: sample steps against `owner_shard`'s engine
    /// (under its read guard) until the walk finishes, dead-ends, or
    /// crosses out of the shard's range. `exec_shard` is the shard task
    /// doing the work — equal to `owner_shard` except for stolen visits —
    /// and is where the executed steps are attributed, so the stats
    /// measure where the CPU time actually went. Semantic counters
    /// (arrivals, forwards, completions, context accounting) and all
    /// traces stay with the owner.
    fn drive_walker(
        self: &Arc<Self>,
        exec_shard: usize,
        owner_shard: usize,
        mut walker: Box<Walker>,
        visit_start: Instant,
    ) {
        self.record_dwell(walker.sent_at.take(), visit_start, walker.hops > 0);
        self.counters[owner_shard].walkers_received.inc();
        let record = self.record_epochs;
        let mut visit_steps: u32 = 0;
        let outcome = {
            let engine = self.shards[owner_shard].engine.read();
            let outcome = loop {
                let current = walker.cursor.current();
                // A walker at its deterministic length limit takes no
                // further sample: finish it here instead of forwarding it
                // to another shard for a no-op step.
                if !walker.cursor.is_done() && walker.cursor.at_length_limit() {
                    break VisitOutcome::Finished;
                }
                if !engine.owns(current) {
                    // The walk crossed into another shard's range: forward.
                    let owner = self.partitioner.owner(current);
                    if owner == owner_shard {
                        // Defensive: a vertex nobody owns (it can only
                        // arise from a corrupted engine state) would
                        // self-forward forever; treat it as a dead end.
                        break VisitOutcome::Finished;
                    }
                    let context =
                        self.attach_forward_context(owner_shard, owner, &engine, &mut walker);
                    self.counters[owner_shard].walkers_forwarded.inc();
                    walker.hops += 1;
                    break VisitOutcome::Forward { to: owner, context };
                }
                let epoch = self.counters[owner_shard].epoch.get_acquire();
                let stepped = walker.cursor.step(&*engine, &mut walker.rng);
                let context_misses = walker.cursor.take_context_misses();
                if context_misses > 0 {
                    // A second-order membership query fell back to this
                    // shard's engine for a vertex it does not own: the
                    // forwarding shard failed to attach (or attached a
                    // mismatched) context. Keep serving — the distribution
                    // degrades instead of the walk dying — count it here,
                    // and let the collector side `debug_assert!` on it
                    // (panicking a pool worker would hang every waiter
                    // instead of failing loudly).
                    walker.context_misses += context_misses;
                    self.counters[owner_shard]
                        .context_misses
                        .add(context_misses);
                }
                match stepped {
                    Some(next) => {
                        self.counters[exec_shard].steps.inc();
                        visit_steps += 1;
                        if record {
                            walker.trace.push(StepTrace {
                                src: current,
                                dst: next,
                                shard: owner_shard,
                                epoch,
                            });
                        }
                    }
                    None => break VisitOutcome::Finished,
                }
            };
            self.end_visit(owner_shard, &walker, visit_start, visit_steps);
            outcome
            // The engine read guard drops here: the forward/finish below
            // touches inboxes, the pool injector and the done channel with
            // no engine lock held.
        };
        match outcome {
            VisitOutcome::Finished => self.finish_walker(owner_shard, *walker),
            VisitOutcome::Forward { to, context } => {
                if walker.sampled {
                    let (cache_hit, bytes) = context
                        .as_ref()
                        .map_or((false, 0), |n| (n.cache_hit, n.bytes_sent));
                    self.telemetry.trace(
                        walker.ticket,
                        walker.index,
                        TraceStage::ForwardHop {
                            from_shard: owner_shard as u32,
                            to_shard: to as u32,
                            cache_hit,
                            bytes: bytes as u64,
                        },
                    );
                }
                walker.sent_at = self.telemetry.timer();
                let walker = if self.serialized {
                    let handle = context.and_then(|n| n.handle);
                    self.round_trip(owner_shard, to, walker, handle)
                } else {
                    walker
                };
                self.push(to, ShardMsg::Walker(walker));
            }
        }
    }

    fn finish_walker(&self, owner_shard: usize, walker: Walker) {
        self.counters[owner_shard].walks_completed.inc();
        let _ = self.done_tx.send(FinishedWalk {
            ticket: walker.ticket,
            index: walker.index,
            context_misses: walker.context_misses,
            sampled: walker.sampled,
            path: walker.cursor.into_path(),
            hops: walker.hops,
            trace: walker.trace,
            contexts: walker.contexts,
            // lint:allow(determinism): collect-latency stamp (telemetry).
            finished_at: Instant::now(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use std::collections::HashSet;

    #[test]
    fn walker_seeds_do_not_collide_across_ticket_index_pairs() {
        // Regression for the XOR-of-two-products seeding scheme: distinct
        // (ticket, index) pairs must map to distinct seeds. A few thousand
        // pairs over several base seeds; any collision means two walkers
        // share one Pcg64 stream.
        for base in [0u64, 0x5E41_11CE, u64::MAX] {
            let mut seen = HashSet::new();
            for ticket in 1..=100u64 {
                for index in 0..50u64 {
                    assert!(
                        seen.insert(walker_seed(base, ticket, index)),
                        "seed collision at base {base:#x}, pair ({ticket}, {index})"
                    );
                }
            }
        }
    }

    #[test]
    fn walker_seed_has_no_linear_low_bit_structure() {
        // The old scheme's seed parity equaled parity(base ^ ticket ^
        // index), so half the low-bit patterns could never occur. The
        // finalized seeds must hit both parities for fixed-parity inputs.
        let parities: HashSet<u64> = (0..16u64)
            .map(|i| walker_seed(7, 2 * i, 0) & 1) // even tickets only
            .collect();
        assert_eq!(parities.len(), 2, "both low-bit values occur");
    }

    #[test]
    fn walker_seeds_produce_distinct_streams() {
        let mut a = Pcg64::seed_from_u64(walker_seed(9, 1, 0));
        let mut b = Pcg64::seed_from_u64(walker_seed(9, 1, 1));
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b);
    }
}

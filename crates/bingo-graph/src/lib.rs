//! # bingo-graph
//!
//! Dynamic weighted graph substrate for the Bingo reproduction.
//!
//! The paper builds its sampling structures on top of Hornet-style dynamic
//! adjacency arrays on the GPU; this crate provides the CPU equivalent:
//!
//! * [`block_pool`] — power-of-two block pool allocator that recycles
//!   adjacency storage across updates (Hornet's memory manager).
//! * [`adjacency`] — per-vertex dynamic adjacency arrays with `O(1)`
//!   amortized append and `O(1)` swap-delete.
//! * [`DynamicGraph`] — the mutable weighted graph: edge insertion, deletion
//!   and bias updates, plus CSR snapshots for the static baselines.
//! * [`generators`] — R-MAT / Erdős–Rényi / preferential-attachment graph
//!   generators and the bias distributions used in the evaluation
//!   (uniform, Gaussian, power-law, degree-derived).
//! * [`updates`] — the paper's update-stream protocol (§6.1): edges are split
//!   into a base set A and a spare set B, and a stream of insertions,
//!   deletions or mixed events is drawn from them.
//! * [`datasets`] — scaled-down synthetic stand-ins for the five evaluation
//!   graphs (Amazon, Google, Citation, LiveJournal, Twitter).
//! * [`io`] — plain edge-list loading/saving so real datasets can be used
//!   when available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bias;
pub mod block_pool;
pub mod compaction;
pub mod csr;
pub mod datasets;
pub mod dynamic_graph;
pub mod generators;
pub mod io;
pub mod stats;
pub mod updates;

pub use adjacency::{AdjacencyList, Edge};
pub use bias::Bias;
pub use block_pool::BlockPool;
pub use compaction::two_phase_delete_and_swap;
pub use csr::CsrGraph;
pub use datasets::{DatasetSpec, StandinDataset};
pub use dynamic_graph::DynamicGraph;
pub use generators::{BiasDistribution, GraphGenerator};
pub use updates::{UpdateBatch, UpdateEvent, UpdateKind, UpdateStreamBuilder};

/// Vertex identifier. The evaluation graphs fit comfortably in 32 bits.
pub type VertexId = u32;

/// Errors produced by graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id is outside the graph's vertex range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of vertices in the graph.
        num_vertices: usize,
    },
    /// The requested edge does not exist.
    EdgeNotFound {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// An edge bias was invalid (negative, zero, NaN or infinite).
    InvalidBias {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// A parse error while loading a graph from text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An I/O error while loading or saving a graph.
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range ({num_vertices} vertices)"),
            GraphError::EdgeNotFound { src, dst } => write!(f, "edge ({src}, {dst}) not found"),
            GraphError::InvalidBias { src, dst } => {
                write!(f, "invalid bias for edge ({src}, {dst})")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

//! Synthetic graph generators and bias distributions.
//!
//! The paper evaluates on real graphs whose sizes (up to 1.47 billion edges)
//! are outside laptop scope, so the benchmark harness generates scaled-down
//! synthetic graphs with matching *shape*: R-MAT for the skewed social /
//! web graphs and Erdős–Rényi for the near-uniform ones. Bias values are
//! drawn from the three distributions the paper's microbenchmarks use
//! (uniform, Gaussian, power-law) or derived from vertex degrees, which is
//! the paper's default (§6.1 "Bias").

use crate::{Bias, DynamicGraph, VertexId};
use rand::Rng;

/// Distribution from which edge biases are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BiasDistribution {
    /// Every edge gets the same integer bias.
    Constant(u64),
    /// Uniform integers in `[lo, hi]`.
    UniformInt {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Rounded Gaussian with the given mean and standard deviation, clamped
    /// to at least 1.
    Gaussian {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation of the distribution.
        std_dev: f64,
    },
    /// Discrete power law: `P(w) ∝ w^-alpha` for `w ∈ [1, max]`.
    PowerLaw {
        /// Exponent of the power law (> 0).
        alpha: f64,
        /// Largest bias value.
        max: u64,
    },
    /// Bias of edge `(u, v)` equals the destination's degree (the paper's
    /// default, which "naturally follows a power-law distribution").
    DegreeBased,
    /// Uniform floating-point biases in `[lo, hi)`.
    UniformFloat {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
}

impl BiasDistribution {
    /// Draw one bias value. For [`BiasDistribution::DegreeBased`] the caller
    /// must supply the destination degree via `dst_degree`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, dst_degree: usize) -> Bias {
        match *self {
            BiasDistribution::Constant(w) => Bias::from_int(w.max(1)),
            BiasDistribution::UniformInt { lo, hi } => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                Bias::from_int(rng.gen_range(lo..=hi))
            }
            BiasDistribution::Gaussian { mean, std_dev } => {
                // Box–Muller transform; avoids a dependency on rand_distr.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let value = (mean + std_dev * z).round().max(1.0);
                Bias::from_int(value as u64)
            }
            BiasDistribution::PowerLaw { alpha, max } => {
                // Inverse-CDF sampling of a truncated continuous power law,
                // then rounded to an integer in [1, max].
                let max = max.max(1) as f64;
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let exponent = 1.0 - alpha;
                let value = if exponent.abs() < 1e-9 {
                    max.powf(u)
                } else {
                    (1.0 + u * (max.powf(exponent) - 1.0)).powf(1.0 / exponent)
                };
                Bias::from_int(value.round().clamp(1.0, max) as u64)
            }
            BiasDistribution::DegreeBased => Bias::from_int(dst_degree.max(1) as u64),
            BiasDistribution::UniformFloat { lo, hi } => {
                Bias::from_float(rng.gen_range(lo.max(f64::MIN_POSITIVE)..hi.max(lo + 1e-9)))
            }
        }
    }
}

/// Synthetic graph topology generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphGenerator {
    /// Erdős–Rényi `G(n, m)`: `m` edges drawn uniformly at random.
    ErdosRenyi {
        /// Number of vertices.
        vertices: usize,
        /// Number of directed edges.
        edges: usize,
    },
    /// R-MAT with the standard `(a, b, c, d)` partition probabilities,
    /// producing the power-law degree skew of social and web graphs.
    RMat {
        /// log2 of the number of vertices.
        scale: u32,
        /// Average degree (edges = vertices * avg_degree).
        avg_degree: usize,
        /// Probability of the top-left quadrant.
        a: f64,
        /// Probability of the top-right quadrant.
        b: f64,
        /// Probability of the bottom-left quadrant.
        c: f64,
    },
    /// Preferential attachment (Barabási–Albert): each new vertex attaches
    /// `m` edges to existing vertices proportionally to their degree.
    PreferentialAttachment {
        /// Number of vertices.
        vertices: usize,
        /// Edges added per new vertex.
        edges_per_vertex: usize,
    },
}

impl GraphGenerator {
    /// Generate the edge list (without biases).
    pub fn generate_edges<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> (usize, Vec<(VertexId, VertexId)>) {
        match *self {
            GraphGenerator::ErdosRenyi { vertices, edges } => {
                let n = vertices.max(2);
                let list = (0..edges)
                    .map(|_| {
                        let src = rng.gen_range(0..n) as VertexId;
                        let mut dst = rng.gen_range(0..n) as VertexId;
                        if dst == src {
                            dst = (dst + 1) % n as VertexId;
                        }
                        (src, dst)
                    })
                    .collect();
                (n, list)
            }
            GraphGenerator::RMat {
                scale,
                avg_degree,
                a,
                b,
                c,
            } => {
                let n = 1usize << scale;
                let m = n * avg_degree;
                let mut list = Vec::with_capacity(m);
                for _ in 0..m {
                    let (mut src, mut dst) = (0usize, 0usize);
                    for level in (0..scale).rev() {
                        let r: f64 = rng.gen();
                        let (dr, dc) = if r < a {
                            (0, 0)
                        } else if r < a + b {
                            (0, 1)
                        } else if r < a + b + c {
                            (1, 0)
                        } else {
                            (1, 1)
                        };
                        src |= dr << level;
                        dst |= dc << level;
                    }
                    if src == dst {
                        dst = (dst + 1) % n;
                    }
                    list.push((src as VertexId, dst as VertexId));
                }
                (n, list)
            }
            GraphGenerator::PreferentialAttachment {
                vertices,
                edges_per_vertex,
            } => {
                let n = vertices.max(2);
                let m = edges_per_vertex.max(1);
                // Repeated-vertex list for degree-proportional selection.
                let mut targets: Vec<VertexId> = vec![0, 1];
                let mut list = Vec::with_capacity(n * m);
                list.push((0 as VertexId, 1 as VertexId));
                for v in 2..n {
                    for _ in 0..m.min(v) {
                        let t = targets[rng.gen_range(0..targets.len())];
                        list.push((v as VertexId, t));
                        targets.push(v as VertexId);
                        targets.push(t);
                    }
                }
                (n, list)
            }
        }
    }

    /// Generate a full [`DynamicGraph`] with biases drawn from `bias`.
    pub fn generate<R: Rng + ?Sized>(&self, bias: BiasDistribution, rng: &mut R) -> DynamicGraph {
        let (n, edge_list) = self.generate_edges(rng);
        let mut graph = DynamicGraph::new(n);
        // First pass without biases to know destination degrees for the
        // degree-based distribution.
        let mut in_degree = vec![0usize; n];
        for &(_, dst) in &edge_list {
            in_degree[dst as usize] += 1;
        }
        for (src, dst) in edge_list {
            let b = bias.sample(rng, in_degree[dst as usize]);
            graph
                .insert_edge(src, dst, b)
                .expect("generated edges are within range and biases valid");
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sampling_test_rng::Pcg64;
    use rand::SeedableRng;

    // Small local RNG shim so this crate does not depend on bingo-sampling.
    mod bingo_sampling_test_rng {
        use rand::{RngCore, SeedableRng};

        pub struct Pcg64(u64);

        impl RngCore for Pcg64 {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                // SplitMix64: plenty for generator tests.
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let b = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
            }
            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }

        impl SeedableRng for Pcg64 {
            type Seed = [u8; 8];
            fn from_seed(seed: Self::Seed) -> Self {
                Pcg64(u64::from_le_bytes(seed))
            }
        }
    }

    #[test]
    fn constant_bias_is_constant() {
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(
                BiasDistribution::Constant(3).sample(&mut rng, 0).value(),
                3.0
            );
        }
    }

    #[test]
    fn uniform_int_respects_bounds() {
        let mut rng = Pcg64::seed_from_u64(2);
        for _ in 0..1000 {
            let b = BiasDistribution::UniformInt { lo: 2, hi: 9 }.sample(&mut rng, 0);
            let v = b.value();
            assert!((2.0..=9.0).contains(&v));
            assert!(b.is_integral());
        }
    }

    #[test]
    fn gaussian_bias_is_positive_integer() {
        let mut rng = Pcg64::seed_from_u64(3);
        let dist = BiasDistribution::Gaussian {
            mean: 16.0,
            std_dev: 8.0,
        };
        let mut sum = 0.0;
        for _ in 0..2000 {
            let b = dist.sample(&mut rng, 0);
            assert!(b.value() >= 1.0);
            sum += b.value();
        }
        let mean = sum / 2000.0;
        assert!((mean - 16.0).abs() < 1.5);
    }

    #[test]
    fn power_law_is_skewed_toward_small_values() {
        let mut rng = Pcg64::seed_from_u64(4);
        let dist = BiasDistribution::PowerLaw {
            alpha: 2.0,
            max: 1024,
        };
        let mut small = 0;
        let n = 5000;
        for _ in 0..n {
            let b = dist.sample(&mut rng, 0);
            assert!(b.value() >= 1.0 && b.value() <= 1024.0);
            if b.value() <= 4.0 {
                small += 1;
            }
        }
        assert!(small as f64 / n as f64 > 0.5);
    }

    #[test]
    fn degree_based_bias_uses_destination_degree() {
        let mut rng = Pcg64::seed_from_u64(5);
        assert_eq!(
            BiasDistribution::DegreeBased.sample(&mut rng, 17).value(),
            17.0
        );
        assert_eq!(
            BiasDistribution::DegreeBased.sample(&mut rng, 0).value(),
            1.0
        );
    }

    #[test]
    fn uniform_float_is_fractional() {
        let mut rng = Pcg64::seed_from_u64(6);
        let b = BiasDistribution::UniformFloat { lo: 0.1, hi: 1.0 }.sample(&mut rng, 0);
        assert!(!b.is_integral());
        assert!(b.value() >= 0.1 && b.value() < 1.0);
    }

    #[test]
    fn erdos_renyi_generates_requested_edges() {
        let mut rng = Pcg64::seed_from_u64(7);
        let g = GraphGenerator::ErdosRenyi {
            vertices: 100,
            edges: 500,
        }
        .generate(BiasDistribution::Constant(1), &mut rng);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        // No self loops.
        for (src, e) in g.edges() {
            assert_ne!(src, e.dst);
        }
    }

    #[test]
    fn rmat_produces_skewed_degrees() {
        let mut rng = Pcg64::seed_from_u64(8);
        let g = GraphGenerator::RMat {
            scale: 10,
            avg_degree: 8,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
        .generate(BiasDistribution::DegreeBased, &mut rng);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 1024 * 8);
        // Skew check: the max degree should be far above the average.
        assert!(g.max_degree() > 4 * g.avg_degree() as usize);
    }

    #[test]
    fn preferential_attachment_connects_every_vertex() {
        let mut rng = Pcg64::seed_from_u64(9);
        let g = GraphGenerator::PreferentialAttachment {
            vertices: 200,
            edges_per_vertex: 3,
        }
        .generate(BiasDistribution::UniformInt { lo: 1, hi: 10 }, &mut rng);
        assert_eq!(g.num_vertices(), 200);
        // Every vertex from 2.. has out-degree >= 1.
        for v in 2..200 {
            assert!(g.degree(v) >= 1, "vertex {v} is isolated");
        }
    }
}

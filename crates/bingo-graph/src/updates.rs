//! Graph update events and the paper's update-stream protocol.
//!
//! Section 6.1 of the paper generates dynamic workloads as follows: the
//! original edge set is split into a base set **A** (loaded initially) and a
//! spare set **B** of `10 × BATCHSIZE` edges; each update either deletes a
//! random edge currently in A or inserts a random edge from B, producing a
//! stream of `10 × BATCHSIZE` events that is then ingested either one at a
//! time (streaming) or in `BATCHSIZE`-sized batches.

use crate::{Bias, DynamicGraph, VertexId};
use rand::Rng;

/// A single graph mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateEvent {
    /// Insert the edge `(src, dst)` with the given bias.
    Insert {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Sampling bias of the new edge.
        bias: Bias,
    },
    /// Delete one copy of the edge `(src, dst)`.
    Delete {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
    /// Replace the bias of the edge `(src, dst)`.
    UpdateBias {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// New bias.
        bias: Bias,
    },
}

impl UpdateEvent {
    /// The source vertex the event applies to (updates are grouped by source
    /// vertex for batched ingestion, §5.2).
    pub fn src(&self) -> VertexId {
        match *self {
            UpdateEvent::Insert { src, .. }
            | UpdateEvent::Delete { src, .. }
            | UpdateEvent::UpdateBias { src, .. } => src,
        }
    }

    /// Whether this event is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, UpdateEvent::Insert { .. })
    }

    /// Whether this event is a deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self, UpdateEvent::Delete { .. })
    }
}

/// An ordered batch of update events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateBatch {
    events: Vec<UpdateEvent>,
}

impl UpdateBatch {
    /// Create a batch from a list of events.
    pub fn new(events: Vec<UpdateEvent>) -> Self {
        UpdateBatch { events }
    }

    /// The events in ingestion order.
    pub fn events(&self) -> &[UpdateEvent] {
        &self.events
    }

    /// Consume the batch, returning the events in ingestion order.
    pub fn into_events(self) -> Vec<UpdateEvent> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of insertions in the batch.
    pub fn num_insertions(&self) -> usize {
        self.events.iter().filter(|e| e.is_insert()).count()
    }

    /// Number of deletions in the batch.
    pub fn num_deletions(&self) -> usize {
        self.events.iter().filter(|e| e.is_delete()).count()
    }

    /// Group the events by source vertex, preserving per-vertex order.
    /// This is the CPU-side "reordering requests" step of Figure 10(a).
    pub fn group_by_vertex(&self) -> Vec<(VertexId, Vec<UpdateEvent>)> {
        let mut groups: std::collections::BTreeMap<VertexId, Vec<UpdateEvent>> =
            std::collections::BTreeMap::new();
        for &event in &self.events {
            groups.entry(event.src()).or_default().push(event);
        }
        groups.into_iter().collect()
    }

    /// Split the batch into chunks of at most `chunk_size` events.
    pub fn chunks(&self, chunk_size: usize) -> Vec<UpdateBatch> {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.events
            .chunks(chunk_size)
            .map(|c| UpdateBatch::new(c.to_vec()))
            .collect()
    }

    /// Split the batch by partition owner: `owner(src)` maps every event's
    /// source vertex to one of `num_partitions` partitions, and the result
    /// holds one (possibly empty) sub-batch per partition with the original
    /// event order preserved within each partition.
    ///
    /// This is the router-side half of sharded ingestion: each sub-batch can
    /// be shipped to the engine shard owning those source vertices and
    /// applied there independently, because update semantics only depend on
    /// the source vertex's adjacency.
    pub fn split_by_owner<F>(&self, num_partitions: usize, owner: F) -> Vec<UpdateBatch>
    where
        F: Fn(VertexId) -> usize,
    {
        let mut parts: Vec<UpdateBatch> = (0..num_partitions.max(1))
            .map(|_| UpdateBatch::default())
            .collect();
        for &event in &self.events {
            let p = owner(event.src()).min(parts.len() - 1);
            parts[p].events.push(event);
        }
        parts
    }
}

impl FromIterator<UpdateEvent> for UpdateBatch {
    fn from_iter<T: IntoIterator<Item = UpdateEvent>>(iter: T) -> Self {
        UpdateBatch::new(iter.into_iter().collect())
    }
}

/// Kind of update stream generated by [`UpdateStreamBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Insertions only ("Insertion" workload).
    InsertOnly,
    /// Deletions only ("Deletion" workload).
    DeleteOnly,
    /// Equal mix of insertions and deletions ("Mixed" workload).
    Mixed,
}

/// Builds the paper's evaluation update streams from an initial graph.
///
/// The builder removes `reserve` edges from the initial graph into the spare
/// set **B** (so insertions re-add real edges), then draws the requested
/// number of events.
#[derive(Debug, Clone)]
pub struct UpdateStreamBuilder {
    kind: UpdateKind,
    reserve: usize,
    bias: Option<Bias>,
    seedable_biases: bool,
}

impl UpdateStreamBuilder {
    /// Create a builder for the given workload kind, reserving
    /// `reserve` edges for the insertion pool.
    pub fn new(kind: UpdateKind, reserve: usize) -> Self {
        UpdateStreamBuilder {
            kind,
            reserve,
            bias: None,
            seedable_biases: true,
        }
    }

    /// Force every inserted edge to use a fixed bias instead of reusing the
    /// bias it had in the original graph.
    pub fn with_fixed_bias(mut self, bias: Bias) -> Self {
        self.bias = Some(bias);
        self
    }

    /// When enabled (default), inserted edges reuse their original bias.
    pub fn reuse_original_bias(mut self, reuse: bool) -> Self {
        self.seedable_biases = reuse;
        self
    }

    /// Prepare the graph and generate `count` update events.
    ///
    /// The graph is mutated: the reserved edges are removed (they form set
    /// B). The returned events are valid to apply in order against the
    /// mutated graph.
    pub fn build<R: Rng + ?Sized>(
        &self,
        graph: &mut DynamicGraph,
        count: usize,
        rng: &mut R,
    ) -> UpdateBatch {
        // Collect the full edge list and pick `reserve` of them for set B.
        let mut all_edges: Vec<(VertexId, VertexId, Bias)> =
            graph.edges().map(|(src, e)| (src, e.dst, e.bias)).collect();
        // Fisher-Yates style partial shuffle for the reserved pool.
        let reserve = self.reserve.min(all_edges.len());
        for i in 0..reserve {
            let j = rng.gen_range(i..all_edges.len());
            all_edges.swap(i, j);
        }
        let pool_b: Vec<(VertexId, VertexId, Bias)> = all_edges[..reserve].to_vec();
        // Set A = graph minus pool B.
        for &(src, dst, _) in &pool_b {
            // Ignore failures from duplicate edges already removed.
            let _ = graph.delete_edge(src, dst);
        }
        // Track which A-edges exist so deletions stay valid, and which
        // B-edges have been inserted already.
        let mut a_edges: Vec<(VertexId, VertexId, Bias)> =
            graph.edges().map(|(src, e)| (src, e.dst, e.bias)).collect();
        let mut b_cursor = 0usize;
        let mut events = Vec::with_capacity(count);
        for i in 0..count {
            let do_insert = match self.kind {
                UpdateKind::InsertOnly => true,
                UpdateKind::DeleteOnly => false,
                UpdateKind::Mixed => i % 2 == 0,
            };
            if do_insert {
                // Insert the next edge from pool B (cycling if exhausted).
                if pool_b.is_empty() {
                    continue;
                }
                let (src, dst, bias) = pool_b[b_cursor % pool_b.len()];
                b_cursor += 1;
                let bias = match (self.bias, self.seedable_biases) {
                    (Some(b), _) => b,
                    (None, true) => bias,
                    (None, false) => Bias::from_int(1),
                };
                events.push(UpdateEvent::Insert { src, dst, bias });
                a_edges.push((src, dst, bias));
            } else {
                if a_edges.is_empty() {
                    continue;
                }
                let idx = rng.gen_range(0..a_edges.len());
                let (src, dst, _) = a_edges.swap_remove(idx);
                events.push(UpdateEvent::Delete { src, dst });
            }
        }
        UpdateBatch::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic_graph::running_example;
    use crate::generators::{BiasDistribution, GraphGenerator};
    use rand::rngs::mock::StepRng;

    fn test_graph(seed: u64) -> DynamicGraph {
        struct Sm(u64);
        impl rand::RngCore for Sm {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let b = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
            }
            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }
        let mut rng = Sm(seed);
        GraphGenerator::ErdosRenyi {
            vertices: 200,
            edges: 2000,
        }
        .generate(BiasDistribution::UniformInt { lo: 1, hi: 31 }, &mut rng)
    }

    #[test]
    fn event_accessors() {
        let e = UpdateEvent::Insert {
            src: 3,
            dst: 4,
            bias: Bias::from_int(2),
        };
        assert_eq!(e.src(), 3);
        assert!(e.is_insert());
        assert!(!e.is_delete());
        let d = UpdateEvent::Delete { src: 7, dst: 1 };
        assert_eq!(d.src(), 7);
        assert!(d.is_delete());
    }

    #[test]
    fn batch_counts_and_grouping() {
        let batch = UpdateBatch::new(vec![
            UpdateEvent::Insert {
                src: 1,
                dst: 2,
                bias: Bias::from_int(1),
            },
            UpdateEvent::Delete { src: 0, dst: 3 },
            UpdateEvent::Insert {
                src: 1,
                dst: 4,
                bias: Bias::from_int(2),
            },
        ]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.num_insertions(), 2);
        assert_eq!(batch.num_deletions(), 1);
        let groups = batch.group_by_vertex();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[1].0, 1);
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn chunks_partition_the_batch() {
        let events: Vec<UpdateEvent> = (0..10)
            .map(|i| UpdateEvent::Delete { src: i, dst: 0 })
            .collect();
        let batch = UpdateBatch::new(events);
        let chunks = batch.chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].len(), 3);
        assert_eq!(chunks[3].len(), 1);
        let total: usize = chunks.iter().map(UpdateBatch::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_by_owner_partitions_events_in_order() {
        let events: Vec<UpdateEvent> = (0..12)
            .map(|i| UpdateEvent::Delete { src: i, dst: 0 })
            .collect();
        let batch = UpdateBatch::new(events);
        let parts = batch.split_by_owner(3, |v| (v as usize) / 4);
        assert_eq!(parts.len(), 3);
        for (p, part) in parts.iter().enumerate() {
            assert_eq!(part.len(), 4);
            let srcs: Vec<u32> = part.events().iter().map(|e| e.src()).collect();
            let expected: Vec<u32> = (p as u32 * 4..p as u32 * 4 + 4).collect();
            assert_eq!(srcs, expected, "partition {p} must preserve order");
        }
        let total: usize = parts.iter().map(UpdateBatch::len).sum();
        assert_eq!(total, batch.len());
        // Out-of-range owners are clamped to the last partition.
        let clamped = batch.split_by_owner(2, |_| 99);
        assert_eq!(clamped[1].len(), 12);
    }

    #[test]
    fn insert_only_stream_contains_only_insertions() {
        let mut g = test_graph(1);
        let mut rng = StepRng::new(12345, 987_654_321);
        let batch =
            UpdateStreamBuilder::new(UpdateKind::InsertOnly, 500).build(&mut g, 400, &mut rng);
        assert!(!batch.is_empty());
        assert_eq!(batch.num_deletions(), 0);
        assert_eq!(batch.num_insertions(), batch.len());
    }

    #[test]
    fn delete_only_stream_is_applicable() {
        let mut g = test_graph(2);
        let before = g.num_edges();
        let mut rng = StepRng::new(7, 0x9E3779B97F4A7C15);
        let batch =
            UpdateStreamBuilder::new(UpdateKind::DeleteOnly, 0).build(&mut g, 300, &mut rng);
        assert_eq!(batch.num_insertions(), 0);
        let applied = g.apply_batch(&batch);
        assert_eq!(applied, batch.len());
        assert_eq!(g.num_edges(), before - applied);
    }

    #[test]
    fn mixed_stream_alternates_and_applies() {
        let mut g = test_graph(3);
        let mut rng = StepRng::new(99, 0x2545F4914F6CDD1D);
        let batch = UpdateStreamBuilder::new(UpdateKind::Mixed, 600).build(&mut g, 500, &mut rng);
        assert!(batch.num_insertions() > 0);
        assert!(batch.num_deletions() > 0);
        let applied = g.apply_batch(&batch);
        // Every generated event must be applicable in order.
        assert_eq!(applied, batch.len());
    }

    #[test]
    fn fixed_bias_overrides_original() {
        let mut g = running_example();
        let mut rng = StepRng::new(5, 11);
        let batch = UpdateStreamBuilder::new(UpdateKind::InsertOnly, 4)
            .with_fixed_bias(Bias::from_int(42))
            .build(&mut g, 4, &mut rng);
        for e in batch.events() {
            if let UpdateEvent::Insert { bias, .. } = e {
                assert_eq!(bias.value(), 42.0);
            }
        }
    }

    #[test]
    fn reserve_shrinks_initial_graph() {
        let mut g = test_graph(4);
        let before = g.num_edges();
        let mut rng = StepRng::new(13, 17);
        let _ = UpdateStreamBuilder::new(UpdateKind::InsertOnly, 100).build(&mut g, 10, &mut rng);
        assert!(g.num_edges() <= before - 90);
    }
}

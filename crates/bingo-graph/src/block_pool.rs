//! Hornet-style block pool allocator.
//!
//! Hornet (Busato et al., HPEC 2018), the dynamic-graph container the paper
//! adopts on the GPU, stores every adjacency list in a block whose capacity
//! is a power of two and recycles freed blocks through per-class free lists
//! so that graph updates do not call the device allocator. This module
//! reproduces that memory-management strategy for CPU vectors: callers
//! acquire storage of a given capacity class and release it back to the pool
//! when an adjacency list grows or a vertex disappears.

use parking_lot::Mutex;

/// Statistics describing the pool's behaviour, used by the memory
/// experiments and by tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockPoolStats {
    /// Number of blocks handed out that could be served from a free list.
    pub reused: usize,
    /// Number of blocks that required a fresh allocation.
    pub allocated: usize,
    /// Number of blocks currently sitting in free lists.
    pub free_blocks: usize,
    /// Total capacity (in elements) parked in free lists.
    pub free_capacity: usize,
}

/// A pool of reusable `Vec<T>` blocks grouped by power-of-two capacity class.
#[derive(Debug)]
pub struct BlockPool<T> {
    /// `free[class]` holds blocks with capacity `1 << class`.
    free: Mutex<Vec<Vec<Vec<T>>>>,
    stats: Mutex<BlockPoolStats>,
    max_class: usize,
}

impl<T> Default for BlockPool<T> {
    fn default() -> Self {
        Self::new(32)
    }
}

impl<T> BlockPool<T> {
    /// Create a pool managing capacity classes `2^0 .. 2^max_class`.
    pub fn new(max_class: usize) -> Self {
        BlockPool {
            free: Mutex::new_named((0..=max_class).map(|_| Vec::new()).collect(), "pool.free"),
            stats: Mutex::new_named(BlockPoolStats::default(), "pool.stats"),
            max_class,
        }
    }

    /// The capacity class (power-of-two exponent) that fits `len` elements.
    pub fn class_for(len: usize) -> usize {
        if len <= 1 {
            0
        } else {
            usize::BITS as usize - (len - 1).leading_zeros() as usize
        }
    }

    /// Acquire a block with capacity at least `min_capacity`.
    pub fn acquire(&self, min_capacity: usize) -> Vec<T> {
        let class = Self::class_for(min_capacity).min(self.max_class);
        let capacity = 1usize << class;
        let mut free = self.free.lock();
        let mut stats = self.stats.lock();
        if let Some(mut block) = free[class].pop() {
            block.clear();
            stats.reused += 1;
            stats.free_blocks -= 1;
            stats.free_capacity -= capacity;
            block
        } else {
            stats.allocated += 1;
            Vec::with_capacity(capacity)
        }
    }

    /// Return a block to the pool for later reuse.
    pub fn release(&self, block: Vec<T>) {
        if block.capacity() == 0 {
            return;
        }
        let class = Self::class_for(block.capacity()).min(self.max_class);
        let mut free = self.free.lock();
        let mut stats = self.stats.lock();
        stats.free_blocks += 1;
        stats.free_capacity += 1usize << class;
        free[class].push(block);
    }

    /// Grow a block to the next capacity class, copying its contents, and
    /// recycle the old storage. Returns the new block.
    pub fn grow(&self, mut block: Vec<T>) -> Vec<T> {
        let mut bigger = self.acquire(block.len().max(1) * 2);
        bigger.append(&mut block);
        self.release(block);
        bigger
    }

    /// Snapshot of the pool statistics.
    pub fn stats(&self) -> BlockPoolStats {
        *self.stats.lock()
    }

    /// Drop every cached free block.
    pub fn clear(&self) {
        let mut free = self.free.lock();
        for class in free.iter_mut() {
            class.clear();
        }
        let mut stats = self.stats.lock();
        stats.free_blocks = 0;
        stats.free_capacity = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_for_is_ceiling_log2() {
        assert_eq!(BlockPool::<u32>::class_for(0), 0);
        assert_eq!(BlockPool::<u32>::class_for(1), 0);
        assert_eq!(BlockPool::<u32>::class_for(2), 1);
        assert_eq!(BlockPool::<u32>::class_for(3), 2);
        assert_eq!(BlockPool::<u32>::class_for(4), 2);
        assert_eq!(BlockPool::<u32>::class_for(5), 3);
        assert_eq!(BlockPool::<u32>::class_for(1024), 10);
        assert_eq!(BlockPool::<u32>::class_for(1025), 11);
    }

    #[test]
    fn acquire_provides_requested_capacity() {
        let pool: BlockPool<u64> = BlockPool::new(20);
        let block = pool.acquire(5);
        assert!(block.capacity() >= 5);
        assert!(block.is_empty());
    }

    #[test]
    fn released_blocks_are_reused() {
        let pool: BlockPool<u64> = BlockPool::new(20);
        let mut block = pool.acquire(8);
        block.extend_from_slice(&[1, 2, 3]);
        pool.release(block);
        assert_eq!(pool.stats().free_blocks, 1);
        let reused = pool.acquire(8);
        assert!(reused.is_empty());
        let stats = pool.stats();
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.free_blocks, 0);
    }

    #[test]
    fn grow_preserves_contents() {
        let pool: BlockPool<u32> = BlockPool::new(20);
        let mut block = pool.acquire(2);
        block.push(7);
        block.push(9);
        let grown = pool.grow(block);
        assert_eq!(grown, vec![7, 9]);
        assert!(grown.capacity() >= 4);
        // The old block went back to the pool.
        assert_eq!(pool.stats().free_blocks, 1);
    }

    #[test]
    fn zero_capacity_release_is_ignored() {
        let pool: BlockPool<u32> = BlockPool::new(20);
        pool.release(Vec::new());
        assert_eq!(pool.stats().free_blocks, 0);
    }

    #[test]
    fn clear_drops_free_lists() {
        let pool: BlockPool<u32> = BlockPool::new(20);
        pool.release(Vec::with_capacity(16));
        pool.release(Vec::with_capacity(4));
        assert_eq!(pool.stats().free_blocks, 2);
        pool.clear();
        assert_eq!(pool.stats().free_blocks, 0);
        assert_eq!(pool.stats().free_capacity, 0);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        use std::sync::Arc;
        let pool: Arc<BlockPool<u64>> = Arc::new(BlockPool::new(20));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut b = p.acquire(i % 32 + 1);
                        b.push(i as u64);
                        p.release(b);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.reused + stats.allocated, 400);
    }
}

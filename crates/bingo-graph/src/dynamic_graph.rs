//! The mutable weighted graph.
//!
//! [`DynamicGraph`] is the snapshot-model dynamic graph of Definition 2.1:
//! a vertex set `0..num_vertices` plus per-vertex adjacency arrays that can
//! be mutated by edge insertions, deletions and bias updates. All sampling
//! structures in `bingo-core` and the baselines are built over this graph,
//! observing its mutations either one at a time (streaming) or in batches.

use crate::adjacency::{AdjacencyList, Edge, SwapDelete};
use crate::csr::CsrGraph;
use crate::updates::{UpdateBatch, UpdateEvent};
use crate::{Bias, GraphError, Result, VertexId};

/// A dynamic, directed, weighted graph.
///
/// Undirected graphs are represented by inserting both edge directions, which
/// is what the dataset generators and loaders do by default.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adjacency: Vec<AdjacencyList>,
    num_edges: usize,
}

impl DynamicGraph {
    /// Create a graph with `num_vertices` isolated vertices.
    pub fn new(num_vertices: usize) -> Self {
        DynamicGraph {
            adjacency: vec![AdjacencyList::new(); num_vertices],
            num_edges: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of directed edges currently present.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree (out-degree) of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency
            .get(v as usize)
            .map(AdjacencyList::degree)
            .unwrap_or(0)
    }

    /// Maximum out-degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.adjacency
            .iter()
            .map(AdjacencyList::degree)
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            0.0
        } else {
            self.num_edges as f64 / self.adjacency.len() as f64
        }
    }

    /// Adjacency list of `v`.
    pub fn neighbors(&self, v: VertexId) -> Result<&AdjacencyList> {
        self.adjacency
            .get(v as usize)
            .ok_or(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.adjacency.len(),
            })
    }

    /// Ensure the graph has at least `n` vertices, growing it if needed.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.adjacency.len() {
            self.adjacency.resize(n, AdjacencyList::new());
        }
    }

    /// Add a brand-new isolated vertex and return its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adjacency.push(AdjacencyList::new());
        (self.adjacency.len() - 1) as VertexId
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if (v as usize) < self.adjacency.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.adjacency.len(),
            })
        }
    }

    /// Insert the directed edge `(src, dst)` with the given bias and return
    /// its neighbor index in `src`'s adjacency list.
    ///
    /// Duplicate edges are allowed (the paper explicitly supports inserting
    /// a just-deleted edge again); each insertion creates a new slot.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, bias: Bias) -> Result<usize> {
        self.check_vertex(src)?;
        self.check_vertex(dst)?;
        if !bias.is_valid() {
            return Err(GraphError::InvalidBias { src, dst });
        }
        let idx = self.adjacency[src as usize].push(Edge::new(dst, bias));
        self.num_edges += 1;
        Ok(idx)
    }

    /// Insert both directions of an undirected edge.
    pub fn insert_undirected_edge(&mut self, a: VertexId, b: VertexId, bias: Bias) -> Result<()> {
        self.insert_edge(a, b, bias)?;
        self.insert_edge(b, a, bias)?;
        Ok(())
    }

    /// Delete the first edge `(src, dst)` found, using swap-delete.
    ///
    /// Returns the [`SwapDelete`] record so samplers mirroring the adjacency
    /// layout (Bingo's inverted index) can update their neighbor indices.
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId) -> Result<SwapDelete> {
        self.check_vertex(src)?;
        let adj = &mut self.adjacency[src as usize];
        let idx = adj.find(dst).ok_or(GraphError::EdgeNotFound { src, dst })?;
        let out = adj
            .swap_delete(idx)
            .expect("index returned by find is valid");
        self.num_edges -= 1;
        Ok(out)
    }

    /// Delete the edge at a specific neighbor index of `src`.
    pub fn delete_edge_at(&mut self, src: VertexId, neighbor_index: usize) -> Result<SwapDelete> {
        self.check_vertex(src)?;
        let adj = &mut self.adjacency[src as usize];
        let out = adj
            .swap_delete(neighbor_index)
            .ok_or(GraphError::EdgeNotFound { src, dst: 0 })?;
        self.num_edges -= 1;
        Ok(out)
    }

    /// Update the bias of the first edge `(src, dst)` found. Returns the old
    /// bias.
    pub fn update_bias(&mut self, src: VertexId, dst: VertexId, bias: Bias) -> Result<Bias> {
        self.check_vertex(src)?;
        if !bias.is_valid() {
            return Err(GraphError::InvalidBias { src, dst });
        }
        let adj = &mut self.adjacency[src as usize];
        let idx = adj.find(dst).ok_or(GraphError::EdgeNotFound { src, dst })?;
        Ok(adj
            .set_bias(idx, bias)
            .expect("index returned by find is valid"))
    }

    /// Whether the edge `(src, dst)` exists.
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.adjacency
            .get(src as usize)
            .map(|adj| adj.find(dst).is_some())
            .unwrap_or(false)
    }

    /// Apply a single update event to the graph. Deleting a missing edge is
    /// reported as an error; the batched-update machinery filters those out
    /// beforehand.
    pub fn apply(&mut self, event: &UpdateEvent) -> Result<()> {
        match *event {
            UpdateEvent::Insert { src, dst, bias } => {
                self.insert_edge(src, dst, bias)?;
            }
            UpdateEvent::Delete { src, dst } => {
                self.delete_edge(src, dst)?;
            }
            UpdateEvent::UpdateBias { src, dst, bias } => {
                self.update_bias(src, dst, bias)?;
            }
        }
        Ok(())
    }

    /// Apply a batch of update events in order, skipping deletions of edges
    /// that do not exist (which can happen with randomly generated mixed
    /// streams). Returns the number of events actually applied.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> usize {
        let mut applied = 0;
        for event in batch.events() {
            let ok = match *event {
                UpdateEvent::Delete { src, dst } => self.delete_edge(src, dst).is_ok(),
                ref other => self.apply(other).is_ok(),
            };
            if ok {
                applied += 1;
            }
        }
        applied
    }

    /// Build a static CSR snapshot of the current graph state.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_dynamic(self)
    }

    /// Iterator over all `(src, edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, &Edge)> {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(v, adj)| adj.edges().iter().map(move |e| (v as VertexId, e)))
    }

    /// Total heap memory used by adjacency storage.
    pub fn memory_bytes(&self) -> usize {
        self.adjacency
            .iter()
            .map(AdjacencyList::memory_bytes)
            .sum::<usize>()
            + self.adjacency.capacity() * std::mem::size_of::<AdjacencyList>()
    }
}

/// Build the 6-vertex running example used throughout the paper
/// (Figures 1, 2 and 4). Vertex 2's out-edges are `(2,1,5)`, `(2,4,4)`,
/// `(2,5,3)`; the remaining edges complete snapshot 1 of Figure 1.
pub fn running_example() -> DynamicGraph {
    let mut g = DynamicGraph::new(6);
    let edges: [(VertexId, VertexId, u64); 8] = [
        (0, 1, 6),
        (0, 2, 7),
        (1, 2, 5),
        (2, 1, 5),
        (2, 4, 4),
        (2, 5, 3),
        (3, 2, 5),
        (4, 3, 1),
    ];
    for (s, d, w) in edges {
        g.insert_edge(s, d, Bias::from_int(w))
            .expect("running example edges are valid");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_empty() {
        let g = DynamicGraph::new(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn insert_and_query_edges() {
        let mut g = DynamicGraph::new(6);
        g.insert_edge(2, 1, Bias::from_int(5)).unwrap();
        g.insert_edge(2, 4, Bias::from_int(4)).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.neighbors(2).unwrap().total_bias(), 9.0);
    }

    #[test]
    fn insert_rejects_bad_input() {
        let mut g = DynamicGraph::new(2);
        assert!(matches!(
            g.insert_edge(0, 5, Bias::from_int(1)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.insert_edge(5, 0, Bias::from_int(1)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.insert_edge(0, 1, Bias::from_int(0)),
            Err(GraphError::InvalidBias { .. })
        ));
        assert!(matches!(
            g.insert_edge(0, 1, Bias::from_float(-2.0)),
            Err(GraphError::InvalidBias { .. })
        ));
    }

    #[test]
    fn duplicate_edges_are_allowed() {
        let mut g = DynamicGraph::new(3);
        g.insert_edge(0, 1, Bias::from_int(1)).unwrap();
        g.insert_edge(0, 1, Bias::from_int(2)).unwrap();
        assert_eq!(g.degree(0), 2);
        // Deleting removes the first matching copy only.
        g.delete_edge(0, 1).unwrap();
        assert_eq!(g.degree(0), 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn delete_edge_swaps_and_reports() {
        let mut g = super::running_example();
        let out = g.delete_edge(2, 1).unwrap();
        assert_eq!(out.removed.dst, 1);
        assert_eq!(out.removed_index, 0);
        assert_eq!(out.moved_from, Some(2));
        assert_eq!(g.degree(2), 2);
        assert!(!g.has_edge(2, 1));
        assert!(matches!(
            g.delete_edge(2, 1),
            Err(GraphError::EdgeNotFound { .. })
        ));
    }

    #[test]
    fn delete_edge_at_index() {
        let mut g = super::running_example();
        let before = g.num_edges();
        g.delete_edge_at(2, 1).unwrap();
        assert_eq!(g.num_edges(), before - 1);
        assert!(g.delete_edge_at(2, 10).is_err());
    }

    #[test]
    fn update_bias_returns_old_value() {
        let mut g = super::running_example();
        let old = g.update_bias(2, 4, Bias::from_int(9)).unwrap();
        assert_eq!(old.value(), 4.0);
        assert!(g.update_bias(2, 99, Bias::from_int(1)).is_err());
        assert!(g.update_bias(2, 4, Bias::from_int(0)).is_err());
    }

    #[test]
    fn undirected_insert_adds_both_directions() {
        let mut g = DynamicGraph::new(3);
        g.insert_undirected_edge(0, 1, Bias::from_int(2)).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn ensure_and_add_vertices() {
        let mut g = DynamicGraph::new(2);
        g.ensure_vertices(5);
        assert_eq!(g.num_vertices(), 5);
        g.ensure_vertices(3); // no shrink
        assert_eq!(g.num_vertices(), 5);
        let v = g.add_vertex();
        assert_eq!(v, 5);
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn apply_events_roundtrip() {
        let mut g = DynamicGraph::new(4);
        g.apply(&UpdateEvent::Insert {
            src: 0,
            dst: 1,
            bias: Bias::from_int(3),
        })
        .unwrap();
        g.apply(&UpdateEvent::UpdateBias {
            src: 0,
            dst: 1,
            bias: Bias::from_int(7),
        })
        .unwrap();
        assert_eq!(g.neighbors(0).unwrap().edge(0).unwrap().bias.value(), 7.0);
        g.apply(&UpdateEvent::Delete { src: 0, dst: 1 }).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert!(g.apply(&UpdateEvent::Delete { src: 0, dst: 1 }).is_err());
    }

    #[test]
    fn running_example_matches_paper() {
        let g = super::running_example();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 8);
        let adj = g.neighbors(2).unwrap();
        assert_eq!(adj.degree(), 3);
        assert_eq!(adj.total_bias(), 12.0);
        assert_eq!(adj.max_bias(), 5.0);
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = super::running_example();
        assert_eq!(g.edges().count(), 8);
        let from_two: Vec<VertexId> = g
            .edges()
            .filter(|(s, _)| *s == 2)
            .map(|(_, e)| e.dst)
            .collect();
        assert_eq!(from_two, vec![1, 4, 5]);
    }

    #[test]
    fn memory_accounting_is_positive_after_inserts() {
        let mut g = DynamicGraph::new(10);
        for i in 0..9u32 {
            g.insert_edge(0, i + 1, Bias::from_int(1)).unwrap();
        }
        assert!(g.memory_bytes() > 0);
    }
}

//! Static CSR (compressed sparse row) snapshots.
//!
//! The baselines the paper compares against (gSampler in particular) operate
//! on static snapshots that are rebuilt after every batch of updates.
//! [`CsrGraph`] is that snapshot format: an offsets array plus flat
//! destination and bias arrays.

use crate::dynamic_graph::DynamicGraph;
use crate::{Bias, VertexId};

/// A read-only CSR snapshot of a [`DynamicGraph`].
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    dsts: Vec<VertexId>,
    biases: Vec<f64>,
}

impl CsrGraph {
    /// Build a CSR snapshot from the current state of a dynamic graph.
    /// `O(V + E)`.
    pub fn from_dynamic(graph: &DynamicGraph) -> Self {
        let n = graph.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dsts = Vec::with_capacity(graph.num_edges());
        let mut biases = Vec::with_capacity(graph.num_edges());
        offsets.push(0);
        for v in 0..n {
            let adj = graph
                .neighbors(v as VertexId)
                .expect("vertex index within range");
            for e in adj.edges() {
                dsts.push(e.dst);
                biases.push(e.bias.value());
            }
            offsets.push(dsts.len());
        }
        CsrGraph {
            offsets,
            dsts,
            biases,
        }
    }

    /// Build directly from offset / destination / bias arrays.
    ///
    /// Panics in debug builds if the arrays are inconsistent; intended for
    /// tests and generators that already hold CSR data.
    pub fn from_parts(offsets: Vec<usize>, dsts: Vec<VertexId>, biases: Vec<f64>) -> Self {
        debug_assert_eq!(dsts.len(), biases.len());
        debug_assert_eq!(*offsets.last().unwrap_or(&0), dsts.len());
        CsrGraph {
            offsets,
            dsts,
            biases,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    /// Out-degree of `v` (0 for out-of-range vertices).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return 0;
        }
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Destinations of `v`'s out-edges.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return &[];
        }
        &self.dsts[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Biases of `v`'s out-edges, parallel to [`CsrGraph::neighbors`].
    #[inline]
    pub fn biases(&self, v: VertexId) -> &[f64] {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return &[];
        }
        &self.biases[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Convert the snapshot back into a dynamic graph (used by baselines that
    /// "reload" the graph after updates).
    pub fn to_dynamic(&self) -> DynamicGraph {
        let mut g = DynamicGraph::new(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            for (d, b) in self.neighbors(v).iter().zip(self.biases(v)) {
                g.insert_edge(v, *d, Bias::from_float(*b))
                    .expect("CSR data is valid");
            }
        }
        g
    }

    /// Total heap memory used by the snapshot.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.dsts.capacity() * std::mem::size_of::<VertexId>()
            + self.biases.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic_graph::running_example;

    #[test]
    fn csr_matches_dynamic_graph() {
        let g = running_example();
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(csr.degree(v), g.degree(v));
            let dyn_dsts: Vec<VertexId> = g
                .neighbors(v)
                .unwrap()
                .edges()
                .iter()
                .map(|e| e.dst)
                .collect();
            assert_eq!(csr.neighbors(v), dyn_dsts.as_slice());
        }
        assert_eq!(csr.biases(2), &[5.0, 4.0, 3.0]);
    }

    #[test]
    fn out_of_range_vertex_has_empty_neighbors() {
        let csr = running_example().to_csr();
        assert_eq!(csr.degree(100), 0);
        assert!(csr.neighbors(100).is_empty());
        assert!(csr.biases(100).is_empty());
    }

    #[test]
    fn round_trip_through_dynamic() {
        let g = running_example();
        let back = g.to_csr().to_dynamic();
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.degree(2), 3);
        assert!((back.neighbors(2).unwrap().total_bias() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn from_parts_builds_expected_shape() {
        let csr = CsrGraph::from_parts(vec![0, 2, 2, 3], vec![1, 2, 0], vec![1.0, 2.0, 3.0]);
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 0);
        assert_eq!(csr.neighbors(2), &[0]);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = DynamicGraph::new(0);
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert!(csr.memory_bytes() < 1024);
    }
}

//! Two-phase delete-and-swap compaction (§5.2, Figure 10(b)).
//!
//! Deleting many entries from a compact array by naive swap-with-tail breaks
//! when the tail entry chosen as filler is itself scheduled for deletion.
//! Bingo's batched deleter solves this in two phases:
//!
//! 1. Look only at the last `N` slots (`N` = number of deletions). Drop the
//!    deletions that already live there (`γ` of them) — they disappear when
//!    the array is truncated.
//! 2. The remaining `N − γ` tail slots hold survivors, and exactly `N − γ`
//!    deletions target the front region; pair them up so every front hole is
//!    filled by a tail survivor that is guaranteed not to be deleted.
//!
//! On the GPU the paper stages the tail in shared memory; here the same
//! algorithm runs as a deterministic in-place compaction whose `(from, to)`
//! moves are reported back so index structures built on top of the array
//! (Bingo's radix groups and inverted indices) can be patched.

/// Compact `items` by removing the entries at `delete_positions`.
///
/// Returns the list of `(from, to)` moves applied to surviving entries so
/// callers can remap any external indices. Duplicate and out-of-range
/// positions are ignored. The relative order of surviving entries is *not*
/// preserved (this is a swap-based compaction, like the streaming
/// delete-and-swap).
pub fn two_phase_delete_and_swap<T>(
    items: &mut Vec<T>,
    delete_positions: &[usize],
) -> Vec<(usize, usize)> {
    let len = items.len();
    // Deduplicate and bound-check the deletion set.
    let mut delete: Vec<usize> = delete_positions
        .iter()
        .copied()
        .filter(|&p| p < len)
        .collect();
    delete.sort_unstable();
    delete.dedup();
    let n = delete.len();
    if n == 0 {
        return Vec::new();
    }
    let tail_start = len - n;

    // Phase 1: deletions that fall into the tail region are dropped for free
    // when we truncate. Identify the tail survivors.
    let mut is_deleted_tail = vec![false; n];
    let mut front_deletes = Vec::new();
    for &p in &delete {
        if p >= tail_start {
            is_deleted_tail[p - tail_start] = true;
        } else {
            front_deletes.push(p);
        }
    }
    let tail_survivors: Vec<usize> = (tail_start..len)
        .filter(|&p| !is_deleted_tail[p - tail_start])
        .collect();
    debug_assert_eq!(front_deletes.len(), tail_survivors.len());

    // Phase 2: fill every front hole with a tail survivor.
    let mut moves = Vec::with_capacity(front_deletes.len());
    for (&hole, &survivor) in front_deletes.iter().zip(tail_survivors.iter()) {
        items.swap(hole, survivor);
        moves.push((survivor, hole));
    }
    items.truncate(tail_start);
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(len: usize, delete: &[usize]) {
        let original: Vec<usize> = (0..len).collect();
        let mut items = original.clone();
        let moves = two_phase_delete_and_swap(&mut items, delete);
        // Expected surviving set.
        let mut expected: Vec<usize> = original
            .iter()
            .copied()
            .filter(|v| !delete.contains(v))
            .collect();
        let mut got = items.clone();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected, "survivors mismatch for delete={delete:?}");
        // Moves must reference valid positions and deleted slots as targets.
        for &(from, to) in &moves {
            assert!(
                from >= items.len(),
                "move source {from} should be in the old tail"
            );
            assert!(
                to < items.len(),
                "move target {to} must be in the compacted range"
            );
        }
    }

    #[test]
    fn deleting_nothing_is_a_noop() {
        let mut items = vec![1, 2, 3];
        let moves = two_phase_delete_and_swap(&mut items, &[]);
        assert!(moves.is_empty());
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn paper_figure_10b_example() {
        // Figure 10(b): 10 elements, delete entry 0 while entry 9 is also
        // deleted — entry 9 must NOT be used as filler.
        let mut items: Vec<usize> = (0..10).collect();
        let moves = two_phase_delete_and_swap(&mut items, &[0, 9]);
        assert_eq!(items.len(), 8);
        assert!(!items.contains(&0));
        assert!(!items.contains(&9));
        // Entry 0 must have been filled by the surviving tail element 8.
        assert_eq!(moves, vec![(8, 0)]);
        assert_eq!(items[0], 8);
    }

    #[test]
    fn all_deletions_in_tail_produce_no_moves() {
        let mut items: Vec<usize> = (0..6).collect();
        let moves = two_phase_delete_and_swap(&mut items, &[4, 5]);
        assert!(moves.is_empty());
        assert_eq!(items, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_deletions_in_front_move_tail_forward() {
        let mut items: Vec<usize> = (0..6).collect();
        let moves = two_phase_delete_and_swap(&mut items, &[0, 1]);
        assert_eq!(moves.len(), 2);
        assert_eq!(items.len(), 4);
        assert!(!items.contains(&0) && !items.contains(&1));
    }

    #[test]
    fn delete_everything() {
        let mut items: Vec<usize> = (0..5).collect();
        let moves = two_phase_delete_and_swap(&mut items, &[0, 1, 2, 3, 4]);
        assert!(items.is_empty());
        assert!(moves.is_empty());
    }

    #[test]
    fn duplicates_and_out_of_range_are_ignored() {
        let mut items: Vec<usize> = (0..4).collect();
        let moves = two_phase_delete_and_swap(&mut items, &[1, 1, 99]);
        assert_eq!(items.len(), 3);
        assert!(!items.contains(&1));
        assert_eq!(moves, vec![(3, 1)]);
    }

    #[test]
    fn exhaustive_small_cases() {
        // Every deletion subset of arrays up to length 8.
        for len in 1..=8usize {
            for mask in 0u32..(1 << len) {
                let delete: Vec<usize> = (0..len).filter(|i| mask & (1 << i) != 0).collect();
                check(len, &delete);
            }
        }
    }

    #[test]
    fn large_random_like_case() {
        let len = 1000;
        // Delete every third element plus a chunk of the tail.
        let delete: Vec<usize> = (0..len).filter(|i| i % 3 == 0 || *i > 950).collect();
        check(len, &delete);
    }
}

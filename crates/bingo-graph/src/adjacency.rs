//! Per-vertex dynamic adjacency arrays.
//!
//! Each vertex owns a compact array of [`Edge`] records. Insertion appends
//! (`O(1)` amortized) and deletion swap-removes (`O(1)`), matching the
//! dynamic-array design Bingo adopts from Hornet. Edges are addressed both
//! by destination vertex and by *neighbor index* — the position in the
//! array — because Bingo's radix groups store neighbor indices, not ids
//! (§4.2).

use crate::{Bias, VertexId};

/// One outgoing edge: destination vertex and sampling bias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination vertex.
    pub dst: VertexId,
    /// Sampling bias (transition weight).
    pub bias: Bias,
}

impl Edge {
    /// Create an edge.
    pub fn new(dst: VertexId, bias: Bias) -> Self {
        Edge { dst, bias }
    }
}

/// The outcome of a swap-delete on an adjacency list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapDelete {
    /// The edge that was removed.
    pub removed: Edge,
    /// Index the edge occupied before removal.
    pub removed_index: usize,
    /// If another edge was moved into `removed_index` to keep the array
    /// compact, its *previous* index (always the old last index).
    pub moved_from: Option<usize>,
}

/// A dynamic adjacency list for a single vertex.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdjacencyList {
    edges: Vec<Edge>,
}

/// Edges removed by [`AdjacencyList::delete_many`], paired with the
/// neighbor index they occupied.
pub type RemovedEdges = Vec<(usize, Edge)>;
/// `(from, to)` index moves applied to surviving edges during compaction.
pub type EdgeMoves = Vec<(usize, usize)>;

impl AdjacencyList {
    /// Create an empty adjacency list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an adjacency list with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        AdjacencyList {
            edges: Vec::with_capacity(capacity),
        }
    }

    /// Number of outgoing edges (the vertex degree).
    #[inline]
    pub fn degree(&self) -> usize {
        self.edges.len()
    }

    /// Whether the vertex has no outgoing edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edge at neighbor index `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> Option<&Edge> {
        self.edges.get(i)
    }

    /// All edges in neighbor-index order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over `(neighbor_index, edge)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Edge)> {
        self.edges.iter().enumerate()
    }

    /// Sum of all edge biases.
    pub fn total_bias(&self) -> f64 {
        self.edges.iter().map(|e| e.bias.value()).sum()
    }

    /// Maximum edge bias (0.0 when empty).
    pub fn max_bias(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.bias.value())
            .fold(0.0, f64::max)
    }

    /// Find the neighbor index of the first edge pointing at `dst`.
    pub fn find(&self, dst: VertexId) -> Option<usize> {
        self.edges.iter().position(|e| e.dst == dst)
    }

    /// Append an edge, returning its neighbor index.
    pub fn push(&mut self, edge: Edge) -> usize {
        self.edges.push(edge);
        self.edges.len() - 1
    }

    /// Swap-remove the edge at neighbor index `i`.
    ///
    /// Returns `None` if `i` is out of bounds. The last edge (if any) is
    /// moved into position `i`, which callers must mirror in any structure
    /// that stores neighbor indices (Bingo's inverted index does exactly
    /// this).
    pub fn swap_delete(&mut self, i: usize) -> Option<SwapDelete> {
        if i >= self.edges.len() {
            return None;
        }
        let last = self.edges.len() - 1;
        let removed = self.edges.swap_remove(i);
        let moved_from = if i < last { Some(last) } else { None };
        Some(SwapDelete {
            removed,
            removed_index: i,
            moved_from,
        })
    }

    /// Delete many edges at once using the two-phase delete-and-swap
    /// compaction of §5.2 (Figure 10(b)).
    ///
    /// Returns the removed edges (paired with the neighbor index they
    /// occupied) and the `(from, to)` moves applied to surviving edges, so
    /// index structures built on top of the adjacency list can be patched.
    pub fn delete_many(&mut self, neighbor_indices: &[usize]) -> (RemovedEdges, EdgeMoves) {
        let removed: Vec<(usize, Edge)> = neighbor_indices
            .iter()
            .copied()
            .filter(|&i| i < self.edges.len())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|i| (i, self.edges[i]))
            .collect();
        let moves = crate::compaction::two_phase_delete_and_swap(&mut self.edges, neighbor_indices);
        (removed, moves)
    }

    /// Replace the bias of the edge at neighbor index `i`. Returns the old
    /// bias, or `None` if out of bounds.
    pub fn set_bias(&mut self, i: usize, bias: Bias) -> Option<Bias> {
        let edge = self.edges.get_mut(i)?;
        let old = edge.bias;
        edge.bias = bias;
        Some(old)
    }

    /// Bytes of heap memory used by this adjacency list.
    pub fn memory_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<Edge>()
    }
}

impl FromIterator<Edge> for AdjacencyList {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        AdjacencyList {
            edges: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_list() -> AdjacencyList {
        // Vertex 2 of the running example: (2,1,5), (2,4,4), (2,5,3).
        [
            Edge::new(1, Bias::from_int(5)),
            Edge::new(4, Bias::from_int(4)),
            Edge::new(5, Bias::from_int(3)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn push_and_degree() {
        let mut adj = AdjacencyList::new();
        assert!(adj.is_empty());
        assert_eq!(adj.push(Edge::new(1, Bias::from_int(5))), 0);
        assert_eq!(adj.push(Edge::new(4, Bias::from_int(4))), 1);
        assert_eq!(adj.degree(), 2);
        assert!(!adj.is_empty());
    }

    #[test]
    fn totals_match_running_example() {
        let adj = sample_list();
        assert_eq!(adj.total_bias(), 12.0);
        assert_eq!(adj.max_bias(), 5.0);
        assert_eq!(adj.degree(), 3);
    }

    #[test]
    fn find_locates_destination() {
        let adj = sample_list();
        assert_eq!(adj.find(4), Some(1));
        assert_eq!(adj.find(99), None);
    }

    #[test]
    fn swap_delete_middle_moves_last() {
        let mut adj = sample_list();
        let out = adj.swap_delete(0).unwrap();
        assert_eq!(out.removed.dst, 1);
        assert_eq!(out.removed_index, 0);
        assert_eq!(out.moved_from, Some(2));
        // Edge to 5 moved into slot 0.
        assert_eq!(adj.edge(0).unwrap().dst, 5);
        assert_eq!(adj.degree(), 2);
    }

    #[test]
    fn swap_delete_tail_moves_nothing() {
        let mut adj = sample_list();
        let out = adj.swap_delete(2).unwrap();
        assert_eq!(out.removed.dst, 5);
        assert_eq!(out.moved_from, None);
        assert_eq!(adj.degree(), 2);
    }

    #[test]
    fn swap_delete_out_of_bounds_is_none() {
        let mut adj = sample_list();
        assert!(adj.swap_delete(3).is_none());
        assert_eq!(adj.degree(), 3);
    }

    #[test]
    fn set_bias_replaces_and_returns_old() {
        let mut adj = sample_list();
        let old = adj.set_bias(1, Bias::from_int(9)).unwrap();
        assert_eq!(old.value(), 4.0);
        assert_eq!(adj.edge(1).unwrap().bias.value(), 9.0);
        assert!(adj.set_bias(7, Bias::from_int(1)).is_none());
    }

    #[test]
    fn iter_yields_indices_in_order() {
        let adj = sample_list();
        let idxs: Vec<usize> = adj.iter().map(|(i, _)| i).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
    }

    #[test]
    fn delete_many_removes_requested_edges() {
        let mut adj = sample_list();
        adj.push(Edge::new(7, Bias::from_int(2)));
        let (removed, moves) = adj.delete_many(&[0, 3]);
        assert_eq!(removed.len(), 2);
        let removed_dsts: Vec<VertexId> = removed.iter().map(|(_, e)| e.dst).collect();
        assert_eq!(removed_dsts, vec![1, 7]);
        assert_eq!(adj.degree(), 2);
        assert!(adj.find(1).is_none());
        assert!(adj.find(7).is_none());
        // Slot 0 was refilled by a surviving tail edge.
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].1, 0);
    }

    #[test]
    fn delete_many_with_empty_set_is_noop() {
        let mut adj = sample_list();
        let (removed, moves) = adj.delete_many(&[]);
        assert!(removed.is_empty());
        assert!(moves.is_empty());
        assert_eq!(adj.degree(), 3);
    }

    #[test]
    fn memory_grows_with_capacity() {
        let small = AdjacencyList::with_capacity(2);
        let large = AdjacencyList::with_capacity(1000);
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}

//! Edge bias values.
//!
//! The paper supports both integer biases — radix-decomposed directly — and
//! floating-point biases, which are scaled by an amortization factor λ and
//! split into an integer part (radix groups) and a decimal remainder
//! (a dedicated group, §4.3). [`Bias`] is a thin wrapper over `f64` that
//! remembers whether the value was constructed as an integer, so the engine
//! can skip the λ machinery when it is not needed.

/// A non-negative edge bias (transition weight).
// serde derives were dropped: the offline build environment has no serde,
// and nothing in the workspace serializes biases yet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bias {
    value: f64,
    integral: bool,
}

impl Bias {
    /// Construct a bias from an integer weight.
    pub fn from_int(value: u64) -> Self {
        Bias {
            value: value as f64,
            integral: true,
        }
    }

    /// Construct a bias from a floating-point weight.
    ///
    /// Values that happen to be whole numbers are still tracked as
    /// floating-point; use [`Bias::from_int`] for the integer path.
    pub fn from_float(value: f64) -> Self {
        Bias {
            value,
            integral: false,
        }
    }

    /// The numeric value of the bias.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether the bias was constructed as an integer.
    #[inline]
    pub fn is_integral(&self) -> bool {
        self.integral
    }

    /// Whether the bias is valid for sampling: finite and strictly positive.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.value.is_finite() && self.value > 0.0
    }

    /// The integer part of the bias after scaling by `lambda`
    /// (the λ amortization factor of §4.3).
    #[inline]
    pub fn scaled_integer_part(&self, lambda: f64) -> u64 {
        (self.value * lambda).floor() as u64
    }

    /// The fractional remainder of the bias after scaling by `lambda`.
    #[inline]
    pub fn scaled_fraction(&self, lambda: f64) -> f64 {
        let scaled = self.value * lambda;
        scaled - scaled.floor()
    }

    /// The bias as a raw integer, if it was constructed as one.
    pub fn as_int(&self) -> Option<u64> {
        if self.integral {
            Some(self.value as u64)
        } else {
            None
        }
    }
}

impl From<u64> for Bias {
    fn from(v: u64) -> Self {
        Bias::from_int(v)
    }
}

impl From<f64> for Bias {
    fn from(v: f64) -> Self {
        Bias::from_float(v)
    }
}

impl std::fmt::Display for Bias {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.integral {
            write!(f, "{}", self.value as u64)
        } else {
            write!(f, "{}", self.value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_bias_round_trips() {
        let b = Bias::from_int(5);
        assert_eq!(b.value(), 5.0);
        assert!(b.is_integral());
        assert_eq!(b.as_int(), Some(5));
        assert!(b.is_valid());
        assert_eq!(format!("{b}"), "5");
    }

    #[test]
    fn float_bias_is_not_integral() {
        let b = Bias::from_float(0.554);
        assert!(!b.is_integral());
        assert_eq!(b.as_int(), None);
        assert!(b.is_valid());
    }

    #[test]
    fn invalid_biases_detected() {
        assert!(!Bias::from_float(0.0).is_valid());
        assert!(!Bias::from_float(-1.0).is_valid());
        assert!(!Bias::from_float(f64::NAN).is_valid());
        assert!(!Bias::from_float(f64::INFINITY).is_valid());
        assert!(!Bias::from_int(0).is_valid());
    }

    #[test]
    fn lambda_scaling_matches_paper_example() {
        // Paper §4.3: bias 0.554 with λ = 10 → integer part 5, fraction 0.54.
        let b = Bias::from_float(0.554);
        assert_eq!(b.scaled_integer_part(10.0), 5);
        assert!((b.scaled_fraction(10.0) - 0.54).abs() < 1e-9);

        let b = Bias::from_float(0.726);
        assert_eq!(b.scaled_integer_part(10.0), 7);
        assert!((b.scaled_fraction(10.0) - 0.26).abs() < 1e-9);

        let b = Bias::from_float(0.32);
        assert_eq!(b.scaled_integer_part(10.0), 3);
        assert!((b.scaled_fraction(10.0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn integer_bias_has_no_fraction_at_unit_lambda() {
        let b = Bias::from_int(13);
        assert_eq!(b.scaled_integer_part(1.0), 13);
        assert_eq!(b.scaled_fraction(1.0), 0.0);
    }

    #[test]
    fn from_impls() {
        let a: Bias = 7u64.into();
        let b: Bias = 7.5f64.into();
        assert!(a.is_integral());
        assert!(!b.is_integral());
    }
}

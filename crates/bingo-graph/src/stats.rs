//! Graph and bias statistics.
//!
//! The evaluation repeatedly reasons about degree and bias *distributions*:
//! Table 2 characterizes the datasets by average/maximum degree, Figure 9
//! derives group populations from the bias distribution, and the paper's
//! default bias assignment relies on real-graph degrees "naturally following
//! a power law". This module computes those summaries for any
//! [`DynamicGraph`], so the stand-in generators can be validated against the
//! real datasets' published shapes.

use crate::{DynamicGraph, VertexId};

/// Summary statistics of a graph's structure and biases.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Number of isolated (zero out-degree) vertices.
    pub isolated_vertices: usize,
    /// Minimum, mean and maximum edge bias.
    pub bias_min: f64,
    /// Mean edge bias.
    pub bias_mean: f64,
    /// Maximum edge bias.
    pub bias_max: f64,
    /// Estimated power-law exponent of the degree distribution (log-log
    /// regression slope over the degree histogram); `None` when the graph
    /// has too few distinct degrees to fit.
    pub degree_powerlaw_alpha: Option<f64>,
}

/// Compute the out-degree histogram: `histogram[d]` = number of vertices of
/// degree `d`.
pub fn degree_histogram(graph: &DynamicGraph) -> Vec<usize> {
    let mut histogram = vec![0usize; graph.max_degree() + 1];
    for v in 0..graph.num_vertices() as VertexId {
        histogram[graph.degree(v)] += 1;
    }
    histogram
}

/// Cumulative degree distribution: fraction of vertices with degree ≤ d.
pub fn degree_cdf(graph: &DynamicGraph) -> Vec<f64> {
    let histogram = degree_histogram(graph);
    let n: usize = histogram.iter().sum();
    if n == 0 {
        return Vec::new();
    }
    let mut cdf = Vec::with_capacity(histogram.len());
    let mut running = 0usize;
    for count in histogram {
        running += count;
        cdf.push(running as f64 / n as f64);
    }
    cdf
}

/// Fit a power-law exponent to a histogram by least-squares regression in
/// log-log space, ignoring empty buckets and bucket zero. Returns `None`
/// when fewer than three non-empty buckets exist.
pub fn fit_powerlaw_exponent(histogram: &[usize]) -> Option<f64> {
    let points: Vec<(f64, f64)> = histogram
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, &count)| count > 0)
        .map(|(degree, &count)| ((degree as f64).ln(), (count as f64).ln()))
        .collect();
    if points.len() < 3 {
        return None;
    }
    let n = points.len() as f64;
    let sum_x: f64 = points.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = points.iter().map(|(_, y)| y).sum();
    let sum_xx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sum_xy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sum_xy - sum_x * sum_y) / denom;
    // P(d) ∝ d^-α  →  slope = -α.
    Some(-slope)
}

/// Compute the full [`GraphSummary`] of a graph.
pub fn summarize(graph: &DynamicGraph) -> GraphSummary {
    let mut isolated = 0usize;
    for v in 0..graph.num_vertices() as VertexId {
        if graph.degree(v) == 0 {
            isolated += 1;
        }
    }
    let mut bias_min = f64::INFINITY;
    let mut bias_max: f64 = 0.0;
    let mut bias_sum = 0.0;
    let mut edges = 0usize;
    for (_, e) in graph.edges() {
        let b = e.bias.value();
        bias_min = bias_min.min(b);
        bias_max = bias_max.max(b);
        bias_sum += b;
        edges += 1;
    }
    if edges == 0 {
        bias_min = 0.0;
    }
    GraphSummary {
        vertices: graph.num_vertices(),
        edges,
        avg_degree: graph.avg_degree(),
        max_degree: graph.max_degree(),
        isolated_vertices: isolated,
        bias_min,
        bias_mean: if edges == 0 {
            0.0
        } else {
            bias_sum / edges as f64
        },
        bias_max,
        degree_powerlaw_alpha: fit_powerlaw_exponent(&degree_histogram(graph)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic_graph::running_example;
    use crate::generators::{BiasDistribution, GraphGenerator};
    use crate::Bias;

    #[test]
    fn histogram_and_cdf_of_running_example() {
        let g = running_example();
        let histogram = degree_histogram(&g);
        // Degrees: v0=2, v1=1, v2=3, v3=1, v4=1, v5=0.
        assert_eq!(histogram, vec![1, 3, 1, 1]);
        let cdf = degree_cdf(&g);
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
        assert!((cdf[1] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_running_example() {
        let s = summarize(&running_example());
        assert_eq!(s.vertices, 6);
        assert_eq!(s.edges, 8);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.isolated_vertices, 1);
        assert_eq!(s.bias_min, 1.0);
        assert_eq!(s.bias_max, 7.0);
        assert!((s.bias_mean - 36.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_summary_is_well_defined() {
        let s = summarize(&DynamicGraph::new(3));
        assert_eq!(s.edges, 0);
        assert_eq!(s.bias_min, 0.0);
        assert_eq!(s.bias_mean, 0.0);
        assert_eq!(s.isolated_vertices, 3);
        assert_eq!(s.degree_powerlaw_alpha, None);
        assert!(degree_cdf(&DynamicGraph::new(0)).is_empty());
    }

    #[test]
    fn powerlaw_fit_recovers_a_synthetic_exponent() {
        // Histogram following count(d) = C · d^-2 exactly.
        let histogram: Vec<usize> = (0..200)
            .map(|d| {
                if d == 0 {
                    0
                } else {
                    ((1_000_000.0 / (d as f64 * d as f64)).round()) as usize
                }
            })
            .collect();
        let alpha = fit_powerlaw_exponent(&histogram).unwrap();
        assert!((alpha - 2.0).abs() < 0.1, "estimated alpha {alpha}");
        assert_eq!(fit_powerlaw_exponent(&[0, 5]), None);
    }

    #[test]
    fn rmat_graphs_are_detectably_skewed_and_er_graphs_are_not() {
        struct Sm(u64);
        impl rand::RngCore for Sm {
            fn next_u32(&mut self) -> u32 {
                (self.next_u64() >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let b = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
            }
            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }
        let mut rng = Sm(1);
        let rmat = GraphGenerator::RMat {
            scale: 11,
            avg_degree: 8,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
        .generate(BiasDistribution::Constant(1), &mut rng);
        let er = GraphGenerator::ErdosRenyi {
            vertices: 2048,
            edges: 2048 * 8,
        }
        .generate(BiasDistribution::Constant(1), &mut rng);
        let rmat_summary = summarize(&rmat);
        let er_summary = summarize(&er);
        // The R-MAT graph's max degree should be far above the ER graph's.
        assert!(rmat_summary.max_degree > 2 * er_summary.max_degree);
        let _ = Bias::from_int(1);
    }
}

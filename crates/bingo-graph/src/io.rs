//! Edge-list I/O.
//!
//! The paper loads its datasets from SNAP / KONECT edge lists. This module
//! reads and writes the same plain-text format:
//!
//! ```text
//! # comment lines start with '#' or '%'
//! <src> <dst> [bias]
//! ```
//!
//! When the bias column is missing, a bias of 1 is used. Vertex ids may be
//! sparse; the loader sizes the graph to the largest id seen.

use crate::{Bias, DynamicGraph, GraphError, Result, VertexId};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parse an edge list from any reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DynamicGraph> {
    let mut edges: Vec<(VertexId, VertexId, Bias)> = Vec::new();
    let mut max_vertex: VertexId = 0;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src = parse_vertex(parts.next(), line_no + 1, "missing source vertex")?;
        let dst = parse_vertex(parts.next(), line_no + 1, "missing destination vertex")?;
        let bias = match parts.next() {
            None => Bias::from_int(1),
            Some(tok) => {
                if let Ok(int) = tok.parse::<u64>() {
                    Bias::from_int(int)
                } else {
                    let f = tok.parse::<f64>().map_err(|_| GraphError::Parse {
                        line: line_no + 1,
                        message: format!("invalid bias '{tok}'"),
                    })?;
                    Bias::from_float(f)
                }
            }
        };
        if !bias.is_valid() {
            return Err(GraphError::Parse {
                line: line_no + 1,
                message: "bias must be positive and finite".to_string(),
            });
        }
        max_vertex = max_vertex.max(src).max(dst);
        edges.push((src, dst, bias));
    }
    let mut graph = DynamicGraph::new(if edges.is_empty() {
        0
    } else {
        max_vertex as usize + 1
    });
    for (src, dst, bias) in edges {
        graph.insert_edge(src, dst, bias)?;
    }
    Ok(graph)
}

fn parse_vertex(token: Option<&str>, line: usize, message: &str) -> Result<VertexId> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        message: message.to_string(),
    })?;
    token.parse::<VertexId>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid vertex id '{token}'"),
    })
}

/// Load an edge list from a file path.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<DynamicGraph> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Write the graph as an edge list (with biases) to any writer.
pub fn write_edge_list<W: Write>(graph: &DynamicGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# bingo edge list: src dst bias")?;
    for (src, edge) in graph.edges() {
        writeln!(w, "{} {} {}", src, edge.dst, edge.bias)?;
    }
    w.flush()?;
    Ok(())
}

/// Save the graph as an edge list to a file path.
pub fn save_edge_list<P: AsRef<Path>>(graph: &DynamicGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic_graph::running_example;

    #[test]
    fn parses_basic_edge_list() {
        let text = "# comment\n% another comment\n0 1 5\n1 2 3\n\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0).unwrap().edge(0).unwrap().bias.value(), 5.0);
        // Missing bias column defaults to 1.
        assert_eq!(g.neighbors(2).unwrap().edge(0).unwrap().bias.value(), 1.0);
    }

    #[test]
    fn parses_float_biases() {
        let text = "0 1 0.554\n1 0 0.726\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        let b = g.neighbors(0).unwrap().edge(0).unwrap().bias;
        assert!(!b.is_integral());
        assert!((b.value() - 0.554).abs() < 1e-12);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let bad_vertex = "0 x 1\n";
        match read_edge_list(bad_vertex.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_bias = "0 1 1\n0 1 -3\n";
        match read_edge_list(bad_bias.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let missing = "0\n";
        assert!(matches!(
            read_edge_list(missing.as_bytes()),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing here\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let g = running_example();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.neighbors(2).unwrap().total_bias(), 12.0);
    }

    #[test]
    fn file_round_trip() {
        let g = running_example();
        let path = std::env::temp_dir().join("bingo_io_test_edges.txt");
        save_edge_list(&g, &path).unwrap();
        let back = load_edge_list(&path).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
        assert!(load_edge_list("/nonexistent/path/xyz").is_err());
    }
}

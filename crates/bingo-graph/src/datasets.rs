//! Scaled-down stand-ins for the paper's evaluation datasets.
//!
//! Table 2 of the paper lists five real-world graphs (Amazon, Google,
//! Citation, LiveJournal, Twitter) with up to 1.47 billion edges. Downloading
//! and processing those graphs is outside the scope of a laptop-scale
//! reproduction, so this module generates synthetic stand-ins whose *shape*
//! (relative size ordering, average degree, and degree skew) matches the
//! originals at a configurable scale factor. The benchmark harness reports
//! both the original statistics and the stand-in statistics so the
//! substitution is always visible.

use crate::generators::{BiasDistribution, GraphGenerator};
use crate::DynamicGraph;
use rand::Rng;

/// Static description of one of the paper's datasets (Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Full dataset name as used in the paper.
    pub name: &'static str,
    /// Two-letter abbreviation used in the figures.
    pub abbrev: &'static str,
    /// Vertex count of the real dataset.
    pub paper_vertices: u64,
    /// Edge count of the real dataset.
    pub paper_edges: u64,
    /// Average degree reported in Table 2.
    pub paper_avg_degree: f64,
    /// Maximum degree reported in Table 2.
    pub paper_max_degree: u64,
}

/// The five evaluation graphs, in the order used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandinDataset {
    /// Amazon product co-purchase graph (AM).
    Amazon,
    /// Google web graph (GO).
    Google,
    /// Patent citation graph (CT).
    Citation,
    /// LiveJournal social network (LJ).
    LiveJournal,
    /// Twitter follower graph (TW).
    Twitter,
}

impl StandinDataset {
    /// All five datasets in paper order.
    pub fn all() -> [StandinDataset; 5] {
        [
            StandinDataset::Amazon,
            StandinDataset::Google,
            StandinDataset::Citation,
            StandinDataset::LiveJournal,
            StandinDataset::Twitter,
        ]
    }

    /// The real dataset's statistics from Table 2.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            StandinDataset::Amazon => DatasetSpec {
                name: "Amazon",
                abbrev: "AM",
                paper_vertices: 403_400,
                paper_edges: 3_400_000,
                paper_avg_degree: 8.4,
                paper_max_degree: 10,
            },
            StandinDataset::Google => DatasetSpec {
                name: "Google",
                abbrev: "GO",
                paper_vertices: 875_700,
                paper_edges: 5_100_000,
                paper_avg_degree: 5.8,
                paper_max_degree: 456,
            },
            StandinDataset::Citation => DatasetSpec {
                name: "Citation",
                abbrev: "CT",
                paper_vertices: 3_800_000,
                paper_edges: 16_500_000,
                paper_avg_degree: 4.4,
                paper_max_degree: 770,
            },
            StandinDataset::LiveJournal => DatasetSpec {
                name: "LiveJournal",
                abbrev: "LJ",
                paper_vertices: 4_800_000,
                paper_edges: 68_500_000,
                paper_avg_degree: 14.3,
                paper_max_degree: 20_300,
            },
            StandinDataset::Twitter => DatasetSpec {
                name: "Twitter",
                abbrev: "TW",
                paper_vertices: 41_700_000,
                paper_edges: 1_468_400_000,
                paper_avg_degree: 35.2,
                paper_max_degree: 770_200,
            },
        }
    }

    /// The generator used for the stand-in at the given scale.
    ///
    /// `scale` is a divisor applied to the vertex count; `scale = 1000` turns
    /// LiveJournal's 4.8 M vertices into a 4.8 K-vertex stand-in. Degree
    /// structure is preserved: Amazon is near-uniform (bounded max degree),
    /// while the others are skewed R-MAT graphs whose skew grows with the
    /// dataset (mirroring the max-degree column of Table 2).
    pub fn generator(&self, scale: u64) -> GraphGenerator {
        let spec = self.spec();
        let scale = scale.max(1);
        let vertices = ((spec.paper_vertices / scale).max(512)) as usize;
        let avg_degree = spec.paper_avg_degree.round().max(2.0) as usize;
        match self {
            // Amazon has an almost flat degree distribution (max degree 10).
            StandinDataset::Amazon => GraphGenerator::ErdosRenyi {
                vertices,
                edges: vertices * avg_degree,
            },
            // The web / citation / social graphs are increasingly skewed.
            StandinDataset::Google => GraphGenerator::RMat {
                scale: log2_ceil(vertices),
                avg_degree,
                a: 0.50,
                b: 0.22,
                c: 0.22,
            },
            StandinDataset::Citation => GraphGenerator::RMat {
                scale: log2_ceil(vertices),
                avg_degree,
                a: 0.52,
                b: 0.21,
                c: 0.21,
            },
            StandinDataset::LiveJournal => GraphGenerator::RMat {
                scale: log2_ceil(vertices),
                avg_degree,
                a: 0.57,
                b: 0.19,
                c: 0.19,
            },
            StandinDataset::Twitter => GraphGenerator::RMat {
                scale: log2_ceil(vertices),
                avg_degree,
                a: 0.61,
                b: 0.18,
                c: 0.18,
            },
        }
    }

    /// Generate the stand-in graph with the paper's default bias assignment
    /// (degree-derived biases, which follow a power law on these graphs).
    pub fn build<R: Rng + ?Sized>(&self, scale: u64, rng: &mut R) -> DynamicGraph {
        self.generator(scale)
            .generate(BiasDistribution::DegreeBased, rng)
    }

    /// Generate the stand-in with an explicit bias distribution.
    pub fn build_with_bias<R: Rng + ?Sized>(
        &self,
        scale: u64,
        bias: BiasDistribution,
        rng: &mut R,
    ) -> DynamicGraph {
        self.generator(scale).generate(bias, rng)
    }
}

fn log2_ceil(n: usize) -> u32 {
    (usize::BITS - n.next_power_of_two().leading_zeros()).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;

    #[test]
    fn all_lists_five_datasets_in_order() {
        let all = StandinDataset::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].spec().abbrev, "AM");
        assert_eq!(all[4].spec().abbrev, "TW");
    }

    #[test]
    fn specs_match_table_2() {
        let lj = StandinDataset::LiveJournal.spec();
        assert_eq!(lj.paper_vertices, 4_800_000);
        assert_eq!(lj.paper_edges, 68_500_000);
        assert!((lj.paper_avg_degree - 14.3).abs() < 1e-9);
        let tw = StandinDataset::Twitter.spec();
        assert_eq!(tw.paper_max_degree, 770_200);
    }

    #[test]
    fn size_ordering_is_preserved_by_standins() {
        let mut rng = StepRng::new(3, 0x9E3779B97F4A7C15);
        let sizes: Vec<usize> = StandinDataset::all()
            .iter()
            .map(|d| d.build(2000, &mut rng).num_edges())
            .collect();
        // Twitter stand-in must be the largest, Amazon near the smallest.
        assert!(sizes[4] > sizes[3]);
        assert!(sizes[3] > sizes[0]);
    }

    #[test]
    fn standin_graphs_are_nonempty_and_connected_enough() {
        let mut rng = StepRng::new(11, 0x2545F4914F6CDD1D);
        for d in StandinDataset::all() {
            let g = d.build(4000, &mut rng);
            assert!(g.num_vertices() >= 512);
            assert!(g.num_edges() > g.num_vertices());
        }
    }

    #[test]
    fn log2_ceil_is_correct() {
        assert_eq!(log2_ceil(512), 9);
        assert_eq!(log2_ceil(513), 10);
        assert_eq!(log2_ceil(1024), 10);
    }

    #[test]
    fn skewed_standins_have_higher_max_degree_than_amazon() {
        let mut rng = StepRng::new(17, 0x9E3779B97F4A7C15);
        let am = StandinDataset::Amazon.build(400, &mut rng);
        let lj = StandinDataset::LiveJournal.build(4000, &mut rng);
        let am_skew = am.max_degree() as f64 / am.avg_degree();
        let lj_skew = lj.max_degree() as f64 / lj.avg_degree();
        assert!(lj_skew > am_skew);
    }
}

//! `flight` — a lock-free bounded ring of structured runtime events.
//!
//! The flight recorder is the post-mortem counterpart to the sampled
//! [`Tracer`](crate::Tracer): instead of following individual walkers it
//! records *rare, load-bearing* runtime transitions — a steal executing, a
//! `Saturated` bounce, an AIMD window change, an epoch advance, a shard
//! parking or unparking, a watchdog trip. Events carry a **relative tick**
//! (the monotonically increasing record index), never a wall-clock
//! timestamp, so recording from inside the deterministic pipeline stays
//! determinism-lint-clean.
//!
//! The ring is a fixed array of per-slot seqlocks: a writer claims a slot
//! with one `fetch_add` on the head counter, marks the slot's sequence odd
//! while the payload words are in flight, and marks it even (encoding the
//! claiming tick) when done. Readers snapshot without blocking writers and
//! simply skip torn slots. When the ring wraps, the oldest events are
//! overwritten and counted by [`FlightRecorder::dropped`].
//!
//! On panic, [`FlightRecorder::install_panic_hook`] dumps the ring to
//! stderr so a wedged CI run leaves a diagnosable trail.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One structured runtime event. Payload fields are small integers so the
/// record path is a handful of atomic stores — cheap enough to leave on
/// even in release runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A shard (`thief`) stole a batch of `walkers` from `victim`'s inbox.
    StealExecuted {
        /// Shard that executed the steal.
        thief: u64,
        /// Shard the batch was taken from.
        victim: u64,
        /// Walkers moved by the steal.
        walkers: u64,
    },
    /// An admission attempt bounced with `Saturated` at `shard` whose
    /// inbox sat at `depth` walkers.
    SaturatedBounce {
        /// Shard that refused admission.
        shard: u64,
        /// Inbox depth observed at the bounce.
        depth: u64,
    },
    /// The gateway's AIMD in-flight window moved to `window`.
    WindowChange {
        /// New window size in walkers.
        window: u64,
    },
    /// `shard` applied an update batch and advanced to `epoch`.
    EpochAdvance {
        /// Shard that advanced.
        shard: u64,
        /// Epoch after the advance.
        epoch: u64,
    },
    /// `shard`'s task drained its inbox and returned to the idle state.
    ShardPark {
        /// Shard that parked.
        shard: u64,
    },
    /// `shard` was scheduled onto the pool after new work arrived.
    ShardUnpark {
        /// Shard that was scheduled.
        shard: u64,
    },
    /// The stall watchdog observed `shard` holding `depth` queued walkers
    /// without progress past the stall threshold.
    WatchdogTrip {
        /// Shard flagged as stalled.
        shard: u64,
        /// Inbox depth at the trip.
        depth: u64,
    },
}

impl FlightEventKind {
    fn encode(self) -> (u64, u64, u64, u64) {
        match self {
            FlightEventKind::StealExecuted {
                thief,
                victim,
                walkers,
            } => (1, thief, victim, walkers),
            FlightEventKind::SaturatedBounce { shard, depth } => (2, shard, depth, 0),
            FlightEventKind::WindowChange { window } => (3, window, 0, 0),
            FlightEventKind::EpochAdvance { shard, epoch } => (4, shard, epoch, 0),
            FlightEventKind::ShardPark { shard } => (5, shard, 0, 0),
            FlightEventKind::ShardUnpark { shard } => (6, shard, 0, 0),
            FlightEventKind::WatchdogTrip { shard, depth } => (7, shard, depth, 0),
        }
    }

    fn decode(code: u64, a: u64, b: u64, c: u64) -> Option<Self> {
        Some(match code {
            1 => FlightEventKind::StealExecuted {
                thief: a,
                victim: b,
                walkers: c,
            },
            2 => FlightEventKind::SaturatedBounce { shard: a, depth: b },
            3 => FlightEventKind::WindowChange { window: a },
            4 => FlightEventKind::EpochAdvance { shard: a, epoch: b },
            5 => FlightEventKind::ShardPark { shard: a },
            6 => FlightEventKind::ShardUnpark { shard: a },
            7 => FlightEventKind::WatchdogTrip { shard: a, depth: b },
            _ => return None,
        })
    }

    /// Stable lowercase tag for the event kind (used by dumps and docs).
    pub fn tag(&self) -> &'static str {
        match self {
            FlightEventKind::StealExecuted { .. } => "steal",
            FlightEventKind::SaturatedBounce { .. } => "saturated",
            FlightEventKind::WindowChange { .. } => "window",
            FlightEventKind::EpochAdvance { .. } => "epoch",
            FlightEventKind::ShardPark { .. } => "park",
            FlightEventKind::ShardUnpark { .. } => "unpark",
            FlightEventKind::WatchdogTrip { .. } => "watchdog-trip",
        }
    }

    fn render(&self) -> String {
        match *self {
            FlightEventKind::StealExecuted {
                thief,
                victim,
                walkers,
            } => format!("steal thief={thief} victim={victim} walkers={walkers}"),
            FlightEventKind::SaturatedBounce { shard, depth } => {
                format!("saturated shard={shard} depth={depth}")
            }
            FlightEventKind::WindowChange { window } => format!("window window={window}"),
            FlightEventKind::EpochAdvance { shard, epoch } => {
                format!("epoch shard={shard} epoch={epoch}")
            }
            FlightEventKind::ShardPark { shard } => format!("park shard={shard}"),
            FlightEventKind::ShardUnpark { shard } => format!("unpark shard={shard}"),
            FlightEventKind::WatchdogTrip { shard, depth } => {
                format!("watchdog-trip shard={shard} depth={depth}")
            }
        }
    }
}

/// A decoded flight-recorder event: a relative tick plus the event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Record index at which the event was written. Ticks are relative and
    /// monotonic, not wall-clock times: event `t+1` was recorded after
    /// event `t`, nothing more.
    pub tick: u64,
    /// The recorded event.
    pub kind: FlightEventKind,
}

impl FlightEvent {
    /// One-line rendering, e.g. `[42] steal thief=1 victim=0 walkers=8`.
    pub fn render(&self) -> String {
        format!("[{}] {}", self.tick, self.kind.render())
    }
}

/// One ring slot: a seqlock over four payload words. `seq == 0` means the
/// slot has never been written; odd means a write is in flight; even
/// `2*tick + 2` means tick `tick`'s payload is complete.
struct Slot {
    seq: AtomicU64,
    code: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            code: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

struct Ring {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// The bounded, lock-free flight recorder. Cloning shares the ring.
#[derive(Clone)]
pub struct FlightRecorder {
    ring: Arc<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Arc::new(Ring {
                head: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Slot::empty()).collect(),
            }),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.slots.len()
    }

    /// Record one event. Wait-free: one `fetch_add` plus five stores.
    pub fn record(&self, kind: FlightEventKind) {
        // The tick counter orders events; payload visibility is carried by
        // the seq Release stores below.
        let tick = self.ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.ring.slots[(tick % self.ring.slots.len() as u64) as usize];
        let (code, a, b, c) = kind.encode();
        // Odd seq: payload in flight — readers skip the slot.
        slot.seq.store(tick * 2 + 1, Ordering::Release);
        slot.code.store(code, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        // Even seq encodes the claiming tick, so a reader can pair the
        // payload with its tick and detect overwrites between its loads.
        slot.seq.store(tick * 2 + 2, Ordering::Release);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.ring.head.load(Ordering::Acquire)
    }

    /// Events lost to ring wraparound: everything recorded beyond the
    /// ring's capacity has overwritten an older slot.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Snapshot the ring's readable events, oldest first. Slots with a
    /// write in flight (or overwritten mid-read) are skipped rather than
    /// reported torn.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.capacity());
        for slot in self.ring.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in flight
            }
            let code = slot.code.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let c = slot.c.load(Ordering::Relaxed);
            let s2 = slot.seq.load(Ordering::Acquire);
            if s1 != s2 {
                continue; // overwritten between the two seq loads
            }
            let tick = s1 / 2 - 1;
            if let Some(kind) = FlightEventKind::decode(code, a, b, c) {
                out.push(FlightEvent { tick, kind });
            }
        }
        out.sort_by_key(|e| e.tick);
        out
    }

    /// Human-readable dump of the ring: a header with capacity, recorded
    /// and dropped counts, then one line per readable event.
    pub fn dump(&self) -> String {
        let events = self.events();
        let mut out = format!(
            "flight recorder: {} events (capacity {}, {} recorded, {} dropped)\n",
            events.len(),
            self.capacity(),
            self.recorded(),
            self.dropped()
        );
        for event in &events {
            out.push_str(&event.render());
            out.push('\n');
        }
        out
    }

    /// Install a process-wide panic hook that dumps this ring to stderr
    /// (chaining the previously installed hook), so a panicking run leaves
    /// its last recorded events in the log.
    pub fn install_panic_hook(&self) {
        let sink: Box<dyn Write + Send> = Box::new(StderrSink);
        self.install_panic_hook_to(Arc::new(Mutex::new_named(sink, "telemetry.flight.sink")));
    }

    /// [`install_panic_hook`](Self::install_panic_hook) with an explicit
    /// sink instead of stderr. Exposed so tests can assert on the dumped
    /// bytes without capturing the process's stderr.
    pub fn install_panic_hook_to(&self, sink: Arc<Mutex<Box<dyn Write + Send>>>) {
        let recorder = self.clone();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            {
                let mut sink = sink.lock();
                let _ = writeln!(sink, "{}", recorder.dump().trim_end());
                let _ = sink.flush();
            }
            previous(info);
        }));
    }
}

/// Forwarder so the stderr handle is resolved at write time, not capture
/// time (test harnesses replace stderr per test).
struct StderrSink;

impl Write for StderrSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        std::io::stderr().write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::stderr().flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_in_order() {
        let rec = FlightRecorder::new(8);
        rec.record(FlightEventKind::ShardUnpark { shard: 0 });
        rec.record(FlightEventKind::StealExecuted {
            thief: 1,
            victim: 0,
            walkers: 8,
        });
        rec.record(FlightEventKind::ShardPark { shard: 0 });
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].tick, 0);
        assert_eq!(events[1].kind.tag(), "steal");
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let rec = FlightRecorder::new(4);
        for shard in 0..10u64 {
            rec.record(FlightEventKind::ShardPark { shard });
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        // The surviving ticks are the newest four.
        let ticks: Vec<u64> = events.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_mentions_counts() {
        let rec = FlightRecorder::new(2);
        rec.record(FlightEventKind::WindowChange { window: 64 });
        let dump = rec.dump();
        assert!(dump.contains("capacity 2"));
        assert!(dump.contains("window window=64"));
    }
}

//! Deterministic log2-bucketed histograms.
//!
//! Every recorded value lands in one of [`NUM_BUCKETS`] fixed buckets:
//! bucket 0 holds the value `0`, and bucket `i >= 1` holds the half-open
//! range `[2^(i-1), 2^i)`. The boundaries are a pure function of the value
//! — no configuration, no dynamic resizing, no floating point — so two
//! histograms recorded on different platforms, different thread counts, or
//! different runs bucket identical values identically, and their snapshots
//! [`merge`](HistogramSnapshot::merge) by plain bucket-wise addition
//! (associative and commutative, exercised by the tier-1 tests).
//!
//! Quantiles are reported as the **lower edge** of the bucket containing
//! the requested rank. That makes them conservative (never above the true
//! value's bucket) and *exact* whenever the recorded values sit on bucket
//! edges: a histogram of `2^k`s reports `p50 == 2^k`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one for `0`, one per bit position of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: `0 -> 0`, else `1 + floor(log2(value))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive lower edge of bucket `i` (the value `quantile` reports).
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// The shared, lock-free recording core of a histogram. Handles returned
/// by the registry point at one of these; recording is a pair of relaxed
/// `fetch_add`s.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    /// A fresh, empty core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram's buckets. Snapshots from different
/// shards/processes merge by bucket-wise addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; NUM_BUCKETS],
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The raw per-bucket counts (`buckets[i]` counts values in
    /// `[2^(i-1), 2^i)`, bucket 0 counts zeros).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// The lower edge of the bucket containing the `q`-quantile value
    /// (`q` in `[0, 1]`; 0 when the histogram is empty). Exact when the
    /// recorded values are powers of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(NUM_BUCKETS - 1)
    }

    /// Lower edge of the highest non-empty bucket (0 when empty).
    pub fn max_bucket_edge(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(bucket_lower_bound)
            .unwrap_or(0)
    }

    /// One-line summary: `count=… p50=… p90=… p99=… max≈…` (values are in
    /// the recorded unit, typically nanoseconds).
    pub fn render(&self) -> String {
        format!(
            "count={} mean={:.0} p50={} p90={} p99={} max≈{}",
            self.count(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.max_bucket_edge(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_log2_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "lower edge of {i}");
        }
    }

    #[test]
    fn quantiles_exact_at_bucket_edges() {
        let core = HistogramCore::new();
        for _ in 0..100 {
            core.record(1 << 10);
        }
        let snap = core.snapshot();
        assert_eq!(snap.quantile(0.0), 1 << 10);
        assert_eq!(snap.quantile(0.5), 1 << 10);
        assert_eq!(snap.quantile(1.0), 1 << 10);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = HistogramCore::new();
        let b = HistogramCore::new();
        a.record(5);
        b.record(5);
        b.record(900);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 910);
        assert_eq!(merged.buckets()[bucket_index(5)], 2);
        assert_eq!(merged.buckets()[bucket_index(900)], 1);
    }
}

//! The metrics registry: named, labeled metrics with mergeable snapshots.
//!
//! Registration (name → shared atomic core) takes a mutex, but it happens
//! once per metric at construction time; the [`Counter`]/[`Gauge`]/
//! [`Histogram`] handles it returns record lock-free ever after. Metric
//! identity is `(name, labels)`: the name comes from the stable taxonomy
//! in [`crate::names`], per-instance dimensions (shard index, tenant) go
//! in labels.
//!
//! [`RegistrySnapshot`] is an ordered point-in-time copy that merges with
//! other snapshots (counters/gauges add, histograms add bucket-wise) and
//! renders three ways: a human-readable table ([`RegistrySnapshot::render`]),
//! Prometheus-style exposition text ([`RegistrySnapshot::to_prometheus`]),
//! and one-line JSON ([`RegistrySnapshot::to_json`]).

use crate::hist::HistogramCore;
use crate::json::{JsonArray, JsonObject};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::HistogramSnapshot;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A metric's identity: taxonomy name plus ordered `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Taxonomy name, e.g. `service.shard.steps`.
    pub name: String,
    /// Ordered label pairs, e.g. `[("shard", "2")]`.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key from a name and label pairs.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<HistogramCore>),
}

/// The shared metric store. Cheap to clone (`Arc` inside); all clones see
/// the same metrics.
#[derive(Clone)]
pub struct Registry {
    slots: Arc<Mutex<BTreeMap<MetricKey, Slot>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            slots: Arc::new(Mutex::new_named(
                BTreeMap::new(),
                "telemetry.registry.slots",
            )),
        }
    }

    fn slot<T>(
        &self,
        key: MetricKey,
        make: impl FnOnce() -> Slot,
        view: impl FnOnce(&Slot) -> Option<T>,
    ) -> T {
        let mut slots = self.slots.lock();
        let slot = slots.entry(key.clone()).or_insert_with(make);
        view(slot).unwrap_or_else(|| panic!("metric {key} registered with a different kind"))
    }

    /// The counter registered under `(name, labels)`, creating it at zero
    /// on first use. Panics if the key is registered as another kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.slot(
            MetricKey::new(name, labels),
            || Slot::Counter(Counter::new()),
            |s| match s {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge registered under `(name, labels)`, creating it at zero on
    /// first use. Panics if the key is registered as another kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.slot(
            MetricKey::new(name, labels),
            || Slot::Gauge(Gauge::new()),
            |s| match s {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram registered under `(name, labels)`, creating it empty
    /// on first use. Panics if the key is registered as another kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.slot(
            MetricKey::new(name, labels),
            || Slot::Histogram(Arc::new(HistogramCore::new())),
            |s| match s {
                Slot::Histogram(core) => Some(Histogram::active(Arc::clone(core))),
                _ => None,
            },
        )
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let slots = self.slots.lock();
        RegistrySnapshot {
            entries: slots
                .iter()
                .map(|(key, slot)| {
                    let value = match slot {
                        Slot::Counter(c) => MetricValue::Counter(c.get()),
                        Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                        Slot::Histogram(core) => MetricValue::Histogram(core.snapshot()),
                    };
                    (key.clone(), value)
                })
                .collect(),
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.slots.lock().len();
        write!(f, "Registry({n} metrics)")
    }
}

/// A snapshot value: one of the three metric kinds.
// Snapshot values live on the cold exposition path and most entries in a
// detailed registry are histograms anyway, so boxing the large variant
// would add an allocation per entry without shrinking real snapshots.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram's buckets.
    Histogram(HistogramSnapshot),
}

/// An ordered point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Metric readings keyed by `(name, labels)`, in key order.
    pub entries: BTreeMap<MetricKey, MetricValue>,
}

impl RegistrySnapshot {
    /// The reading under `(name, labels)`, if present.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries.get(&MetricKey::new(name, labels))
    }

    /// The counter reading under `(name, labels)` (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge reading under `(name, labels)` (0 when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram under `(name, labels)` (empty when absent).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramSnapshot {
        match self.get(name, labels) {
            Some(MetricValue::Histogram(h)) => *h,
            _ => HistogramSnapshot::default(),
        }
    }

    /// The merged histogram across every labeled instance of `name`
    /// (bucket-wise sum; empty when none exist).
    pub fn histogram_across_labels(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for (key, value) in &self.entries {
            if key.name == name {
                if let MetricValue::Histogram(h) = value {
                    merged.merge(h);
                }
            }
        }
        merged
    }

    /// The summed counter across every labeled instance of `name`.
    pub fn counter_across_labels(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(key, _)| key.name == name)
            .map(|(_, value)| match value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Fold another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise, unknown keys are inserted. Associative
    /// and commutative, so shard- or process-local snapshots can be
    /// combined in any order.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (key, value) in &other.entries {
            match (self.entries.get_mut(key), value) {
                (Some(MetricValue::Counter(mine)), MetricValue::Counter(theirs)) => {
                    *mine += theirs;
                }
                (Some(MetricValue::Gauge(mine)), MetricValue::Gauge(theirs)) => {
                    *mine += theirs;
                }
                (Some(MetricValue::Histogram(mine)), MetricValue::Histogram(theirs)) => {
                    mine.merge(theirs);
                }
                (Some(_), _) => {} // kind mismatch: keep ours
                (None, value) => {
                    self.entries.insert(key.clone(), value.clone());
                }
            }
        }
    }

    /// Human-readable table, one metric per line in key order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{key:<58} {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{key:<58} {v}\n")),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("{key:<58} {}\n", h.render()));
                }
            }
        }
        out
    }

    /// Prometheus-style exposition text: dots in names become underscores,
    /// histograms expand to `_count`/`_sum` plus cumulative `_bucket{le=…}`
    /// series on the log2 bucket upper edges. Label values are escaped per
    /// the Prometheus text format ([`escape_prometheus_label`]), which is
    /// *not* JSON escaping.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            let name = key.name.replace('.', "_");
            let labels = |extra: Option<(&str, String)>| -> String {
                let mut pairs: Vec<String> = key
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{}\"", escape_prometheus_label(v)))
                    .collect();
                if let Some((k, v)) = extra {
                    pairs.push(format!("{k}=\"{v}\""));
                }
                if pairs.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", pairs.join(","))
                }
            };
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name}{} {v}\n", labels(None)));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name}{} {v}\n", labels(None)));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, &n) in h.buckets().iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        let le = if i + 1 < crate::hist::NUM_BUCKETS {
                            crate::hist::bucket_lower_bound(i + 1).to_string()
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            labels(Some(("le", le)))
                        ));
                    }
                    out.push_str(&format!("{name}_count{} {}\n", labels(None), h.count()));
                    out.push_str(&format!("{name}_sum{} {}\n", labels(None), h.sum()));
                }
            }
        }
        out
    }

    /// One-line JSON: `{"metric{label=\"v\"}": value, …}`; histograms
    /// serialize as `{count, sum, p50, p90, p99}`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        for (key, value) in &self.entries {
            let key_text = key.to_string();
            match value {
                MetricValue::Counter(v) => obj.field_num(&key_text, v),
                MetricValue::Gauge(v) => obj.field_num(&key_text, v),
                MetricValue::Histogram(h) => {
                    let mut inner = JsonObject::new();
                    inner
                        .field_num("count", h.count())
                        .field_num("sum", h.sum())
                        .field_num("p50", h.quantile(0.50))
                        .field_num("p90", h.quantile(0.90))
                        .field_num("p99", h.quantile(0.99));
                    obj.field_raw(&key_text, &inner.finish())
                }
            };
        }
        obj.finish()
    }

    /// `[p50, p99]` of the merged histogram under `name` (across labels),
    /// as a JSON array string — the shape the repro summaries embed.
    pub fn latency_json(&self, name: &str) -> String {
        let h = self.histogram_across_labels(name);
        let mut arr = JsonArray::new();
        arr.push_num(h.quantile(0.50)).push_num(h.quantile(0.99));
        arr.finish()
    }
}

/// Escape a label value per the Prometheus text exposition format: only
/// backslash, double-quote and line feed are escaped (`\\`, `\"`, `\n`);
/// every other byte — including tabs and other control characters — passes
/// through verbatim. This is deliberately *not* JSON escaping: JSON's
/// `\t`/`\r`/`\uXXXX` sequences are invalid in Prometheus label values and
/// make scrapers reject the whole exposition.
pub fn escape_prometheus_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_core_different_kind_panics() {
        let reg = Registry::new();
        let a = reg.counter("x.count", &[("shard", "0")]);
        let b = reg.counter("x.count", &[("shard", "0")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        let other = reg.counter("x.count", &[("shard", "1")]);
        assert_eq!(other.get(), 0);
        assert!(std::panic::catch_unwind(|| reg.gauge("x.count", &[("shard", "0")])).is_err());
    }

    #[test]
    fn snapshot_merge_adds() {
        let a = Registry::new();
        a.counter("c", &[]).add(2);
        a.gauge("g", &[]).set(-1);
        a.histogram("h", &[]).record(8);
        let b = Registry::new();
        b.counter("c", &[]).add(5);
        b.histogram("h", &[]).record(8);
        b.counter("only_b", &[]).add(1);

        let mut left = a.snapshot();
        left.merge(&b.snapshot());
        let mut right = b.snapshot();
        right.merge(&a.snapshot());
        assert_eq!(left, right, "merge is commutative");
        assert_eq!(left.counter("c", &[]), 7);
        assert_eq!(left.gauge("g", &[]), -1);
        assert_eq!(left.counter("only_b", &[]), 1);
        assert_eq!(left.histogram("h", &[]).count(), 2);
        assert_eq!(left.histogram("h", &[]).quantile(0.5), 8);
    }

    #[test]
    fn prometheus_label_escaping_is_text_format_not_json() {
        let reg = Registry::new();
        // Hostile label values: backslash, double-quote, newline, tab.
        reg.counter("evil.count", &[("tenant", "a\\b\"c\nd\te")])
            .add(1);
        let prom = reg.snapshot().to_prometheus();
        // Prometheus text format: \\ , \" , \n escaped; tab passes raw.
        assert!(
            prom.contains("evil_count{tenant=\"a\\\\b\\\"c\\nd\te\"} 1"),
            "bad exposition: {prom:?}"
        );
        // JSON-only sequences must not appear.
        assert!(!prom.contains("\\t"), "JSON tab escape leaked: {prom:?}");
        assert!(!prom.contains("\\u"), "JSON \\u escape leaked: {prom:?}");
        // The escaped newline keeps the sample on one physical line.
        let line = prom
            .lines()
            .find(|l| l.starts_with("evil_count"))
            .expect("sample rendered");
        assert!(line.ends_with(" 1"));
    }

    #[test]
    fn expositions_cover_all_kinds() {
        let reg = Registry::new();
        reg.counter("svc.steps", &[("shard", "0")]).add(10);
        reg.gauge("svc.lag", &[]).set(2);
        reg.histogram("svc.lat_ns", &[]).record(100);
        let snap = reg.snapshot();
        let render = snap.render();
        assert!(render.contains("svc.steps{shard=\"0\"}"));
        assert!(render.contains("p99=64"), "100 sits in [64,128): {render}");
        let prom = snap.to_prometheus();
        assert!(prom.contains("svc_steps{shard=\"0\"} 10"));
        assert!(prom.contains("svc_lat_ns_bucket{le=\"128\"} 1"));
        assert!(prom.contains("svc_lat_ns_count 1"));
        let json = snap.to_json();
        assert!(json.contains("\"svc.lag\":2"));
        assert!(json.contains("\"count\":1"));
    }
}

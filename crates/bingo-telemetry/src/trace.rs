//! Sampled walker lifecycle tracing.
//!
//! A walk that matters travels far: it is submitted (possibly through the
//! gateway's tenant queues and DRR dispatcher), visits one shard per
//! ownership range it enters, forwards itself across shards with a carried
//! context, and is finally absorbed by the collector. The [`Tracer`]
//! records that journey as a sequence of [`TraceEvent`]s keyed by
//! `(ticket, walker)` so the full lifecycle of one walk can be stitched
//! back together from a single dump — including the spans recorded by
//! *different shard threads and the gateway dispatcher*, which share
//! nothing but the ticket id.
//!
//! ## Sampling
//!
//! Tracing every walker would melt the hot path, so walkers are sampled
//! **deterministically**: a walker is traced iff
//! `splitmix(seed ^ ticket ^ walker) < u64::MAX / sample_one_in`. The
//! decision is a pure function of `(seed, ticket, walker)` — no RNG state,
//! no thread identity — so the sampled set is identical across runs,
//! thread counts and layers (the gateway and every shard independently
//! agree on whether a walker is sampled without coordinating).
//!
//! ## Bounding
//!
//! Events land in a bounded ring: when full, the **oldest** event is
//! evicted and counted in [`Tracer::dropped`]. Saturation therefore costs
//! recent history, never memory.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One stage of a walker's lifecycle. All fields are plain data so events
/// can be rendered, diffed and asserted on without touching the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceStage {
    /// The walker was created by a service submit and enqueued on its
    /// starting shard.
    Submit {
        /// Shard the walker starts on.
        shard: u32,
        /// Vertex the walk starts from.
        start: u64,
    },
    /// The gateway's DRR scheduler dispatched the chunk containing this
    /// walker to the service.
    GatewayDispatch {
        /// Owning tenant.
        tenant: String,
        /// Nanoseconds the chunk waited in the tenant queue.
        wait_ns: u64,
        /// The gateway-side ticket the walker belongs to.
        gateway_ticket: u64,
    },
    /// One visit on a shard: consecutive steps sampled before the walk
    /// finished or left the shard's ownership range.
    StepBatch {
        /// Shard that sampled the steps.
        shard: u32,
        /// Steps taken during this visit.
        steps: u32,
        /// The shard's update epoch at the end of the visit.
        epoch: u64,
    },
    /// The walker crossed an ownership boundary and was forwarded.
    ForwardHop {
        /// Shard that forwarded the walker.
        from_shard: u32,
        /// Shard that owns the walker's next vertex.
        to_shard: u32,
        /// Whether the carried context came from the wave-shared cache.
        cache_hit: bool,
        /// Context bytes billed for this hop.
        bytes: u64,
    },
    /// The finished walk was absorbed by the collector.
    Collect {
        /// Final path length (vertices).
        path_len: u32,
        /// Cross-shard hops the walker took.
        hops: u32,
        /// Nanoseconds from walk finish to absorption.
        latency_ns: u64,
    },
}

impl TraceStage {
    /// Compact single-token rendering, e.g. `step(s2 x5 @e3)`.
    pub fn render(&self) -> String {
        match self {
            TraceStage::Submit { shard, start } => format!("submit(s{shard} v{start})"),
            TraceStage::GatewayDispatch {
                tenant,
                wait_ns,
                gateway_ticket,
            } => format!("dispatch({tenant} g{gateway_ticket} wait={wait_ns}ns)"),
            TraceStage::StepBatch {
                shard,
                steps,
                epoch,
            } => format!("step(s{shard} x{steps} @e{epoch})"),
            TraceStage::ForwardHop {
                from_shard,
                to_shard,
                cache_hit,
                bytes,
            } => format!(
                "hop(s{from_shard}->s{to_shard} {} {bytes}B)",
                if *cache_hit { "hit" } else { "miss" }
            ),
            TraceStage::Collect {
                path_len,
                hops,
                latency_ns,
            } => format!("collect(len={path_len} hops={hops} {latency_ns}ns)"),
        }
    }
}

/// One recorded event: which walker, when (global sequence), what stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Service ticket the walker belongs to.
    pub ticket: u64,
    /// Walker index within the ticket.
    pub walker: u32,
    /// Global record order (monotonic across all threads).
    pub seq: u64,
    /// The lifecycle stage.
    pub stage: TraceStage,
}

const SPLIT_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a high-quality, platform-independent 64-bit mix.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The bounded, deterministically-sampling trace collector.
#[derive(Debug)]
pub struct Tracer {
    ring: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    seed: u64,
    /// Sampling threshold: a walker is traced iff its hash < threshold.
    threshold: u64,
}

impl Tracer {
    /// A tracer sampling one walker in `sample_one_in` (1 = every walker,
    /// 0 = none), keeping at most `capacity` events.
    pub fn new(seed: u64, sample_one_in: u64, capacity: usize) -> Self {
        let threshold = match sample_one_in {
            0 => 0,
            1 => u64::MAX,
            n => u64::MAX / n,
        };
        Tracer {
            ring: Mutex::new_named(
                std::collections::VecDeque::with_capacity(capacity.min(4096)),
                "telemetry.trace.ring",
            ),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            seed,
            threshold,
        }
    }

    /// Whether `(ticket, walker)` is in the sampled set. Pure function of
    /// the tracer seed — every layer agrees without coordination.
    #[inline]
    pub fn is_sampled(&self, ticket: u64, walker: u64) -> bool {
        if self.threshold == 0 {
            return false;
        }
        if self.threshold == u64::MAX {
            return true;
        }
        let h = splitmix(
            self.seed
                ^ ticket.wrapping_mul(SPLIT_GAMMA)
                ^ walker.rotate_left(32).wrapping_mul(SPLIT_GAMMA),
        );
        h < self.threshold
    }

    /// Record a stage for a sampled walker. Callers gate on
    /// [`is_sampled`](Tracer::is_sampled) (or a cached copy of its answer)
    /// before paying for event construction.
    pub fn record(&self, ticket: u64, walker: u32, stage: TraceStage) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            ticket,
            walker,
            seq,
            stage,
        };
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Number of events currently buffered (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the buffered events in record (seq) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self.ring.lock().iter().cloned().collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Buffered events grouped per walker: `(ticket, walker)` → events in
    /// seq order. This is the stitching step — spans recorded by different
    /// shards (and the gateway) join on the ticket id.
    pub fn lifecycles(&self) -> BTreeMap<(u64, u32), Vec<TraceEvent>> {
        let mut map: BTreeMap<(u64, u32), Vec<TraceEvent>> = BTreeMap::new();
        for event in self.events() {
            map.entry((event.ticket, event.walker))
                .or_default()
                .push(event);
        }
        map
    }

    /// Every *complete* lifecycle (has both a `Submit` and a `Collect`
    /// span) rendered as one `t<ticket>/w<walker>: stage -> stage -> …`
    /// line, in `(ticket, walker)` order. Incomplete lifecycles (evicted
    /// prefixes, in-flight walks) are omitted.
    pub fn complete_lifecycle_lines(&self) -> Vec<String> {
        self.lifecycles()
            .iter()
            .filter(|(_, events)| {
                events
                    .iter()
                    .any(|e| matches!(e.stage, TraceStage::Submit { .. }))
                    && events
                        .iter()
                        .any(|e| matches!(e.stage, TraceStage::Collect { .. }))
            })
            .map(|((ticket, walker), events)| {
                let chain: Vec<String> = events.iter().map(|e| e.stage.render()).collect();
                format!("t{ticket}/w{walker}: {}", chain.join(" -> "))
            })
            .collect()
    }

    /// Render every complete lifecycle (see
    /// [`complete_lifecycle_lines`](Tracer::complete_lifecycle_lines)) plus
    /// a trailing summary counting incomplete lifecycles and drops.
    pub fn dump(&self) -> String {
        let lifecycles = self.lifecycles();
        let lines = self.complete_lifecycle_lines();
        // Saturating: events recorded between the two ring reads could
        // otherwise make `lines` momentarily larger than `lifecycles`.
        let partial = lifecycles.len().saturating_sub(lines.len());
        let mut out = String::new();
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!(
            "({} lifecycles, {} partial, {} events dropped)\n",
            lifecycles.len(),
            partial,
            self.dropped()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_seed_dependent() {
        let a = Tracer::new(7, 8, 64);
        let b = Tracer::new(7, 8, 64);
        let c = Tracer::new(8, 8, 64);
        let set = |t: &Tracer| -> Vec<(u64, u64)> {
            (0..4u64)
                .flat_map(|ticket| (0..200u64).map(move |w| (ticket, w)))
                .filter(|&(ticket, w)| t.is_sampled(ticket, w))
                .collect()
        };
        assert_eq!(set(&a), set(&b), "same seed, same sampled set");
        assert_ne!(set(&a), set(&c), "different seed, different set");
        assert!(!set(&a).is_empty(), "1-in-8 over 800 walkers samples some");
        assert!(
            set(&a).len() < 400,
            "1-in-8 sampling keeps well under half: {}",
            set(&a).len()
        );
    }

    #[test]
    fn edge_rates() {
        let none = Tracer::new(1, 0, 64);
        let all = Tracer::new(1, 1, 64);
        assert!(!none.is_sampled(3, 4));
        assert!(all.is_sampled(3, 4));
    }

    #[test]
    fn ring_respects_bound_and_counts_drops() {
        let t = Tracer::new(0, 1, 8);
        for i in 0..100u32 {
            t.record(
                0,
                i,
                TraceStage::StepBatch {
                    shard: 0,
                    steps: 1,
                    epoch: 0,
                },
            );
        }
        assert_eq!(t.len(), 8);
        assert_eq!(t.dropped(), 92);
        let events = t.events();
        assert_eq!(events.first().map(|e| e.walker), Some(92), "oldest evicted");
    }

    #[test]
    fn lifecycles_stitch_by_ticket_and_walker() {
        let t = Tracer::new(0, 1, 64);
        t.record(5, 1, TraceStage::Submit { shard: 0, start: 9 });
        t.record(
            5,
            1,
            TraceStage::StepBatch {
                shard: 0,
                steps: 3,
                epoch: 1,
            },
        );
        // A different shard thread records the hop + next batch.
        t.record(
            5,
            1,
            TraceStage::ForwardHop {
                from_shard: 0,
                to_shard: 2,
                cache_hit: true,
                bytes: 16,
            },
        );
        t.record(
            5,
            1,
            TraceStage::Collect {
                path_len: 4,
                hops: 1,
                latency_ns: 10,
            },
        );
        // Noise from another walker.
        t.record(5, 2, TraceStage::Submit { shard: 1, start: 3 });
        let dump = t.dump();
        assert!(dump.contains("t5/w1: submit(s0 v9) -> step(s0 x3 @e1) -> hop(s0->s2 hit 16B) -> collect(len=4 hops=1 10ns)"),
            "stitched lifecycle missing from dump:\n{dump}");
        assert!(dump.contains("1 partial"), "walker 2 has no collect");
    }
}

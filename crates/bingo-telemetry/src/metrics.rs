//! Cheap, clonable metric handles.
//!
//! A handle is an `Arc` onto the shared atomic core held by the
//! [`Registry`](crate::Registry): hot paths resolve their handles once (at
//! construction time) and then record with a single atomic RMW — no name
//! lookup, no lock, no allocation.
//!
//! [`Counter`] and [`Gauge`] are always live: the serving stack's
//! `ServiceStats`/`GatewayStats` are views over them, so they cost exactly
//! what the pre-telemetry raw atomics cost. [`Histogram`] handles come in a
//! no-op flavour ([`Histogram::noop`]) that the disabled telemetry mode
//! hands out, making `record` a single branch on already-resident data.

use crate::hist::{HistogramCore, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value (relaxed).
    ///
    /// For mirroring a cumulative count accumulated elsewhere (e.g. the
    /// thread-pool shim's global profile cells) into the registry — the
    /// source stays authoritative, this handle is just its exposition view.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` with `Release` ordering, returning the **previous** value.
    ///
    /// For counters that *publish* state to other threads — the service's
    /// per-shard update epoch increments with `Release` after the batch is
    /// fully applied, so a reader that `Acquire`-loads the new epoch also
    /// sees the applied updates.
    #[inline]
    pub fn add_release(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Release)
    }

    /// Current value with `Acquire` ordering (pairs with
    /// [`add_release`](Counter::add_release)).
    #[inline]
    pub fn get_acquire(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A gauge: a value that can move both ways (queue depth, epoch lag).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge (relaxed).
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative), returning the **previous** value.
    #[inline]
    pub fn add(&self, n: i64) -> i64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Raise the gauge to `v` if `v` is larger (relaxed max).
    #[inline]
    pub fn raise(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram handle. May be a no-op (disabled telemetry):
/// `record` on a no-op handle is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A live histogram over `core`.
    pub fn active(core: Arc<HistogramCore>) -> Self {
        Histogram(Some(core))
    }

    /// A handle that drops every record (what disabled telemetry hands
    /// out; also the `Default`).
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether records are actually stored.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if let Some(core) = &self.0 {
            core.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A point-in-time copy (empty for a no-op handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map(|core| core.snapshot())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(c.add_release(2), 4);
        assert_eq!(c.get_acquire(), 6);

        let g = Gauge::new();
        g.set(10);
        assert_eq!(g.add(-3), 10);
        g.raise(5);
        assert_eq!(g.get(), 7);
        g.raise(20);
        assert_eq!(g.get(), 20);
    }

    #[test]
    fn noop_histogram_records_nothing() {
        let h = Histogram::noop();
        h.record(42);
        h.record_duration(Duration::from_millis(1));
        assert!(!h.is_enabled());
        assert_eq!(h.snapshot().count(), 0);
    }
}

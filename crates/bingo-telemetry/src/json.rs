//! A tiny dependency-free JSON writer.
//!
//! The bench harness, the CI-run examples and the registry's JSON
//! exposition all emit one-line machine-readable summaries; before this
//! module each emitter hand-rolled its own escaping and comma placement.
//! [`JsonObject`]/[`JsonArray`] centralize that: push fields in order, get
//! the serialized string back. Numbers are written via `Display`, so
//! callers keep full control over float formatting (pass a pre-formatted
//! `format!("{v:.4}")` through [`JsonObject::field_raw`] when a fixed
//! precision matters).

/// Escape a string for inclusion in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental `{…}` builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Add a string field (escaped and quoted).
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        let quoted = format!("\"{}\"", escape(value));
        self.key(key).push_str(&quoted);
        self
    }

    /// Add a numeric field (anything `Display`, written verbatim).
    pub fn field_num(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        let text = value.to_string();
        self.key(key).push_str(&text);
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key).push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already serialized JSON.
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key).push_str(json);
        self
    }

    /// Serialize to `{…}`.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental `[…]` builder.
#[derive(Debug, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    /// Start an empty array.
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        &mut self.buf
    }

    /// Push a string element (escaped and quoted).
    pub fn push_str_elem(&mut self, value: &str) -> &mut Self {
        let quoted = format!("\"{}\"", escape(value));
        self.sep().push_str(&quoted);
        self
    }

    /// Push a numeric element (anything `Display`, written verbatim).
    pub fn push_num(&mut self, value: impl std::fmt::Display) -> &mut Self {
        let text = value.to_string();
        self.sep().push_str(&text);
        self
    }

    /// Push an element that is already serialized JSON.
    pub fn push_raw(&mut self, json: &str) -> &mut Self {
        self.sep().push_str(json);
        self
    }

    /// Serialize to `[…]`.
    pub fn finish(&self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let mut inner = JsonArray::new();
        inner.push_num(1).push_num(2.5).push_str_elem("a\"b");
        let mut obj = JsonObject::new();
        obj.field_str("name", "line\nbreak")
            .field_num("count", 7)
            .field_bool("ok", true)
            .field_raw("items", &inner.finish());
        assert_eq!(
            obj.finish(),
            "{\"name\":\"line\\nbreak\",\"count\":7,\"ok\":true,\"items\":[1,2.5,\"a\\\"b\"]}"
        );
    }
}

//! Unified observability for the Bingo serving stack.
//!
//! Every layer — the sharded walk service, the multi-tenant gateway, the
//! parallel-runtime shim, the bench harness — records into one
//! [`Telemetry`] handle:
//!
//! * **Metrics** ([`Registry`]): named, labeled counters, gauges and
//!   deterministic log2-bucketed [`hist`] histograms. Registration takes a
//!   lock once per metric; recording is lock-free atomics. Snapshots merge
//!   (associative + commutative) and render as a table, Prometheus-style
//!   text, or one-line JSON. The name vocabulary lives in [`names`].
//! * **Tracing** ([`Tracer`]): per-walker lifecycle spans (submit → tenant
//!   queue → DRR dispatch → shard step batches → cross-shard forward hops
//!   → collection) in a bounded ring, with deterministic seeded sampling
//!   so every layer agrees on the sampled walker set without coordination.
//! * **Profiling**: the rayon-shim pool and the shard loops feed busy/idle
//!   nanos, batch-apply times and inbox dwell through the same registry.
//!
//! ## Modes
//!
//! [`Telemetry::disabled`] is the zero-added-cost mode: counters and
//! gauges stay live (the serving stack's `ServiceStats`/`GatewayStats` are
//! views over them, and they cost exactly what the pre-telemetry raw
//! atomics cost), while histogram handles become no-ops, `timer()` returns
//! `None` without reading the clock, and no tracer exists. The detailed
//! modes ([`Telemetry::enabled`], [`Telemetry::new`]) turn on latency
//! histograms and (optionally) lifecycle tracing.
//!
//! ```
//! use bingo_telemetry::{names, Telemetry, TraceStage};
//!
//! let tel = Telemetry::enabled(0xB1A5);
//! let steps = tel.counter_with(names::SERVICE_SHARD_STEPS, &[("shard", "0")]);
//! steps.add(128);
//! let lat = tel.histogram(names::SERVICE_COLLECT_NS);
//! lat.record(4096);
//! if tel.is_sampled(7, 0) {
//!     tel.trace(7, 0, TraceStage::Submit { shard: 0, start: 42 });
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter(names::SERVICE_SHARD_STEPS, &[("shard", "0")]), 128);
//! assert_eq!(snap.histogram(names::SERVICE_COLLECT_NS, &[]).quantile(0.5), 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod names;
pub mod registry;
pub mod trace;

pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use hist::{bucket_index, bucket_lower_bound, HistogramSnapshot, NUM_BUCKETS};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{MetricKey, MetricValue, Registry, RegistrySnapshot};
pub use trace::{TraceEvent, TraceStage, Tracer};

use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a [`Telemetry`] handle behaves. `Default` is the full detailed mode
/// with 1-in-64 trace sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record latency histograms and take timing stamps. When `false`,
    /// [`Telemetry::timer`] never reads the clock and histogram handles
    /// are no-ops.
    pub detailed: bool,
    /// Seed for the deterministic trace-sampling hash.
    pub trace_seed: u64,
    /// Sample one walker in this many (1 = every walker, 0 = tracing
    /// off). Ignored when `detailed` is `false`.
    pub trace_sample_one_in: u64,
    /// Ring-buffer bound on buffered trace events.
    pub trace_capacity: usize,
    /// Ring-buffer bound on flight-recorder events. The recorder is always
    /// live (recording a rare event is a handful of atomic stores), in
    /// every mode including [`Telemetry::disabled`].
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            detailed: true,
            trace_seed: 0xB1960,
            trace_sample_one_in: 64,
            trace_capacity: 65_536,
            flight_capacity: 1024,
        }
    }
}

struct Inner {
    registry: Registry,
    detailed: bool,
    tracer: Option<Tracer>,
    flight: FlightRecorder,
    started: Instant,
}

/// The shared observability handle threaded through the serving stack.
/// Cheap to clone; all clones record into the same registry and tracer.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("detailed", &self.inner.detailed)
            .field("tracing", &self.inner.tracer.is_some())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A handle with the given behaviour.
    pub fn new(config: TelemetryConfig) -> Self {
        let tracer = (config.detailed && config.trace_sample_one_in > 0).then(|| {
            Tracer::new(
                config.trace_seed,
                config.trace_sample_one_in,
                config.trace_capacity,
            )
        });
        Telemetry {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                detailed: config.detailed,
                tracer,
                flight: FlightRecorder::new(config.flight_capacity),
                started: Instant::now(),
            }),
        }
    }

    /// The zero-added-cost mode: live counters/gauges (stats views keep
    /// working), no histograms, no clock reads, no tracing.
    pub fn disabled() -> Self {
        Telemetry::new(TelemetryConfig {
            detailed: false,
            trace_sample_one_in: 0,
            ..TelemetryConfig::default()
        })
    }

    /// Full detailed mode: histograms plus 1-in-64 lifecycle tracing under
    /// the given sampling seed.
    pub fn enabled(trace_seed: u64) -> Self {
        Telemetry::new(TelemetryConfig {
            trace_seed,
            ..TelemetryConfig::default()
        })
    }

    /// Resolve the mode from the `BINGO_TELEMETRY` environment variable:
    /// `off`/`0` → [`disabled`](Telemetry::disabled), `on`/`1`/`trace` →
    /// [`enabled`](Telemetry::enabled) with `trace_seed`, anything else
    /// (including unset) → `default_detailed` decides.
    pub fn from_env(trace_seed: u64, default_detailed: bool) -> Self {
        let choice = std::env::var("BINGO_TELEMETRY").unwrap_or_default();
        let detailed = match choice.trim() {
            "off" | "0" => false,
            "on" | "1" | "trace" => true,
            _ => default_detailed,
        };
        if detailed {
            Telemetry::enabled(trace_seed)
        } else {
            Telemetry::disabled()
        }
    }

    /// Whether latency histograms and timing stamps are on.
    #[inline]
    pub fn is_detailed(&self) -> bool {
        self.inner.detailed
    }

    /// A timing stamp — `None` (without reading the clock) when not
    /// detailed. Pair with [`Histogram::record_duration`].
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.inner.detailed {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Time since this handle was created.
    pub fn uptime(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// The underlying registry (for bulk registration).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The counter under `name` (no labels). Always live.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.registry.counter(name, &[])
    }

    /// The counter under `(name, labels)`. Always live.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner.registry.counter(name, labels)
    }

    /// The gauge under `name` (no labels). Always live.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.registry.gauge(name, &[])
    }

    /// The gauge under `(name, labels)`. Always live.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner.registry.gauge(name, labels)
    }

    /// The histogram under `name` — a no-op handle (and no registry entry)
    /// when not detailed.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// The histogram under `(name, labels)` — a no-op handle (and no
    /// registry entry) when not detailed.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        if self.inner.detailed {
            self.inner.registry.histogram(name, labels)
        } else {
            Histogram::noop()
        }
    }

    /// The tracer, if lifecycle tracing is on.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.tracer.as_ref()
    }

    /// The flight recorder — always live, in every mode. See
    /// the [`crate::flight`] module for the event taxonomy.
    #[inline]
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Whether `(ticket, walker)` is in the sampled trace set (`false`
    /// when tracing is off).
    #[inline]
    pub fn is_sampled(&self, ticket: u64, walker: u64) -> bool {
        self.inner
            .tracer
            .as_ref()
            .is_some_and(|t| t.is_sampled(ticket, walker))
    }

    /// Record a lifecycle span for a sampled walker (no-op when tracing is
    /// off). Callers gate on [`is_sampled`](Telemetry::is_sampled) — or a
    /// cached copy of its answer — before building the stage.
    #[inline]
    pub fn trace(&self, ticket: u64, walker: u32, stage: TraceStage) {
        if let Some(tracer) = &self.inner.tracer {
            tracer.record(ticket, walker, stage);
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.inner.registry.snapshot()
    }

    /// Human-readable dump: the metric table followed by the stitched
    /// walker lifecycles (when tracing is on).
    pub fn dump(&self) -> String {
        let mut out = String::from("=== telemetry: metrics ===\n");
        out.push_str(&self.snapshot().render());
        if let Some(tracer) = &self.inner.tracer {
            out.push_str("=== telemetry: sampled walker lifecycles ===\n");
            out.push_str(&tracer.dump());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_keeps_counters_but_drops_histograms_and_traces() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_detailed());
        assert!(tel.timer().is_none());
        assert!(tel.tracer().is_none());
        assert!(!tel.is_sampled(1, 1));
        tel.counter("c").add(3);
        let h = tel.histogram("h");
        h.record(5);
        tel.trace(1, 1, TraceStage::Submit { shard: 0, start: 0 });
        let snap = tel.snapshot();
        assert_eq!(snap.counter("c", &[]), 3, "counters stay live");
        assert!(snap.get("h", &[]).is_none(), "no histogram registered");
    }

    #[test]
    fn detailed_mode_records_everything() {
        let tel = Telemetry::enabled(9);
        assert!(tel.is_detailed());
        assert!(tel.timer().is_some());
        tel.histogram("lat").record(1 << 20);
        let sampled: Vec<u64> = (0..1000).filter(|&w| tel.is_sampled(3, w)).collect();
        assert!(!sampled.is_empty());
        tel.trace(
            3,
            sampled[0] as u32,
            TraceStage::Submit { shard: 1, start: 2 },
        );
        assert_eq!(tel.tracer().unwrap().len(), 1);
        assert_eq!(tel.snapshot().histogram("lat", &[]).quantile(0.5), 1 << 20);
        assert!(tel.dump().contains("lat"));
    }

    #[test]
    fn from_env_default_decides_when_unset() {
        // BINGO_TELEMETRY is not set in the test environment.
        if std::env::var("BINGO_TELEMETRY").is_err() {
            assert!(Telemetry::from_env(1, true).is_detailed());
            assert!(!Telemetry::from_env(1, false).is_detailed());
        }
    }
}

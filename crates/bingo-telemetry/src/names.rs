//! The stable metric-name taxonomy.
//!
//! Every layer of the serving stack registers its metrics under these
//! names, so dashboards, CI greps and tests key on one vocabulary.
//! Names are dot-separated `layer.scope.metric`; per-instance dimensions
//! (shard index, tenant name) ride in labels, not in the name. Durations
//! are always recorded in **nanoseconds** and suffixed `_ns`.
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `service.shard.steps` | counter | steps sampled by a shard |
//! | `service.shard.walkers_received` | counter | walker arrivals (fresh + forwarded) |
//! | `service.shard.walkers_forwarded` | counter | walkers forwarded to another shard |
//! | `service.shard.walks_completed` | counter | walks finished on a shard |
//! | `service.shard.updates_applied` | counter | update events applied |
//! | `service.shard.update_batches` | counter | update batches applied |
//! | `service.shard.epoch` | counter | update epoch (Release-published) |
//! | `service.shard.queue_depth` | gauge | current inbox occupancy |
//! | `service.shard.queue_high_water` | gauge | max inbox occupancy seen |
//! | `service.shard.busy_ns` | counter | nanos spent processing messages |
//! | `service.shard.saturated_rejections` | counter | submits bounced off a full inbox |
//! | `service.context.bytes_forwarded` | counter | context bytes actually sent |
//! | `service.context.bytes_raw` | counter | exact-Vec baseline context bytes |
//! | `service.context.cache_hits` | counter | forwarded-context cache hits |
//! | `service.context.cache_misses` | counter | forwarded-context cache misses |
//! | `service.context.membership_faults` | counter | second-order fallback probes |
//! | `service.context.handle_offer` | counter | snapshot handles offered to receivers |
//! | `service.context.handle_hit` | counter | offered handles the receiver held |
//! | `service.context.body_request` | counter | offered handles that shipped the body |
//! | `transport.bytes_sent` | counter | encoded walker-frame bytes handed to the transport |
//! | `transport.bytes_recv` | counter | walker-frame bytes delivered and decoded |
//! | `service.submit_ns` | histogram | submit call → all walkers enqueued |
//! | `service.shard.step_batch_ns` | histogram | one walker visit on a shard |
//! | `service.shard.inbox_dwell_ns` | histogram | message enqueue → dequeue |
//! | `service.shard.update_apply_ns` | histogram | one update batch application |
//! | `service.forward.hop_ns` | histogram | forward send → dequeue at peer |
//! | `service.collect_ns` | histogram | walk finish → absorbed at collector |
//! | `service.ticket.latency_ns` | histogram | submit → ticket complete |
//! | `service.update.epoch_lag` | gauge | router flushes − slowest shard epoch |
//! | `gateway.tenant.submitted_walks` | counter | walks offered by a tenant |
//! | `gateway.tenant.completed_walks` | counter | walks completed for a tenant |
//! | `gateway.tenant.completed_steps` | counter | steps completed for a tenant |
//! | `gateway.tenant.failed_walks` | counter | walks lost to submit failures |
//! | `gateway.tenant.dispatched_chunks` | counter | chunks handed to the service |
//! | `gateway.tenant.saturated_requeues` | counter | dispatches bounced by saturation |
//! | `gateway.tenant.rejected_overloaded` | counter | submits rejected queue-full |
//! | `gateway.tenant.peak_queued` | gauge | max walkers queued at once |
//! | `gateway.tenant.wait_ns` | histogram | enqueue → DRR dispatch |
//! | `gateway.dispatch_ns` | histogram | one service-submit call |
//! | `pool.calls` | counter | top-level parallel calls |
//! | `pool.chunks_claimed` | counter | chunks executed by workers |
//! | `pool.worker.busy_ns` | counter | nanos workers spent in chunk bodies |
//! | `pool.worker.idle_ns` | counter | team-scope nanos not spent in chunks |
//! | `pool.scope_ns` | counter | wall nanos inside parallel scopes |
//! | `runtime.pool.steals` | counter | work items run by a helper, not the poster |
//! | `runtime.pool.tasks` | counter | detached tasks executed on the pool |
//! | `runtime.pool.park_ns` | counter | nanos workers spent condvar-parked |
//! | `service.shard.stolen_batches` | counter | walker batches stolen from a peer inbox |
//! | `service.shard.stolen_walkers` | counter | walker visits executed via stealing |
//! | `obs.http.requests` | counter | exposition requests served (labeled by endpoint) |
//! | `obs.http.errors` | counter | malformed/unroutable exposition requests |
//! | `obs.flight.recorded` | counter | flight-recorder events mirrored at snapshot time |
//! | `obs.flight.dropped` | counter | flight events lost to ring wraparound |
//! | `obs.watchdog.checks` | counter | lazy watchdog evaluations |
//! | `obs.watchdog.trips` | counter | stall-watchdog trips (shard or gateway) |

/// `service.shard.steps` — steps sampled by a shard (counter).
pub const SERVICE_SHARD_STEPS: &str = "service.shard.steps";
/// `service.shard.walkers_received` — walker arrivals (counter).
pub const SERVICE_SHARD_WALKERS_RECEIVED: &str = "service.shard.walkers_received";
/// `service.shard.walkers_forwarded` — cross-shard forwards (counter).
pub const SERVICE_SHARD_WALKERS_FORWARDED: &str = "service.shard.walkers_forwarded";
/// `service.shard.walks_completed` — walks finished (counter).
pub const SERVICE_SHARD_WALKS_COMPLETED: &str = "service.shard.walks_completed";
/// `service.shard.updates_applied` — update events applied (counter).
pub const SERVICE_SHARD_UPDATES_APPLIED: &str = "service.shard.updates_applied";
/// `service.shard.update_batches` — update batches applied (counter).
pub const SERVICE_SHARD_UPDATE_BATCHES: &str = "service.shard.update_batches";
/// `service.shard.epoch` — per-shard update epoch (counter, Release-published).
pub const SERVICE_SHARD_EPOCH: &str = "service.shard.epoch";
/// `service.shard.queue_depth` — current inbox occupancy (gauge).
pub const SERVICE_SHARD_QUEUE_DEPTH: &str = "service.shard.queue_depth";
/// `service.shard.queue_high_water` — max inbox occupancy (gauge).
pub const SERVICE_SHARD_QUEUE_HIGH_WATER: &str = "service.shard.queue_high_water";
/// `service.shard.busy_ns` — nanos processing messages (counter).
pub const SERVICE_SHARD_BUSY_NS: &str = "service.shard.busy_ns";
/// `service.shard.saturated_rejections` — inbox-full bounces (counter).
pub const SERVICE_SHARD_SATURATED_REJECTIONS: &str = "service.shard.saturated_rejections";
/// `service.context.bytes_forwarded` — context bytes sent (counter).
pub const SERVICE_CONTEXT_BYTES_FORWARDED: &str = "service.context.bytes_forwarded";
/// `service.context.bytes_raw` — exact-Vec baseline bytes (counter).
pub const SERVICE_CONTEXT_BYTES_RAW: &str = "service.context.bytes_raw";
/// `service.context.cache_hits` — forwarded-context cache hits (counter).
pub const SERVICE_CONTEXT_CACHE_HITS: &str = "service.context.cache_hits";
/// `service.context.cache_misses` — forwarded-context cache misses (counter).
pub const SERVICE_CONTEXT_CACHE_MISSES: &str = "service.context.cache_misses";
/// `service.context.membership_faults` — second-order fallbacks (counter).
pub const SERVICE_CONTEXT_MEMBERSHIP_FAULTS: &str = "service.context.membership_faults";
/// `service.context.handle_offer` — snapshot handles offered (counter).
pub const SERVICE_CONTEXT_HANDLE_OFFER: &str = "service.context.handle_offer";
/// `service.context.handle_hit` — offered handles the receiver held (counter).
pub const SERVICE_CONTEXT_HANDLE_HIT: &str = "service.context.handle_hit";
/// `service.context.body_request` — offered handles that shipped the body
/// and seeded the receiver's snapshot cache (counter).
pub const SERVICE_CONTEXT_BODY_REQUEST: &str = "service.context.body_request";
/// `transport.bytes_sent` — encoded walker-frame bytes handed to the
/// shard transport (counter; serialized mode only).
pub const TRANSPORT_BYTES_SENT: &str = "transport.bytes_sent";
/// `transport.bytes_recv` — walker-frame bytes delivered and decoded
/// (counter; serialized mode only).
pub const TRANSPORT_BYTES_RECV: &str = "transport.bytes_recv";
/// `service.submit_ns` — submit-call latency (histogram).
pub const SERVICE_SUBMIT_NS: &str = "service.submit_ns";
/// `service.shard.step_batch_ns` — one walker visit (histogram).
pub const SERVICE_SHARD_STEP_BATCH_NS: &str = "service.shard.step_batch_ns";
/// `service.shard.inbox_dwell_ns` — enqueue → dequeue (histogram).
pub const SERVICE_SHARD_INBOX_DWELL_NS: &str = "service.shard.inbox_dwell_ns";
/// `service.shard.update_apply_ns` — one batch application (histogram).
pub const SERVICE_SHARD_UPDATE_APPLY_NS: &str = "service.shard.update_apply_ns";
/// `service.forward.hop_ns` — forward send → peer dequeue (histogram).
pub const SERVICE_FORWARD_HOP_NS: &str = "service.forward.hop_ns";
/// `service.collect_ns` — finish → absorbed (histogram).
pub const SERVICE_COLLECT_NS: &str = "service.collect_ns";
/// `service.ticket.latency_ns` — submit → complete (histogram).
pub const SERVICE_TICKET_LATENCY_NS: &str = "service.ticket.latency_ns";
/// `service.update.epoch_lag` — router flushes − min shard epoch (gauge).
pub const SERVICE_UPDATE_EPOCH_LAG: &str = "service.update.epoch_lag";
/// `gateway.tenant.submitted_walks` — offered walks (counter).
pub const GATEWAY_TENANT_SUBMITTED_WALKS: &str = "gateway.tenant.submitted_walks";
/// `gateway.tenant.completed_walks` — completed walks (counter).
pub const GATEWAY_TENANT_COMPLETED_WALKS: &str = "gateway.tenant.completed_walks";
/// `gateway.tenant.completed_steps` — completed steps (counter).
pub const GATEWAY_TENANT_COMPLETED_STEPS: &str = "gateway.tenant.completed_steps";
/// `gateway.tenant.failed_walks` — walks lost to failures (counter).
pub const GATEWAY_TENANT_FAILED_WALKS: &str = "gateway.tenant.failed_walks";
/// `gateway.tenant.dispatched_chunks` — chunks dispatched (counter).
pub const GATEWAY_TENANT_DISPATCHED_CHUNKS: &str = "gateway.tenant.dispatched_chunks";
/// `gateway.tenant.saturated_requeues` — saturation bounces (counter).
pub const GATEWAY_TENANT_SATURATED_REQUEUES: &str = "gateway.tenant.saturated_requeues";
/// `gateway.tenant.rejected_overloaded` — queue-full rejections (counter).
pub const GATEWAY_TENANT_REJECTED_OVERLOADED: &str = "gateway.tenant.rejected_overloaded";
/// `gateway.tenant.peak_queued` — max walkers queued (gauge).
pub const GATEWAY_TENANT_PEAK_QUEUED: &str = "gateway.tenant.peak_queued";
/// `gateway.tenant.wait_ns` — queue wait (histogram).
pub const GATEWAY_TENANT_WAIT_NS: &str = "gateway.tenant.wait_ns";
/// `gateway.dispatch_ns` — one service-submit call (histogram).
pub const GATEWAY_DISPATCH_NS: &str = "gateway.dispatch_ns";
/// `pool.calls` — top-level parallel calls (counter).
pub const POOL_CALLS: &str = "pool.calls";
/// `pool.chunks_claimed` — chunks executed (counter).
pub const POOL_CHUNKS_CLAIMED: &str = "pool.chunks_claimed";
/// `pool.worker.busy_ns` — worker nanos in chunk bodies (counter).
pub const POOL_WORKER_BUSY_NS: &str = "pool.worker.busy_ns";
/// `pool.worker.idle_ns` — team nanos outside chunk bodies (counter).
pub const POOL_WORKER_IDLE_NS: &str = "pool.worker.idle_ns";
/// `pool.scope_ns` — wall nanos inside parallel scopes (counter).
pub const POOL_SCOPE_NS: &str = "pool.scope_ns";
/// `runtime.pool.steals` — work items run by a helper worker rather than
/// the thread that posted them (counter).
pub const RUNTIME_POOL_STEALS: &str = "runtime.pool.steals";
/// `runtime.pool.tasks` — detached tasks executed on the pool (counter).
pub const RUNTIME_POOL_TASKS: &str = "runtime.pool.tasks";
/// `runtime.pool.park_ns` — nanos workers spent condvar-parked (counter).
pub const RUNTIME_POOL_PARK_NS: &str = "runtime.pool.park_ns";
/// `service.shard.stolen_batches` — walker batches a shard task drained
/// from a hot peer's inbox (counter, attributed to the executing shard).
pub const SERVICE_SHARD_STOLEN_BATCHES: &str = "service.shard.stolen_batches";
/// `service.shard.stolen_walkers` — walker visits executed via stealing
/// (counter, attributed to the executing shard).
pub const SERVICE_SHARD_STOLEN_WALKERS: &str = "service.shard.stolen_walkers";
/// `obs.http.requests` — exposition requests served, labeled
/// `endpoint="/metrics"` etc. (counter).
pub const OBS_HTTP_REQUESTS: &str = "obs.http.requests";
/// `obs.http.errors` — malformed or unroutable exposition requests
/// (counter).
pub const OBS_HTTP_ERRORS: &str = "obs.http.errors";
/// `obs.flight.recorded` — flight-recorder events ever recorded, mirrored
/// into the registry at snapshot time (counter).
pub const OBS_FLIGHT_RECORDED: &str = "obs.flight.recorded";
/// `obs.flight.dropped` — flight events overwritten by ring wraparound,
/// mirrored at snapshot time (counter).
pub const OBS_FLIGHT_DROPPED: &str = "obs.flight.dropped";
/// `obs.watchdog.checks` — lazy stall-watchdog evaluations (counter).
pub const OBS_WATCHDOG_CHECKS: &str = "obs.watchdog.checks";
/// `obs.watchdog.trips` — stall-watchdog trips: a shard sat non-empty
/// without progress, or the gateway's oldest queued request aged past the
/// threshold (counter).
pub const OBS_WATCHDOG_TRIPS: &str = "obs.watchdog.trips";

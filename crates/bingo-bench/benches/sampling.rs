//! Criterion bench: sampling cost of Bingo vs the classical samplers
//! (the empirical counterpart of Table 1's "Sampling" column and
//! Figure 16(b)).

use bingo_core::{BingoConfig, VertexSpace};
use bingo_graph::adjacency::{AdjacencyList, Edge};
use bingo_graph::Bias;
use bingo_sampling::rng::Pcg64;
use bingo_sampling::{reservoir_sample_indexed, AliasTable, CdfTable, RejectionSampler, Sampler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn biases(degree: usize, seed: u64) -> Vec<u64> {
    let mut rng = Pcg64::seed_from_u64(seed);
    (0..degree).map(|_| rng.gen_range(1..1024u64)).collect()
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for degree in [64usize, 1024, 16384] {
        let weights_int = biases(degree, degree as u64);
        let weights: Vec<f64> = weights_int.iter().map(|&w| w as f64).collect();

        let mut adj = AdjacencyList::new();
        for (i, &w) in weights_int.iter().enumerate() {
            adj.push(Edge::new(i as u32, Bias::from_int(w)));
        }
        let space = VertexSpace::build(adj, BingoConfig::default());
        let alias = AliasTable::new(&weights).unwrap();
        let cdf = CdfTable::new(&weights).unwrap();
        let rejection = RejectionSampler::new(&weights).unwrap();

        group.bench_with_input(BenchmarkId::new("bingo", degree), &degree, |b, _| {
            let mut rng = Pcg64::seed_from_u64(1);
            b.iter(|| space.sample_index(&mut rng))
        });
        group.bench_with_input(BenchmarkId::new("alias", degree), &degree, |b, _| {
            let mut rng = Pcg64::seed_from_u64(2);
            b.iter(|| alias.sample(&mut rng))
        });
        group.bench_with_input(BenchmarkId::new("its", degree), &degree, |b, _| {
            let mut rng = Pcg64::seed_from_u64(3);
            b.iter(|| cdf.sample(&mut rng))
        });
        group.bench_with_input(BenchmarkId::new("rejection", degree), &degree, |b, _| {
            let mut rng = Pcg64::seed_from_u64(4);
            b.iter(|| rejection.sample(&mut rng))
        });
        group.bench_with_input(
            BenchmarkId::new("reservoir_flowwalker", degree),
            &degree,
            |b, _| {
                let mut rng = Pcg64::seed_from_u64(5);
                b.iter(|| reservoir_sample_indexed(weights.iter().copied(), &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);

//! Criterion bench: scaling behaviour behind Table 1 — how the per-update
//! cost grows with degree for Bingo (O(K)) vs the alias method (O(d)) — and
//! the ablation for the arbitrary-radix-base extension (§9.2).

use bingo_core::radix_base::RadixBaseSpace;
use bingo_core::{BingoConfig, VertexSpace};
use bingo_graph::adjacency::{AdjacencyList, Edge};
use bingo_graph::Bias;
use bingo_sampling::rng::Pcg64;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn build_adjacency(degree: usize, max_bias: u64, seed: u64) -> AdjacencyList {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut adj = AdjacencyList::new();
    for i in 0..degree {
        adj.push(Edge::new(
            i as u32,
            Bias::from_int(rng.gen_range(1..=max_bias)),
        ));
    }
    adj
}

/// Update cost vs the number of radix groups K (max bias sweeps from 2^4 to
/// 2^20 at a fixed degree) — the K-dependence the complexity analysis
/// predicts.
fn bench_update_vs_k(c: &mut Criterion) {
    let degree = 4096;
    let mut group = c.benchmark_group("bingo_update_vs_K");
    for bits in [4u32, 10, 20] {
        let adj = build_adjacency(degree, (1u64 << bits) - 1, bits as u64);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter_batched(
                || VertexSpace::build(adj.clone(), BingoConfig::default()),
                |mut space| {
                    space.insert(degree as u32 + 1, Bias::from_int(3)).unwrap();
                    space.delete_at(0).unwrap();
                    space
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Radix-base ablation: larger bases reduce K and the per-update work at the
/// price of a third sampling level.
fn bench_radix_bases(c: &mut Criterion) {
    let mut rng = Pcg64::seed_from_u64(11);
    let biases: Vec<u64> = (0..8192).map(|_| rng.gen_range(1..1_000_000u64)).collect();
    let mut group = c.benchmark_group("radix_base_ablation");
    for base in [2u64, 4, 16, 256] {
        let space = RadixBaseSpace::build(&biases, base);
        group.bench_with_input(BenchmarkId::new("sample", base), &base, |b, _| {
            let mut rng = Pcg64::seed_from_u64(base);
            b.iter(|| space.sample(&mut rng))
        });
        group.bench_with_input(BenchmarkId::new("insert_delete", base), &base, |b, _| {
            b.iter_batched(
                || RadixBaseSpace::build(&biases, base),
                |mut s| {
                    let idx = s.insert(12345);
                    s.remove(idx);
                    s
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_vs_k, bench_radix_bases);
criterion_main!(benches);

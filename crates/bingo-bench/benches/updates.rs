//! Criterion bench: streaming insertion / deletion cost of Bingo vs the
//! alias-rebuild baseline (Table 1's "Insertion"/"Deletion" columns and
//! Figure 16(a)).

use bingo_core::{BingoConfig, VertexSpace};
use bingo_graph::adjacency::{AdjacencyList, Edge};
use bingo_graph::Bias;
use bingo_sampling::rng::Pcg64;
use bingo_sampling::{AliasTable, DynamicSampler};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn build_adjacency(degree: usize, seed: u64) -> AdjacencyList {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut adj = AdjacencyList::new();
    for i in 0..degree {
        adj.push(Edge::new(
            i as u32,
            Bias::from_int(rng.gen_range(1..1024u64)),
        ));
    }
    adj
}

fn bench_streaming_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_updates");
    for degree in [256usize, 4096, 32768] {
        let adj = build_adjacency(degree, degree as u64);
        let weights: Vec<f64> = adj.edges().iter().map(|e| e.bias.value()).collect();

        group.bench_with_input(BenchmarkId::new("bingo_insert", degree), &degree, |b, _| {
            b.iter_batched(
                || VertexSpace::build(adj.clone(), BingoConfig::default()),
                |mut space| {
                    space
                        .insert(degree as u32 + 1, Bias::from_int(777))
                        .unwrap();
                    space
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("bingo_delete", degree), &degree, |b, _| {
            b.iter_batched(
                || VertexSpace::build(adj.clone(), BingoConfig::default()),
                |mut space| {
                    space.delete_at(0).unwrap();
                    space
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(
            BenchmarkId::new("alias_rebuild_insert", degree),
            &degree,
            |b, _| {
                b.iter_batched(
                    || AliasTable::new(&weights).unwrap(),
                    |mut table| {
                        table.insert(777.0).unwrap();
                        table
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("alias_rebuild_delete", degree),
            &degree,
            |b, _| {
                b.iter_batched(
                    || AliasTable::new(&weights).unwrap(),
                    |mut table| {
                        table.remove(0).unwrap();
                        table
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming_updates);
criterion_main!(benches);

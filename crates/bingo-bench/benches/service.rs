//! Criterion bench: sharded walk-service throughput.
//!
//! Measures (a) a full walk wave (submit + wait) over a stand-in graph for
//! 1/2/4/8 shards, and (b) router ingestion of a mixed update batch while
//! the service is otherwise idle.

use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;
use bingo_graph::{UpdateStreamBuilder, VertexId};
use bingo_sampling::rng::Pcg64;
use bingo_service::{ServiceConfig, WalkService};
use bingo_walks::{DeepWalkConfig, Node2VecConfig, WalkSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_walk_waves(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_walk_wave");
    group.sample_size(10);
    let mut rng = Pcg64::seed_from_u64(0xB5);
    let graph = StandinDataset::Amazon.build(4_000, &mut rng);
    let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 20 });

    for shards in [1usize, 2, 4, 8] {
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: shards,
                ..ServiceConfig::default()
            },
        )
        .expect("service builds");
        group.bench_with_input(BenchmarkId::new("submit_wait", shards), &shards, |b, _| {
            b.iter(|| {
                let ticket = service.submit(spec, &starts).expect("submit");
                service.wait(ticket).total_steps()
            })
        });
    }
    group.finish();
}

fn bench_node2vec_waves(c: &mut Criterion) {
    // Second-order waves: each cross-shard forward additionally captures
    // and ships the previous vertex's adjacency fingerprint, so this
    // measures the carried-context overhead on top of plain forwarding.
    let mut group = c.benchmark_group("service_node2vec_wave");
    group.sample_size(10);
    let mut rng = Pcg64::seed_from_u64(0xB7);
    let graph = StandinDataset::Amazon.build(4_000, &mut rng);
    let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: 20,
        p: 0.5,
        q: 2.0,
    });

    for shards in [1usize, 4] {
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: shards,
                ..ServiceConfig::default()
            },
        )
        .expect("service builds");
        group.bench_with_input(BenchmarkId::new("submit_wait", shards), &shards, |b, _| {
            b.iter(|| {
                let ticket = service.submit(spec, &starts).expect("submit");
                service.wait(ticket).total_steps()
            })
        });
    }
    group.finish();
}

fn bench_update_ingestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_ingest");
    group.sample_size(10);
    let mut rng = Pcg64::seed_from_u64(0xB6);
    let mut graph = StandinDataset::Amazon.build(4_000, &mut rng);
    let stream =
        UpdateStreamBuilder::new(UpdateKind::Mixed, 2_000).build(&mut graph, 2_000, &mut rng);

    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("mixed_2k_events", shards),
            &shards,
            |b, _| {
                // Fresh service per measurement: deletions are only valid
                // against the pristine graph.
                b.iter_batched(
                    || {
                        WalkService::build(
                            &graph,
                            ServiceConfig {
                                num_shards: shards,
                                ..ServiceConfig::default()
                            },
                        )
                        .expect("service builds")
                    },
                    |service| {
                        let receipt = service.ingest(&stream);
                        service.sync(receipt);
                        service.shutdown().total_updates_applied()
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_walk_waves,
    bench_node2vec_waves,
    bench_update_ingestion
);
criterion_main!(benches);

//! Criterion bench: full walk passes (DeepWalk / node2vec / PPR) over Bingo
//! and the baselines — the walk-time component of Table 3.

use bingo_baselines::{FlowWalkerBaseline, GSamplerBaseline, KnightKingBaseline};
use bingo_bench::common::ExperimentConfig;
use bingo_core::{BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_walks::{DeepWalkConfig, Node2VecConfig, PprConfig, WalkEngine, WalkSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_walk_applications(c: &mut Criterion) {
    let config = ExperimentConfig {
        scale: 16_000,
        walk_length: 20,
        ..ExperimentConfig::default()
    };
    let mut rng = config.rng(99);
    let graph = StandinDataset::LiveJournal.build(config.scale, &mut rng);

    let bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let kk = KnightKingBaseline::build(&graph);
    let gs = GSamplerBaseline::build(&graph);
    let fw = FlowWalkerBaseline::build(&graph);
    let walk_engine = WalkEngine::new(7);

    let specs = [
        (
            "deepwalk",
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 20 }),
        ),
        (
            "node2vec",
            WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: 20,
                p: 0.5,
                q: 2.0,
            }),
        ),
        (
            "ppr",
            WalkSpec::Ppr(PprConfig {
                stop_probability: 1.0 / 20.0,
                max_length: 200,
            }),
        ),
    ];

    let mut group = c.benchmark_group("walk_pass");
    group.sample_size(10);
    for (name, spec) in specs {
        group.bench_with_input(BenchmarkId::new("bingo", name), &spec, |b, spec| {
            b.iter(|| walk_engine.run_all_vertices(&bingo, spec))
        });
        group.bench_with_input(BenchmarkId::new("knightking", name), &spec, |b, spec| {
            b.iter(|| walk_engine.run_all_vertices(&kk, spec))
        });
        group.bench_with_input(BenchmarkId::new("gsampler", name), &spec, |b, spec| {
            b.iter(|| walk_engine.run_all_vertices(&gs, spec))
        });
        group.bench_with_input(BenchmarkId::new("flowwalker", name), &spec, |b, spec| {
            b.iter(|| walk_engine.run_all_vertices(&fw, spec))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walk_applications);
criterion_main!(benches);

//! Criterion bench: batched vs streaming ingestion of a whole update batch
//! (the microbenchmark behind Figure 12) and the two-phase delete-and-swap
//! compaction primitive.

use bingo_bench::common::ExperimentConfig;
use bingo_core::{BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::two_phase_delete_and_swap;
use bingo_graph::updates::UpdateKind;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_batch_ingestion(c: &mut Criterion) {
    let config = ExperimentConfig {
        scale: 8000,
        batch_size: 1000,
        rounds: 1,
        ..ExperimentConfig::default()
    };
    let mut group = c.benchmark_group("batch_ingestion");
    group.sample_size(10);
    for kind in [
        UpdateKind::InsertOnly,
        UpdateKind::DeleteOnly,
        UpdateKind::Mixed,
    ] {
        let (graph, batches) = config.prepare(StandinDataset::LiveJournal, kind);
        let batch = batches[0].clone();
        let label = match kind {
            UpdateKind::InsertOnly => "insert",
            UpdateKind::DeleteOnly => "delete",
            UpdateKind::Mixed => "mixed",
        };
        group.bench_with_input(BenchmarkId::new("streaming", label), &batch, |b, batch| {
            b.iter_batched(
                || BingoEngine::build(&graph, BingoConfig::default()).unwrap(),
                |mut engine| {
                    engine.apply_streaming(batch);
                    engine
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("batched", label), &batch, |b, batch| {
            b.iter_batched(
                || BingoEngine::build(&graph, BingoConfig::default()).unwrap(),
                |mut engine| {
                    engine.apply_batch(batch);
                    engine
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_two_phase_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_phase_delete_and_swap");
    for size in [1_000usize, 100_000] {
        let items: Vec<u64> = (0..size as u64).collect();
        let deletes: Vec<usize> = (0..size).step_by(3).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter_batched(
                || items.clone(),
                |mut v| {
                    two_phase_delete_and_swap(&mut v, &deletes);
                    v
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_ingestion, bench_two_phase_compaction);
criterion_main!(benches);

//! Shared infrastructure for the experiment harness: configuration, dataset
//! preparation, timing helpers, and result tables (stdout + CSV).

use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::{UpdateKind, UpdateStreamBuilder};
use bingo_graph::{DynamicGraph, UpdateBatch};
use bingo_sampling::rng::Pcg64;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Global knobs shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Divisor applied to the real dataset sizes when generating stand-ins
    /// (the paper's graphs divided by `scale`).
    pub scale: u64,
    /// Updates per batch (the paper uses 100 000).
    pub batch_size: usize,
    /// Number of rounds (the paper uses 10).
    pub rounds: usize,
    /// Walk length for DeepWalk / node2vec (the paper uses 80).
    pub walk_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 2000,
            batch_size: 2000,
            rounds: 3,
            walk_length: 20,
            seed: 0xB1460,
        }
    }
}

impl ExperimentConfig {
    /// Configuration matching the paper's parameters (only practical on a
    /// large machine; the default is a laptop-scale version).
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            scale: 1,
            batch_size: 100_000,
            rounds: 10,
            walk_length: 80,
            seed: 0xB1460,
        }
    }

    /// A deterministic RNG derived from the experiment seed and a salt.
    pub fn rng(&self, salt: u64) -> Pcg64 {
        Pcg64::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Build the stand-in graph for `dataset` plus an update stream of
    /// `rounds × batch_size` events of the given kind, split into per-round
    /// batches. Returns `(initial_graph, batches)`.
    pub fn prepare(
        &self,
        dataset: StandinDataset,
        kind: UpdateKind,
    ) -> (DynamicGraph, Vec<UpdateBatch>) {
        let mut rng = self.rng(dataset.spec().paper_vertices ^ kind_salt(kind));
        let mut graph = dataset.build(self.scale, &mut rng);
        let total_updates = self.rounds * self.batch_size;
        // Reserve the insertion pool exactly as §6.1 does: 10 × BATCHSIZE
        // edges (bounded by half the graph so tiny stand-ins stay usable).
        let reserve = (total_updates).min(graph.num_edges() / 2);
        let stream =
            UpdateStreamBuilder::new(kind, reserve).build(&mut graph, total_updates, &mut rng);
        let batches = stream.chunks(self.batch_size.max(1));
        (graph, batches)
    }
}

fn kind_salt(kind: UpdateKind) -> u64 {
    match kind {
        UpdateKind::InsertOnly => 1,
        UpdateKind::DeleteOnly => 2,
        UpdateKind::Mixed => 3,
    }
}

/// Time a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A printable, CSV-exportable result table.
#[derive(Debug, Clone)]
pub struct ResultTable {
    /// Table title (e.g. "Table 3: Bingo vs SOTA").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render the table for stdout.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// One-line machine-readable JSON summary of an experiment run, for
    /// trajectory capture (`BENCH_*.json`-style tooling). Hand-rolled
    /// because the offline build environment has no serde; cell values are
    /// emitted as JSON strings with minimal escaping.
    pub fn json_summary(&self, name: &str, elapsed: Duration) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let headers: Vec<String> = self
            .headers
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|c| format!("\"{}\"", esc(c))).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"experiment\":\"{}\",\"title\":\"{}\",\"elapsed_s\":{:.3},\"headers\":[{}],\"rows\":[{}]}}",
            esc(name),
            esc(&self.title),
            elapsed.as_secs_f64(),
            headers.join(","),
            rows.join(","),
        )
    }

    /// Write the table as CSV under `results/<name>.csv` (relative to the
    /// workspace root, falling back to the current directory).
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut content = String::new();
        content.push_str(&self.headers.join(","));
        content.push('\n');
        for row in &self.rows {
            content.push_str(&row.join(","));
            content.push('\n');
        }
        std::fs::write(&path, content)?;
        Ok(path)
    }
}

/// The directory experiment CSVs are written to.
pub fn results_dir() -> PathBuf {
    // Prefer the workspace root (two levels up from this crate) when it
    // exists, otherwise use ./results.
    let candidate = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    if candidate.parent().map(|p| p.exists()).unwrap_or(false) {
        candidate
    } else {
        PathBuf::from("results")
    }
}

/// Format a [`Duration`] in seconds with three decimals.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a byte count as mebibytes with two decimals.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_laptop_scale() {
        let c = ExperimentConfig::default();
        assert!(c.scale > 1);
        assert!(c.batch_size <= 10_000);
        assert_eq!(ExperimentConfig::paper_scale().batch_size, 100_000);
    }

    #[test]
    fn prepare_generates_rounds_times_batch_updates() {
        let config = ExperimentConfig {
            scale: 4000,
            batch_size: 200,
            rounds: 2,
            ..ExperimentConfig::default()
        };
        let (graph, batches) = config.prepare(StandinDataset::Amazon, UpdateKind::Mixed);
        assert!(graph.num_edges() > 0);
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(UpdateBatch::len).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn prepare_is_deterministic() {
        let config = ExperimentConfig {
            scale: 4000,
            batch_size: 100,
            rounds: 1,
            ..ExperimentConfig::default()
        };
        let (g1, b1) = config.prepare(StandinDataset::Google, UpdateKind::InsertOnly);
        let (g2, b2) = config.prepare(StandinDataset::Google, UpdateKind::InsertOnly);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(b1, b2);
    }

    #[test]
    fn result_table_renders_and_writes_csv() {
        let mut t = ResultTable::new("Test table", &["a", "b"]);
        t.push_row(vec!["1".into(), "long-cell".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Test table"));
        assert!(rendered.contains("long-cell"));
        let path = t.write_csv("test_table_unit").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
        let (x, d) = timed(|| 2 + 2);
        assert_eq!(x, 4);
        assert!(d.as_nanos() > 0);
    }
}

//! Shared infrastructure for the experiment harness: configuration, dataset
//! preparation, timing helpers, and result tables (stdout + CSV).

use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::{UpdateKind, UpdateStreamBuilder};
use bingo_graph::{DynamicGraph, UpdateBatch};
use bingo_sampling::rng::Pcg64;
use bingo_telemetry::json::{JsonArray, JsonObject};
use bingo_telemetry::{names, Telemetry};
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Global knobs shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Divisor applied to the real dataset sizes when generating stand-ins
    /// (the paper's graphs divided by `scale`).
    pub scale: u64,
    /// Updates per batch (the paper uses 100 000).
    pub batch_size: usize,
    /// Number of rounds (the paper uses 10).
    pub rounds: usize,
    /// Walk length for DeepWalk / node2vec (the paper uses 80).
    pub walk_length: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 2000,
            batch_size: 2000,
            rounds: 3,
            walk_length: 20,
            seed: 0xB1460,
        }
    }
}

impl ExperimentConfig {
    /// Configuration matching the paper's parameters (only practical on a
    /// large machine; the default is a laptop-scale version).
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            scale: 1,
            batch_size: 100_000,
            rounds: 10,
            walk_length: 80,
            seed: 0xB1460,
        }
    }

    /// A deterministic RNG derived from the experiment seed and a salt.
    pub fn rng(&self, salt: u64) -> Pcg64 {
        Pcg64::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Build the stand-in graph for `dataset` plus an update stream of
    /// `rounds × batch_size` events of the given kind, split into per-round
    /// batches. Returns `(initial_graph, batches)`.
    pub fn prepare(
        &self,
        dataset: StandinDataset,
        kind: UpdateKind,
    ) -> (DynamicGraph, Vec<UpdateBatch>) {
        let mut rng = self.rng(dataset.spec().paper_vertices ^ kind_salt(kind));
        let mut graph = dataset.build(self.scale, &mut rng);
        let total_updates = self.rounds * self.batch_size;
        // Reserve the insertion pool exactly as §6.1 does: 10 × BATCHSIZE
        // edges (bounded by half the graph so tiny stand-ins stay usable).
        let reserve = (total_updates).min(graph.num_edges() / 2);
        let stream =
            UpdateStreamBuilder::new(kind, reserve).build(&mut graph, total_updates, &mut rng);
        let batches = stream.chunks(self.batch_size.max(1));
        (graph, batches)
    }
}

fn kind_salt(kind: UpdateKind) -> u64 {
    match kind {
        UpdateKind::InsertOnly => 1,
        UpdateKind::DeleteOnly => 2,
        UpdateKind::Mixed => 3,
    }
}

/// Time a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A printable, CSV-exportable result table.
#[derive(Debug, Clone)]
pub struct ResultTable {
    /// Table title (e.g. "Table 3: Bingo vs SOTA").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Pre-serialized telemetry JSON (see [`telemetry_json`]) embedded in
    /// [`ResultTable::json_summary`] when present.
    pub telemetry: Option<String>,
}

impl ResultTable {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            telemetry: None,
        }
    }

    /// Attach a run's telemetry ([`telemetry_json`]) so the JSON summary
    /// carries per-stage latency quantiles and sampled lifecycles.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = Some(telemetry_json(telemetry));
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render the table for stdout.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// One-line machine-readable JSON summary of an experiment run, for
    /// trajectory capture (`BENCH_*.json`-style tooling). Built on the
    /// shared [`bingo_telemetry::json`] writer (the offline build
    /// environment has no serde); cell values are emitted as JSON strings.
    /// When telemetry was [attached](ResultTable::attach_telemetry), the
    /// summary carries it under a `"telemetry"` field.
    pub fn json_summary(&self, name: &str, elapsed: Duration) -> String {
        let mut headers = JsonArray::new();
        for h in &self.headers {
            headers.push_str_elem(h);
        }
        let mut rows = JsonArray::new();
        for row in &self.rows {
            let mut cells = JsonArray::new();
            for cell in row {
                cells.push_str_elem(cell);
            }
            rows.push_raw(&cells.finish());
        }
        let mut obj = JsonObject::new();
        obj.field_str("experiment", name)
            .field_str("title", &self.title)
            .field_num("elapsed_s", format!("{:.3}", elapsed.as_secs_f64()))
            .field_raw("headers", &headers.finish())
            .field_raw("rows", &rows.finish());
        if let Some(telemetry) = &self.telemetry {
            obj.field_raw("telemetry", telemetry);
        }
        obj.finish()
    }

    /// Write the table as CSV under `results/<name>.csv` (relative to the
    /// workspace root, falling back to the current directory).
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut content = String::new();
        content.push_str(&self.headers.join(","));
        content.push('\n');
        for row in &self.rows {
            content.push_str(&row.join(","));
            content.push('\n');
        }
        std::fs::write(&path, content)?;
        Ok(path)
    }
}

/// The directory experiment CSVs are written to.
pub fn results_dir() -> PathBuf {
    // Prefer the workspace root (two levels up from this crate) when it
    // exists, otherwise use ./results.
    let candidate = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    if candidate.parent().map(|p| p.exists()).unwrap_or(false) {
        candidate
    } else {
        PathBuf::from("results")
    }
}

/// The serving-stack stage latencies a summary reports, as
/// `(short key, metric name)` pairs: tenant queue wait, DRR dispatch,
/// service submit, per-shard step batch, inbox dwell, cross-shard forward
/// hop, collection, and end-to-end ticket latency.
pub const STAGE_LATENCIES: &[(&str, &str)] = &[
    ("queue_wait", names::GATEWAY_TENANT_WAIT_NS),
    ("dispatch", names::GATEWAY_DISPATCH_NS),
    ("submit", names::SERVICE_SUBMIT_NS),
    ("step_batch", names::SERVICE_SHARD_STEP_BATCH_NS),
    ("inbox_dwell", names::SERVICE_SHARD_INBOX_DWELL_NS),
    ("forward_hop", names::SERVICE_FORWARD_HOP_NS),
    ("collect", names::SERVICE_COLLECT_NS),
    ("ticket", names::SERVICE_TICKET_LATENCY_NS),
];

/// Serialize a run's telemetry for embedding in a JSON summary:
/// `latency_ns_p50_p99` (one `[p50, p99]` pair per recorded
/// [`STAGE_LATENCIES`] stage), the count of complete sampled walker
/// lifecycles plus one stitched example (preferring a lifecycle with a
/// cross-shard hop), and the full metric registry. Mirrors the thread-pool
/// profile into the registry first, so `pool.*` counters are current.
pub fn telemetry_json(telemetry: &Telemetry) -> String {
    bingo_service::record_pool_profile(telemetry);
    let snap = telemetry.snapshot();
    let mut latencies = JsonObject::new();
    for &(key, name) in STAGE_LATENCIES {
        if snap.histogram_across_labels(name).count() > 0 {
            latencies.field_raw(key, &snap.latency_json(name));
        }
    }
    let mut obj = JsonObject::new();
    obj.field_raw("latency_ns_p50_p99", &latencies.finish());
    if let Some(tracer) = telemetry.tracer() {
        let lines = tracer.complete_lifecycle_lines();
        obj.field_num("lifecycles_complete", lines.len());
        obj.field_num("trace_events_dropped", tracer.dropped());
        let example = lines
            .iter()
            .find(|line| line.contains("hop("))
            .or_else(|| lines.first());
        if let Some(line) = example {
            obj.field_str("sample_lifecycle", line);
        }
    }
    obj.field_raw("metrics", &snap.to_json());
    obj.finish()
}

/// Format a [`Duration`] in seconds with three decimals.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a byte count as mebibytes with two decimals.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_laptop_scale() {
        let c = ExperimentConfig::default();
        assert!(c.scale > 1);
        assert!(c.batch_size <= 10_000);
        assert_eq!(ExperimentConfig::paper_scale().batch_size, 100_000);
    }

    #[test]
    fn prepare_generates_rounds_times_batch_updates() {
        let config = ExperimentConfig {
            scale: 4000,
            batch_size: 200,
            rounds: 2,
            ..ExperimentConfig::default()
        };
        let (graph, batches) = config.prepare(StandinDataset::Amazon, UpdateKind::Mixed);
        assert!(graph.num_edges() > 0);
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(UpdateBatch::len).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn prepare_is_deterministic() {
        let config = ExperimentConfig {
            scale: 4000,
            batch_size: 100,
            rounds: 1,
            ..ExperimentConfig::default()
        };
        let (g1, b1) = config.prepare(StandinDataset::Google, UpdateKind::InsertOnly);
        let (g2, b2) = config.prepare(StandinDataset::Google, UpdateKind::InsertOnly);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(b1, b2);
    }

    #[test]
    fn result_table_renders_and_writes_csv() {
        let mut t = ResultTable::new("Test table", &["a", "b"]);
        t.push_row(vec!["1".into(), "long-cell".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Test table"));
        assert!(rendered.contains("long-cell"));
        let path = t.write_csv("test_table_unit").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_summary_escapes_and_embeds_telemetry() {
        let mut t = ResultTable::new("Quote \" table", &["a"]);
        t.push_row(vec!["x\ny".into()]);
        let plain = t.json_summary("unit", Duration::from_millis(1500));
        assert!(plain.contains("\"experiment\":\"unit\""));
        assert!(plain.contains("\"elapsed_s\":1.500"));
        assert!(plain.contains("Quote \\\" table"));
        assert!(plain.contains("x\\ny"));
        assert!(!plain.contains("telemetry"));

        let tel = Telemetry::enabled(7);
        tel.histogram(names::SERVICE_COLLECT_NS).record(1 << 12);
        t.attach_telemetry(&tel);
        let with_tel = t.json_summary("unit", Duration::from_millis(1500));
        assert!(with_tel.contains("\"telemetry\":{"));
        assert!(with_tel.contains("\"collect\":[4096,4096]"));
        assert!(with_tel.contains("\"lifecycles_complete\":0"));
        assert!(
            with_tel.contains(names::POOL_CALLS),
            "pool profile mirrored"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
        let (x, d) = timed(|| 2 + 2);
        assert_eq!(x, 4);
        assert!(d.as_nanos() > 0);
    }
}

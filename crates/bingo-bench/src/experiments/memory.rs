//! Figures 11, 13 and 14: memory savings of the adaptive group
//! representation, its time impact, and integer vs floating-point biases.

use crate::common::{fmt_mib, timed, ExperimentConfig, ResultTable};
use bingo_core::{BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::generators::BiasDistribution;
use bingo_graph::updates::UpdateKind;
use bingo_graph::{Bias, DynamicGraph};
use bingo_walks::{DeepWalkConfig, EvaluationWorkflow, IngestMode, WalkSpec};
use rand::Rng;

/// Figure 11 — memory consumption of the baseline (all-regular, "BS") vs the
/// group-adaptive design ("GA"), overall and per group kind, plus the ratio
/// of group kinds per dataset.
pub fn fig11(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 11: adaptive group representation — memory (MiB) BS vs GA",
        &[
            "dataset",
            "BS_total",
            "GA_total",
            "saving_x",
            "GA_dense",
            "GA_one_element",
            "GA_sparse",
            "GA_regular",
            "ratio_dense",
            "ratio_regular",
            "ratio_sparse",
            "ratio_one_element",
        ],
    );
    for dataset in StandinDataset::all() {
        let mut rng = config.rng(dataset.spec().paper_vertices ^ 11);
        let graph = dataset.build(config.scale, &mut rng);
        let baseline = BingoEngine::build(&graph, BingoConfig::baseline()).unwrap();
        let adaptive = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let bs = baseline.memory_report();
        let ga = adaptive.memory_report();
        let ratios = ga.group_ratios();
        table.push_row(vec![
            dataset.spec().abbrev.to_string(),
            fmt_mib(bs.sampling_bytes()),
            fmt_mib(ga.sampling_bytes()),
            format!(
                "{:.2}",
                bs.sampling_bytes() as f64 / ga.sampling_bytes().max(1) as f64
            ),
            fmt_mib(ga.dense_bytes),
            fmt_mib(ga.one_element_bytes),
            fmt_mib(ga.sparse_bytes),
            fmt_mib(ga.regular_bytes),
            format!("{:.3}", ratios[0]),
            format!("{:.3}", ratios[1]),
            format!("{:.3}", ratios[2]),
            format!("{:.3}", ratios[3]),
        ]);
    }
    table
}

/// Figure 13 — time breakdown of the BS vs GA designs: update (insert/delete
/// + rebuild) time and sampling time under mixed updates.
pub fn fig13(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 13: time (s) breakdown — BS vs GA (mixed updates + DeepWalk)",
        &[
            "dataset",
            "BS_update_s",
            "BS_sampling_s",
            "GA_update_s",
            "GA_sampling_s",
            "GA_speedup",
        ],
    );
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: config.walk_length,
    });
    for dataset in StandinDataset::all() {
        let (graph, batches) = config.prepare(dataset, UpdateKind::Mixed);
        let workflow = EvaluationWorkflow::new(spec, IngestMode::Batched);

        let mut bs = BingoEngine::build(&graph, BingoConfig::baseline()).unwrap();
        let bs_report = workflow.run(&mut bs, &batches);
        let mut ga = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let ga_report = workflow.run(&mut ga, &batches);

        table.push_row(vec![
            dataset.spec().abbrev.to_string(),
            format!("{:.3}", bs_report.total_update_time().as_secs_f64()),
            format!("{:.3}", bs_report.total_walk_time().as_secs_f64()),
            format!("{:.3}", ga_report.total_update_time().as_secs_f64()),
            format!("{:.3}", ga_report.total_walk_time().as_secs_f64()),
            format!(
                "{:.2}",
                bs_report.total_time().as_secs_f64()
                    / ga_report.total_time().as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table
}

fn with_float_biases(graph: &DynamicGraph, rng: &mut impl Rng) -> DynamicGraph {
    // "The floating-point bias is the integer bias added with a random
    // floating-point value between 0 − 1.00" (§6.4).
    let mut out = DynamicGraph::new(graph.num_vertices());
    for (src, edge) in graph.edges() {
        let b = Bias::from_float(edge.bias.value() + rng.gen::<f64>());
        out.insert_edge(src, edge.dst, b)
            .expect("copied edge is valid");
    }
    out
}

/// Figure 14 — runtime and memory with integer vs floating-point biases.
pub fn fig14(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Figure 14: integer vs floating-point bias — time (s) and memory (MiB)",
        &[
            "dataset",
            "int_time_s",
            "float_time_s",
            "time_ratio",
            "int_mem_MiB",
            "float_mem_MiB",
            "mem_ratio",
        ],
    );
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: config.walk_length,
    });
    for dataset in StandinDataset::all() {
        let (graph, batches) = config.prepare(dataset, UpdateKind::Mixed);
        let mut rng = config.rng(14);
        let float_graph = with_float_biases(&graph, &mut rng);
        // The float update stream reuses the integer stream's structure but
        // rewrites insertion biases to be fractional.
        let float_batches: Vec<_> = batches
            .iter()
            .map(|b| {
                bingo_graph::UpdateBatch::new(
                    b.events()
                        .iter()
                        .map(|e| match *e {
                            bingo_graph::UpdateEvent::Insert { src, dst, bias } => {
                                bingo_graph::UpdateEvent::Insert {
                                    src,
                                    dst,
                                    bias: Bias::from_float(bias.value() + 0.37),
                                }
                            }
                            other => other,
                        })
                        .collect(),
                )
            })
            .collect();

        let workflow = EvaluationWorkflow::new(spec, IngestMode::Batched);
        let mut int_engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let (int_report, _) = timed(|| workflow.run(&mut int_engine, &batches));
        let mut float_engine = BingoEngine::build(&float_graph, BingoConfig::default()).unwrap();
        let (float_report, _) = timed(|| workflow.run(&mut float_engine, &float_batches));

        let it = int_report.total_time().as_secs_f64();
        let ft = float_report.total_time().as_secs_f64();
        let im = int_report.memory_bytes;
        let fm = float_report.memory_bytes;
        table.push_row(vec![
            dataset.spec().abbrev.to_string(),
            format!("{it:.3}"),
            format!("{ft:.3}"),
            format!("{:.2}", ft / it.max(1e-9)),
            fmt_mib(im),
            fmt_mib(fm),
            format!("{:.2}", fm as f64 / im.max(1) as f64),
        ]);
    }
    table
}

/// Helper used by fig15c and tests: build one dataset stand-in with an
/// explicit bias distribution.
pub fn dataset_with_bias(
    config: &ExperimentConfig,
    dataset: StandinDataset,
    bias: BiasDistribution,
    salt: u64,
) -> DynamicGraph {
    let mut rng = config.rng(salt);
    dataset.build_with_bias(config.scale, bias, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::smoke_config;

    #[test]
    fn fig11_shows_memory_savings_for_every_dataset() {
        let t = fig11(&smoke_config());
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let saving: f64 = row[3].parse().unwrap();
            assert!(
                saving >= 1.0,
                "GA must not use more memory than BS: {row:?}"
            );
            let ratios: f64 = row[8..12].iter().map(|s| s.parse::<f64>().unwrap()).sum();
            assert!((ratios - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn fig13_reports_both_designs() {
        let mut config = smoke_config();
        config.scale = 16_000;
        let t = fig13(&config);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            assert!(row[1].parse::<f64>().unwrap() >= 0.0);
            assert!(row[3].parse::<f64>().unwrap() >= 0.0);
        }
    }

    #[test]
    fn fig14_float_overhead_is_moderate() {
        let mut config = smoke_config();
        config.scale = 16_000;
        let t = fig14(&config);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let mem_ratio: f64 = row[6].parse().unwrap();
            assert!(mem_ratio >= 0.9, "float memory should not shrink: {row:?}");
            assert!(
                mem_ratio < 5.0,
                "float memory overhead should stay moderate: {row:?}"
            );
        }
    }
}

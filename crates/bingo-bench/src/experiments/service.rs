//! Sharded-service experiment: walk throughput under streaming updates as
//! the shard count grows.
//!
//! This goes beyond the paper's single-engine evaluation: it measures the
//! serving layer (`bingo-service`) — concurrent walk waves submitted while
//! mixed update batches stream through the router — and reports per-run
//! throughput, forward ratio and queue occupancy. The sweep's shape is the
//! quantity to watch: steps/s should scale with shards until the forward
//! ratio and cross-shard queueing eat the gains.

use crate::common::{timed, ExperimentConfig, ResultTable};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;
use bingo_graph::VertexId;
use bingo_service::{ServiceConfig, WalkService};
use bingo_walks::{DeepWalkConfig, WalkSpec};

/// Walk-service throughput sweep over shard counts.
pub fn service(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Service: sharded walk throughput under streaming updates",
        &[
            "shards",
            "walks",
            "steps",
            "kstep/s",
            "updates",
            "kupd/s",
            "fwd_pct",
            "queue_hwm",
            "mean_lat_ms",
        ],
    );

    for &shards in &[1usize, 2, 4, 8] {
        let (graph, batches) = config.prepare(StandinDataset::Amazon, UpdateKind::Mixed);
        let service = WalkService::build(
            &graph,
            ServiceConfig {
                num_shards: shards,
                seed: config.seed,
                ..ServiceConfig::default()
            },
        )
        .expect("service builds");
        let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
        let spec = WalkSpec::DeepWalk(DeepWalkConfig {
            walk_length: config.walk_length,
        });

        let (results, elapsed) = timed(|| {
            // One walk wave up front, one after every update batch — walks
            // and updates interleave inside the shard workers.
            let mut tickets = vec![service.submit(spec, &starts).expect("submit")];
            for batch in &batches {
                service.ingest(batch);
                tickets.push(service.submit(spec, &starts).expect("submit"));
            }
            tickets
                .into_iter()
                .map(|t| service.wait(t))
                .collect::<Vec<_>>()
        });

        let stats = service.shutdown();
        let total_walks: usize = results.iter().map(|r| r.paths.len()).sum();
        let total_steps: u64 = stats.total_steps();
        let mean_latency_ms = results
            .iter()
            .map(|r| r.latency.as_secs_f64() * 1e3)
            .sum::<f64>()
            / results.len() as f64;
        let secs = elapsed.as_secs_f64().max(1e-9);
        table.push_row(vec![
            shards.to_string(),
            total_walks.to_string(),
            total_steps.to_string(),
            format!("{:.1}", total_steps as f64 / secs / 1e3),
            stats.total_updates_applied().to_string(),
            format!("{:.1}", stats.total_updates_applied() as f64 / secs / 1e3),
            format!("{:.1}", 100.0 * stats.forward_ratio()),
            stats
                .per_shard
                .iter()
                .map(|s| s.queue_high_water)
                .max()
                .unwrap_or(0)
                .to_string(),
            format!("{mean_latency_ms:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_experiment_produces_one_row_per_shard_count() {
        let config = ExperimentConfig {
            scale: 8000,
            batch_size: 100,
            rounds: 2,
            walk_length: 5,
            ..ExperimentConfig::default()
        };
        let table = service(&config);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert!(row[2].parse::<u64>().unwrap() > 0, "steps were taken");
        }
    }
}
